//! Simulator configuration (Table 1 of the paper).
//!
//! Defaults reproduce the paper's baseline: a 3.2 GHz 6-wide OOO core with a
//! decoupled frontend — 24-entry FTQ, 8K-entry 4-way BTB, 32-entry RAS,
//! 4K-entry 4-way IBTB, 32 KB 8-way L1i, 1 MB L2, 10 MB L3.

use std::fmt;

use twig_obs::ObsConfig;
use twig_serde::{Deserialize, Serialize};

use crate::integrity::IntegrityConfig;

/// A rejected simulator configuration: which field, and why.
///
/// Produced by [`SimConfig::builder`]'s `build()` and by
/// [`SimConfig::validate_typed`]; the legacy [`SimConfig::validate`]
/// flattens it to a string.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SimConfigError {
    /// The offending field (dotted path, e.g. `btb.entries`).
    pub field: &'static str,
    /// Why the value was rejected.
    pub reason: String,
}

impl fmt::Display for SimConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid SimConfig field {}: {}", self.field, self.reason)
    }
}

impl std::error::Error for SimConfigError {}

/// Geometry of a set-associative predictor structure (BTB, IBTB).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct BtbGeometry {
    /// Total entries (must be a multiple of `ways`).
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
}

impl BtbGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of `ways`, or the set
    /// count is not a power of two. Use [`BtbGeometry::try_new`] for a
    /// typed error instead.
    pub fn new(entries: usize, ways: usize) -> Self {
        match BtbGeometry::try_new(entries, ways) {
            Ok(geometry) => geometry,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a geometry, rejecting bad shapes with a description.
    ///
    /// # Errors
    ///
    /// Fails if `entries` is not a positive multiple of `ways`, or the set
    /// count is not a power of two.
    pub fn try_new(entries: usize, ways: usize) -> Result<Self, String> {
        if ways == 0 || entries == 0 || !entries.is_multiple_of(ways) {
            return Err(format!(
                "entries ({entries}) must be a positive multiple of ways ({ways})"
            ));
        }
        if !(entries / ways).is_power_of_two() {
            return Err(format!(
                "set count ({}) must be a power of two",
                entries / ways
            ));
        }
        Ok(BtbGeometry { entries, ways })
    }

    /// Number of sets.
    #[inline]
    pub fn sets(self) -> usize {
        self.entries / self.ways
    }
}

/// Geometry of a cache level (64-byte lines).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Capacity in bytes.
    pub bytes: usize,
    /// Associativity.
    pub ways: usize,
}

impl CacheGeometry {
    /// Creates a cache geometry.
    ///
    /// # Panics
    ///
    /// Panics if the derived set count is zero or not a power of two.
    pub fn new(bytes: usize, ways: usize) -> Self {
        let sets = bytes / 64 / ways;
        assert!(sets > 0 && sets.is_power_of_two(), "bad cache geometry");
        CacheGeometry { bytes, ways }
    }

    /// Number of sets.
    #[inline]
    pub fn sets(self) -> usize {
        self.bytes / 64 / self.ways
    }
}

/// Conditional direction predictor selection.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum DirectionPredictorKind {
    /// Classic gshare with the given log2 table size.
    Gshare {
        /// log2 of the 2-bit-counter table size.
        table_bits: u32,
    },
    /// A TAGE-like predictor (bimodal base + 4 tagged tables with geometric
    /// history lengths), standing in for the paper's 64 KB TAGE-SC-L.
    TageLite,
    /// A perceptron predictor (Jiménez & Lin) with the given log2 table
    /// size.
    Perceptron {
        /// log2 of the perceptron table size.
        table_bits: u32,
    },
    /// Every conditional direction predicted correctly (limit studies).
    Oracle,
}

/// Full frontend/simulator configuration.
///
/// # Examples
///
/// ```
/// use twig_sim::SimConfig;
///
/// let config = SimConfig::default();          // the paper's Table 1
/// assert_eq!(config.btb.entries, 8192);
/// let ideal = SimConfig { ideal_btb: true, ..SimConfig::default() };
/// assert!(ideal.ideal_btb);
/// ```
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct SimConfig {
    /// Instructions fetched/decoded per cycle.
    pub fetch_width: u32,
    /// Instructions retired per cycle (6-wide OOO).
    pub retire_width: u32,
    /// Fetch target queue capacity in basic blocks — how far the decoupled
    /// frontend can run ahead (Fig. 28 sweeps this 1–64).
    pub ftq_entries: usize,
    /// Fetch regions the branch prediction unit produces per cycle
    /// (one region spans up to [`Self::region_max_instrs`] instructions and
    /// ends at a predicted-taken branch, matching Table 1's "up to
    /// 12-instruction" prediction bandwidth).
    pub bpu_regions_per_cycle: u32,
    /// Maximum original instructions per fetch region.
    pub region_max_instrs: u32,
    /// Reorder-buffer capacity: decoded-but-unretired instructions the
    /// backend can hold (Table 1: 224). Bounds how far the frontend can run
    /// ahead of retirement, so frontend bubbles are only absorbed up to the
    /// ROB slack.
    pub rob_entries: usize,
    /// Main BTB geometry (8K entries, 4-way baseline).
    pub btb: BtbGeometry,
    /// Indirect-target BTB geometry (4K entries, 4-way).
    pub ibtb: BtbGeometry,
    /// Return address stack entries.
    pub ras_entries: usize,
    /// BTB prefetch buffer entries (Fig. 25 sweeps this 8–256).
    pub prefetch_buffer_entries: usize,
    /// L1 instruction cache (32 KB 8-way).
    pub l1i: CacheGeometry,
    /// Unified L2 (1 MB 16-way).
    pub l2: CacheGeometry,
    /// Shared L3 (10 MB 20-way).
    pub l3: CacheGeometry,
    /// L1i hit latency in cycles.
    pub l1i_latency: u64,
    /// L2 hit latency in cycles.
    pub l2_latency: u64,
    /// L3 hit latency in cycles.
    pub l3_latency: u64,
    /// Memory latency in cycles.
    pub mem_latency: u64,
    /// Pipeline stages between fetch completion and decode.
    pub decode_pipe: u64,
    /// Stages between decode and branch execution (resteer detection for
    /// direction/indirect mispredicts).
    pub exec_pipe: u64,
    /// Extra cycles to redirect the BPU after a resteer is detected.
    pub redirect_penalty: u64,
    /// Cycles from decoding a `brprefetch` to its entry being usable in the
    /// prefetch buffer.
    pub prefetch_exec_latency: u64,
    /// Extra latency for a `brcoalesce` whose table line is not in the
    /// table-line buffer (charged as an L2 access).
    pub coalesce_table_miss_latency: u64,
    /// Direction predictor.
    pub direction: DirectionPredictorKind,
    /// Extra backend-stall cycles per 1000 retired instructions (models
    /// D-cache/dependency stalls; see the workload spec).
    pub backend_extra_cpki: f64,
    /// Model wrong-path sequential fetch during BTB-miss stalls: while the
    /// BPU waits for a decode resteer, FDIP keeps prefetching the
    /// fall-through path it (wrongly) believes in. Off by default — the
    /// paper's comparisons do not depend on wrong-path effects — but
    /// available for sensitivity studies: the accidental warmth it creates
    /// can slightly help or hurt depending on layout locality.
    pub wrong_path_prefetch: bool,
    /// Lines of sequential wrong-path prefetching issued per BTB-miss
    /// stall when [`Self::wrong_path_prefetch`] is enabled.
    pub wrong_path_lines: u32,
    /// Limit study: every BTB lookup hits with the correct target (Fig. 2).
    pub ideal_btb: bool,
    /// Limit study: every I-cache access hits (Fig. 2).
    pub ideal_icache: bool,
    /// Batch the per-cycle stepping: when every structure the cycle could
    /// touch is quiescent (per the hot loop's activity mask) and no
    /// per-cycle instrumentation tier is active, jump straight to the next
    /// cycle at which any stage can act, bulk-applying the skipped cycles'
    /// retire-slot accounting. Produces bit-identical statistics to
    /// cycle-by-cycle stepping (asserted by `tests/sim_behavior.rs`); off
    /// only for the before/after benchmark groups in `benches/sim.rs`.
    pub batch_stepping: bool,
    /// Simulation integrity layer: checking tier, watchdog budgets, and
    /// the optional seeded mutation. Defaults from the `TWIG_INTEGRITY`
    /// environment (off unless set).
    pub integrity: IntegrityConfig,
    /// Observability layer: metrics/tracing tier and trace-ring capacity.
    /// Defaults from the `TWIG_OBS` environment (off unless set).
    pub obs: ObsConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            fetch_width: 6,
            retire_width: 6,
            ftq_entries: 24,
            bpu_regions_per_cycle: 3,
            region_max_instrs: 12,
            rob_entries: 224,
            btb: BtbGeometry::new(8192, 4),
            ibtb: BtbGeometry::new(4096, 4),
            ras_entries: 32,
            prefetch_buffer_entries: 64,
            l1i: CacheGeometry::new(32 * 1024, 8),
            l2: CacheGeometry::new(1024 * 1024, 16),
            l3: CacheGeometry::new(10 * 1024 * 1024 / 64 / 20 * 64 * 20, 20),
            l1i_latency: 1,
            l2_latency: 14,
            l3_latency: 40,
            mem_latency: 200,
            decode_pipe: 12,
            exec_pipe: 10,
            redirect_penalty: 2,
            prefetch_exec_latency: 4,
            coalesce_table_miss_latency: 14,
            direction: DirectionPredictorKind::TageLite,
            backend_extra_cpki: 150.0,
            wrong_path_prefetch: false,
            wrong_path_lines: 8,
            ideal_btb: false,
            ideal_icache: false,
            batch_stepping: true,
            integrity: IntegrityConfig::default(),
            obs: ObsConfig::default(),
        }
    }
}

impl SimConfig {
    /// The Table 1 baseline with a workload-specific backend stall factor.
    pub fn paper_baseline(backend_extra_cpki: f64) -> Self {
        SimConfig {
            backend_extra_cpki,
            ..SimConfig::default()
        }
    }

    /// Returns a copy with a different BTB entry count (same associativity).
    pub fn with_btb_entries(mut self, entries: usize) -> Self {
        self.btb = BtbGeometry::new(entries, self.btb.ways);
        self
    }

    /// Returns a copy with a different BTB associativity (same capacity).
    pub fn with_btb_ways(mut self, ways: usize) -> Self {
        self.btb = BtbGeometry::new(self.btb.entries, ways);
        self
    }

    /// Starts a builder seeded with the Table 1 baseline — the preferred
    /// construction path: every setter takes raw values and `build()`
    /// reports the first bad one as a typed [`SimConfigError`] instead of
    /// panicking mid-experiment.
    ///
    /// # Examples
    ///
    /// ```
    /// use twig_sim::SimConfig;
    ///
    /// let config = SimConfig::builder()
    ///     .btb(32 * 1024, 4)
    ///     .ftq_entries(32)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(config.btb.entries, 32 * 1024);
    ///
    /// let err = SimConfig::builder().btb(100, 3).build().unwrap_err();
    /// assert_eq!(err.field, "btb");
    /// ```
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::default()
    }

    /// Validates cross-field constraints, naming the offending field.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a [`SimConfigError`].
    pub fn validate_typed(&self) -> Result<(), SimConfigError> {
        fn reject(field: &'static str, reason: impl Into<String>) -> Result<(), SimConfigError> {
            Err(SimConfigError {
                field,
                reason: reason.into(),
            })
        }
        if self.fetch_width == 0 {
            return reject("fetch_width", "must be positive");
        }
        if self.retire_width == 0 {
            return reject("retire_width", "must be positive");
        }
        if self.ftq_entries == 0 {
            return reject("ftq_entries", "FTQ needs at least one entry");
        }
        if self.bpu_regions_per_cycle == 0 || self.region_max_instrs == 0 {
            return reject(
                "bpu_regions_per_cycle",
                "BPU must advance at least one region per cycle",
            );
        }
        if self.rob_entries < self.retire_width as usize {
            return reject("rob_entries", "ROB must hold at least one retire group");
        }
        if !(self.l1i_latency <= self.l2_latency
            && self.l2_latency <= self.l3_latency
            && self.l3_latency <= self.mem_latency)
        {
            return reject("mem_latency", "memory latencies must be monotone");
        }
        if self.backend_extra_cpki < 0.0 {
            return reject("backend_extra_cpki", "must be non-negative");
        }
        if let Err(reason) = self.integrity.validate() {
            return reject("integrity", reason);
        }
        if let Err(reason) = self.obs.validate() {
            return reject("obs", reason);
        }
        Ok(())
    }

    /// Validates cross-field constraints (legacy string-error form).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        self.validate_typed().map_err(|e| e.to_string())
    }
}

/// Builder for [`SimConfig`]: mutate freely, validate once at
/// [`SimConfigBuilder::build`].
///
/// Structural fields that can be *shaped wrong* (BTB/IBTB/cache
/// geometries) are held as raw numbers and only checked at build time, so
/// a sweep over invalid shapes surfaces as a typed error naming the field
/// rather than a panic inside a worker thread.
#[derive(Clone, Debug)]
pub struct SimConfigBuilder {
    config: SimConfig,
    btb: (usize, usize),
    ibtb: (usize, usize),
    l1i: (usize, usize),
}

impl Default for SimConfigBuilder {
    fn default() -> Self {
        let config = SimConfig::default();
        SimConfigBuilder {
            btb: (config.btb.entries, config.btb.ways),
            ibtb: (config.ibtb.entries, config.ibtb.ways),
            l1i: (config.l1i.bytes, config.l1i.ways),
            config,
        }
    }
}

impl SimConfigBuilder {
    /// Fetch and retire width (instructions per cycle).
    pub fn widths(mut self, fetch: u32, retire: u32) -> Self {
        self.config.fetch_width = fetch;
        self.config.retire_width = retire;
        self
    }

    /// Fetch target queue capacity in basic-block regions.
    pub fn ftq_entries(mut self, entries: usize) -> Self {
        self.config.ftq_entries = entries;
        self
    }

    /// Reorder-buffer capacity.
    pub fn rob_entries(mut self, entries: usize) -> Self {
        self.config.rob_entries = entries;
        self
    }

    /// Main BTB shape (entries, ways); validated at build.
    pub fn btb(mut self, entries: usize, ways: usize) -> Self {
        self.btb = (entries, ways);
        self
    }

    /// Indirect-target BTB shape (entries, ways); validated at build.
    pub fn ibtb(mut self, entries: usize, ways: usize) -> Self {
        self.ibtb = (entries, ways);
        self
    }

    /// L1 instruction cache shape (bytes, ways); validated at build.
    pub fn l1i(mut self, bytes: usize, ways: usize) -> Self {
        self.l1i = (bytes, ways);
        self
    }

    /// Return address stack depth.
    pub fn ras_entries(mut self, entries: usize) -> Self {
        self.config.ras_entries = entries;
        self
    }

    /// BTB prefetch buffer capacity.
    pub fn prefetch_buffer_entries(mut self, entries: usize) -> Self {
        self.config.prefetch_buffer_entries = entries;
        self
    }

    /// Conditional direction predictor.
    pub fn direction(mut self, kind: DirectionPredictorKind) -> Self {
        self.config.direction = kind;
        self
    }

    /// Extra backend-stall cycles per 1000 retired instructions.
    pub fn backend_extra_cpki(mut self, cpki: f64) -> Self {
        self.config.backend_extra_cpki = cpki;
        self
    }

    /// Limit study: every BTB lookup hits.
    pub fn ideal_btb(mut self, ideal: bool) -> Self {
        self.config.ideal_btb = ideal;
        self
    }

    /// Limit study: every I-cache access hits.
    pub fn ideal_icache(mut self, ideal: bool) -> Self {
        self.config.ideal_icache = ideal;
        self
    }

    /// Batched (idle-skipping) cycle stepping; on by default, off only for
    /// the before/after performance benchmarks.
    pub fn batch_stepping(mut self, batch: bool) -> Self {
        self.config.batch_stepping = batch;
        self
    }

    /// Integrity tier (overrides the `TWIG_INTEGRITY` default).
    pub fn integrity(mut self, integrity: IntegrityConfig) -> Self {
        self.config.integrity = integrity;
        self
    }

    /// Observability tier (overrides the `TWIG_OBS` default).
    pub fn obs(mut self, obs: ObsConfig) -> Self {
        self.config.obs = obs;
        self
    }

    /// Arbitrary access to the remaining fields (latencies, pipeline
    /// depths, wrong-path knobs) without one setter per field.
    pub fn tune(mut self, f: impl FnOnce(&mut SimConfig)) -> Self {
        f(&mut self.config);
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first invalid field as a [`SimConfigError`].
    pub fn build(self) -> Result<SimConfig, SimConfigError> {
        let mut config = self.config;
        config.btb = BtbGeometry::try_new(self.btb.0, self.btb.1)
            .map_err(|reason| SimConfigError { field: "btb", reason })?;
        config.ibtb = BtbGeometry::try_new(self.ibtb.0, self.ibtb.1)
            .map_err(|reason| SimConfigError { field: "ibtb", reason })?;
        let l1i_sets = self.l1i.0.checked_div(64 * self.l1i.1).unwrap_or(0);
        if l1i_sets == 0 || !l1i_sets.is_power_of_two() {
            return Err(SimConfigError {
                field: "l1i",
                reason: format!(
                    "bad cache geometry: {} bytes / {} ways",
                    self.l1i.0, self.l1i.1
                ),
            });
        }
        config.l1i = CacheGeometry::new(self.l1i.0, self.l1i.1);
        config.validate_typed()?;
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = SimConfig::default();
        c.validate().unwrap();
        assert_eq!(c.btb.entries, 8192);
        assert_eq!(c.btb.ways, 4);
        assert_eq!(c.btb.sets(), 2048);
        assert_eq!(c.ibtb.entries, 4096);
        assert_eq!(c.ras_entries, 32);
        assert_eq!(c.ftq_entries, 24);
        assert_eq!(c.l1i.bytes, 32 * 1024);
        assert_eq!(c.l1i.ways, 8);
        assert_eq!(c.l1i.sets(), 64);
    }

    #[test]
    fn btb_geometry_rejects_bad_shapes() {
        assert!(std::panic::catch_unwind(|| BtbGeometry::new(100, 3)).is_err());
        assert!(std::panic::catch_unwind(|| BtbGeometry::new(0, 1)).is_err());
        // 96 entries 4 ways -> 24 sets, not a power of two.
        assert!(std::panic::catch_unwind(|| BtbGeometry::new(96, 4)).is_err());
    }

    #[test]
    fn builders_preserve_other_fields() {
        let c = SimConfig::default().with_btb_entries(32768);
        assert_eq!(c.btb.entries, 32768);
        assert_eq!(c.btb.ways, 4);
        let c = c.with_btb_ways(128);
        assert_eq!(c.btb.entries, 32768);
        assert_eq!(c.btb.ways, 128);
    }

    #[test]
    fn validate_catches_nonmonotone_latencies() {
        let c = SimConfig {
            l2_latency: 500,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());
        assert_eq!(c.validate_typed().unwrap_err().field, "mem_latency");
    }

    #[test]
    fn builder_defaults_match_default() {
        let built = SimConfig::builder().build().unwrap();
        assert_eq!(built, SimConfig::default());
    }

    #[test]
    fn builder_reports_typed_errors() {
        let err = SimConfig::builder().btb(96, 4).build().unwrap_err();
        assert_eq!(err.field, "btb");
        assert!(err.to_string().contains("power of two"), "{err}");

        let err = SimConfig::builder().ibtb(0, 4).build().unwrap_err();
        assert_eq!(err.field, "ibtb");

        let err = SimConfig::builder().l1i(1000, 3).build().unwrap_err();
        assert_eq!(err.field, "l1i");

        let err = SimConfig::builder()
            .widths(6, 8)
            .rob_entries(4)
            .build()
            .unwrap_err();
        assert_eq!(err.field, "rob_entries");

        let err = SimConfig::builder()
            .backend_extra_cpki(-1.0)
            .build()
            .unwrap_err();
        assert_eq!(err.field, "backend_extra_cpki");
    }

    #[test]
    fn builder_wires_integrity_and_obs_uniformly() {
        let config = SimConfig::builder()
            .integrity(IntegrityConfig::sampled(64))
            .obs(ObsConfig::counters())
            .build()
            .unwrap();
        assert_eq!(config.integrity, IntegrityConfig::sampled(64));
        assert_eq!(config.obs, ObsConfig::counters());

        let err = SimConfig::builder()
            .obs(ObsConfig {
                trace_capacity: 0,
                ..ObsConfig::counters()
            })
            .build()
            .unwrap_err();
        assert_eq!(err.field, "obs");
    }

    #[test]
    fn builder_tune_reaches_every_field() {
        let config = SimConfig::builder()
            .tune(|c| c.redirect_penalty = 9)
            .build()
            .unwrap();
        assert_eq!(config.redirect_penalty, 9);
    }
}
