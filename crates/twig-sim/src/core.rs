//! The cycle-driven decoupled-frontend simulator.
//!
//! Model (see DESIGN.md §3): per cycle, the branch prediction unit (BPU)
//! advances along the trace doing real BTB/IBTB/RAS/direction lookups and
//! enqueues fetch regions into the FTQ (with FDIP prefetching their I-cache
//! lines); the fetch unit consumes FTQ entries once their lines are ready;
//! decode executes software prefetch ops and resolves BTB-miss resteers;
//! execute resolves direction/indirect mispredicts; retire drains delivered
//! instructions at the machine width and attributes Top-Down slots.
//!
//! Because the trace is the correct path, wrong-path fetch is modelled as
//! BPU dead time: from the cycle a to-be-resteered branch is predicted until
//! the resteer resolves, the BPU enqueues nothing, which is exactly the
//! frontend bubble a real machine sees (minus wrong-path cache pollution,
//! which the paper's comparisons do not depend on).

use std::collections::VecDeque;

use twig_obs::{MissKind, Stage};
use twig_types::{Addr, BlockId, BranchKind, BranchOutcome, CacheLineAddr};
use twig_workload::{BlockEvent, Program};

use crate::btb::Btb;
use crate::config::{DirectionPredictorKind, SimConfig};
use crate::direction::{build_predictor, DirectionPredictor};
use crate::frontend_state::{
    activity, ActivityMask, DeliveryRing, FtqRing, Region, ResteerCause, ResteerKind, RetireRing,
};
use crate::icache::MemoryHierarchy;
use crate::integrity::dump::{DumpBranch, StateDump, DUMP_VERSION};
use crate::integrity::watchdog::Watchdogs;
use crate::integrity::{Fault, IntegrityViolation, MutationKind, Validator, ViolationKind};
use crate::obs::{ObsState, TimelineState};
use crate::ras::Ras;
use crate::stats::SimStats;
use crate::system::{BtbSystem, FrontendCtx, LookupOutcome};

/// One entry of the BPU's basic-block history (LBR model).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HistoryEntry {
    /// The executed block.
    pub block: BlockId,
    /// BPU cycle at which the block was processed.
    pub cycle: u64,
}

/// Observer of real BTB misses, with the 32-deep basic-block history the
/// paper's LBR-based profiler records (§3.1).
pub trait MissObserver {
    /// Called on every *real* (uncovered) BTB miss of a taken branch.
    ///
    /// `history` lists the most recent blocks executed before the miss,
    /// oldest first, including the missing block itself as the last entry.
    fn on_btb_miss(
        &mut self,
        block: BlockId,
        kind: BranchKind,
        history: &[HistoryEntry],
        cycle: u64,
    );
}

/// A no-op observer.
impl MissObserver for () {
    fn on_btb_miss(&mut self, _: BlockId, _: BranchKind, _: &[HistoryEntry], _: u64) {}
}

/// Depth of the block history kept for the observer (Intel LBR records 32).
pub const LBR_DEPTH: usize = 32;

/// The frontend simulator. Drives a [`BtbSystem`] over a block-event stream.
///
/// # Examples
///
/// ```
/// use twig_sim::{PlainBtb, SimConfig, Simulator};
/// use twig_workload::{InputConfig, ProgramGenerator, Walker, WorkloadSpec};
///
/// let program = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
/// let config = SimConfig::default();
/// let mut sim = Simulator::new(&program, config, PlainBtb::new(&config));
/// let events = Walker::new(&program, InputConfig::numbered(0));
/// let stats = sim.run(events, 100_000);
/// assert!(stats.ipc() > 0.0);
/// ```
pub struct Simulator<'p, B> {
    program: &'p Program,
    config: SimConfig,
    system: B,
    mem: MemoryHierarchy,
    direction: Box<dyn DirectionPredictor>,
    ibtb: Btb,
    ras: Ras,
    stats: SimStats,
    history: VecDeque<HistoryEntry>,
    /// Block events consumed from the trace (the cursor recorded in dumps).
    events_consumed: u64,
    /// Label stamped on integrity violations and dumps (e.g. `sim:kafka/twig`).
    integrity_label: String,
    /// Observability recording state; `None` at the `off` tier, so the
    /// hot loop pays one never-taken branch per cycle (same discipline
    /// as the integrity layer).
    obs: Option<Box<ObsState>>,
    /// Windowed time-series state; `None` unless `TWIG_OBS_WINDOW` selects a
    /// window. Kept separate from `obs` so windowing alone leaves idle-cycle
    /// batching enabled (it only reads [`SimStats`] at retire boundaries).
    timeline: Option<Box<TimelineState>>,
    /// Reused staging buffer for a region's software-prefetch blocks
    /// (copied into the FTQ ring's shared pool on push).
    ops_scratch: Vec<BlockId>,
    /// Reused buffer for the head probe's missed lines.
    line_scratch: Vec<CacheLineAddr>,
}

impl<'p, B: BtbSystem> Simulator<'p, B> {
    /// Creates a simulator for `program` with the given BTB system.
    ///
    /// Under the `paranoid` integrity tier this also arms the differential
    /// reference models inside the IBTB, RAS, and the BTB system.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation.
    pub fn new(program: &'p Program, config: SimConfig, system: B) -> Self {
        config.validate().expect("invalid sim config");
        let mut sim = Simulator {
            program,
            config,
            system,
            mem: MemoryHierarchy::new(&config),
            direction: build_predictor(config.direction),
            ibtb: Btb::named(config.ibtb, "ibtb"),
            ras: Ras::new(config.ras_entries),
            stats: SimStats::default(),
            history: VecDeque::with_capacity(LBR_DEPTH + 1),
            events_consumed: 0,
            integrity_label: String::from("sim"),
            obs: ObsState::from_config(&config.obs),
            timeline: TimelineState::from_config(&config.obs),
            ops_scratch: Vec::new(),
            line_scratch: Vec::new(),
        };
        if config.integrity.level.differential() {
            sim.ibtb.enable_shadow();
            sim.ras.enable_shadow();
            sim.system.enable_differential();
        }
        sim.mem
            .set_line_event_tracking(sim.system.observes_line_events());
        sim
    }

    /// Sets the label stamped on integrity violations and forensic dumps
    /// (the harness uses its cell id, e.g. `sim:kafka/twig`).
    pub fn set_integrity_label(&mut self, label: impl Into<String>) {
        self.integrity_label = label.into();
    }

    /// Runs until `instruction_budget` original instructions retire (or the
    /// event stream ends), returning the collected statistics.
    ///
    /// # Panics
    ///
    /// Panics if an enabled integrity tier detects a violation; use
    /// [`Self::try_run`] to handle violations as typed errors.
    pub fn run(
        &mut self,
        events: impl IntoIterator<Item = BlockEvent>,
        instruction_budget: u64,
    ) -> SimStats {
        self.run_observed(events, instruction_budget, &mut ())
    }

    /// Like [`Self::run`], also reporting every real BTB miss (with LBR-style
    /// history) to `observer`.
    ///
    /// # Panics
    ///
    /// Panics if an enabled integrity tier detects a violation.
    pub fn run_observed(
        &mut self,
        events: impl IntoIterator<Item = BlockEvent>,
        instruction_budget: u64,
        observer: &mut dyn MissObserver,
    ) -> SimStats {
        match self.try_run_observed(events, instruction_budget, observer) {
            Ok(stats) => stats,
            Err(violation) => panic!("{violation}"),
        }
    }

    /// Runs until the budget retires, surfacing integrity violations as a
    /// typed error instead of aborting.
    ///
    /// # Errors
    ///
    /// Returns the first [`IntegrityViolation`] an enabled checking tier
    /// detects (after writing a forensic dump unless dumping is disabled).
    pub fn try_run(
        &mut self,
        events: impl IntoIterator<Item = BlockEvent>,
        instruction_budget: u64,
    ) -> Result<SimStats, Box<IntegrityViolation>> {
        self.try_run_observed(events, instruction_budget, &mut ())
    }

    /// Like [`Self::try_run`], also reporting every real BTB miss to
    /// `observer`.
    ///
    /// # Errors
    ///
    /// Returns the first [`IntegrityViolation`] detected.
    pub fn try_run_observed(
        &mut self,
        events: impl IntoIterator<Item = BlockEvent>,
        instruction_budget: u64,
        observer: &mut dyn MissObserver,
    ) -> Result<SimStats, Box<IntegrityViolation>> {
        let mut events = events.into_iter();
        let mut events_done = false;

        let mut cycle: u64 = 0;
        let mut bpu_stalled_until: u64 = 0;
        let mut ftq = FtqRing::new(self.config.ftq_entries);
        let mut fetch_free_at: u64 = 0;
        let mut head_ready_at: Option<u64> = None;
        let mut deliveries = DeliveryRing::new();
        // Instructions decoded and waiting to retire: (original, ops) FIFO.
        let mut avail = RetireRing::new();
        // ROB occupancy: decoded-but-unretired instructions (deliveries in
        // flight plus the avail queue). Fetch stalls when the ROB is full.
        let mut rob_occupancy: usize = 0;
        let mut backend_deficit: f64 = 0.0;
        // Active resteer (for Top-Down attribution of empty-frontend slots).
        let mut resteer_until: u64 = 0;
        let mut resteer_is_exec = false;
        // Which structures hold work; every transition below happens at
        // the statement that changes the summarized structure (the deep
        // integrity sweep cross-checks each bit).
        let mut mask = ActivityMask::new();

        // Hoisted configuration scalars: the borrow checker cannot prove
        // `self.config` unchanged across the `&mut self` stage calls, so
        // reading them through `self` would reload every iteration.
        let regions_per_cycle = self.config.bpu_regions_per_cycle;
        let fetch_width = self.config.fetch_width;
        let retire_width = self.config.retire_width;
        let rob_entries = self.config.rob_entries;
        let decode_pipe = self.config.decode_pipe;
        let exec_pipe = self.config.exec_pipe;
        let redirect_penalty = self.config.redirect_penalty;
        let backend_extra_cpki = self.config.backend_extra_cpki;

        // Integrity instrumentation. `period` is `None` for the `off`
        // tier, reducing the per-cycle cost to one predictable branch.
        let integrity = self.config.integrity;
        let period = integrity.level.check_period();
        let mut watchdogs = period.map(|_| Watchdogs::new(&integrity, instruction_budget));
        // Safety valve for malformed configurations; with checking enabled
        // the same ceiling is reported as a typed `cycle-budget` violation.
        let max_cycles = match &watchdogs {
            Some(w) => w.max_cycles(),
            None => instruction_budget.saturating_mul(200).max(1 << 22),
        };
        // The seeded mutation drill: armed only when checking is enabled
        // (a corruption no tier would catch must never skew results) and
        // the label selector matches.
        let mutate = match integrity.mutate {
            Some(spec) if period.is_some() && self.mutation_label_selected() => Some(spec),
            _ => None,
        };
        // Next cycle (at or after which) a full structural scan is due.
        // Tracking the next-due cycle instead of `cycle % deep_period`
        // keeps the detection-latency bound (one deep period plus one
        // sample period) even when the sample period does not divide it.
        let mut next_deep: u64 = 0;

        // Batched stepping is sound only when nothing records per-cycle
        // state: integrity sampling and the observability histograms both
        // observe every cycle, so either tier forces cycle-by-cycle
        // stepping (their identity-vs-off tests double as the oracle that
        // batching never changes statistics).
        let batch = self.config.batch_stepping && period.is_none() && self.obs.is_none();

        loop {
            // ---- BPU: advance prediction, fill the FTQ. -----------------
            if cycle >= bpu_stalled_until && !events_done {
                for _ in 0..regions_per_cycle {
                    if ftq.is_full() {
                        break;
                    }
                    let Some(region) =
                        self.build_region(&mut events, cycle, observer, &mut events_done)
                    else {
                        break;
                    };
                    let stall = region.resteer.is_some();
                    ftq.push(region, &self.ops_scratch);
                    mask.set(activity::FTQ);
                    if let Some(obs) = self.obs.as_deref_mut() {
                        if let Some(ring) = obs.ring.as_mut() {
                            ring.record(Stage::Predict, "bpu-region", cycle, 0);
                        }
                    }
                    if stall {
                        bpu_stalled_until = u64::MAX;
                        break;
                    }
                }
                if events_done {
                    mask.clear(activity::STREAM);
                }
            }

            // ---- Fetch/decode: issue the FTQ head when its lines arrive. --
            // The head's I-cache access is pipelined: it starts as soon as
            // the region reaches the head of the queue (even while fetch is
            // busy with the previous region), so an L1i hit adds no bubble
            // between back-to-back regions.
            if head_ready_at.is_none() && !ftq.is_empty() {
                let (first_line, last_line) = ftq.head_lines();
                head_ready_at = Some(self.probe_head_lines(first_line, last_line, cycle));
            }
            if fetch_free_at <= cycle && rob_occupancy < rob_entries
                && head_ready_at.is_some_and(|ready| ready <= cycle) {
                    let entry = ftq.pop_front();
                    if ftq.is_empty() {
                        mask.clear(activity::FTQ);
                    }
                    head_ready_at = None;
                    let total = entry.instrs + entry.ops;
                    let fetch_cycles =
                        u64::from(total.div_ceil(fetch_width)).max(1);
                    fetch_free_at = cycle + fetch_cycles;
                    let decode_done = fetch_free_at + decode_pipe;
                    deliveries.push_back(decode_done, entry.instrs, entry.ops);
                    mask.set(activity::DELIVERIES);
                    rob_occupancy += (entry.instrs + entry.ops) as usize;
                    if let Some(obs) = self.obs.as_deref_mut() {
                        obs.registry
                            .record(obs.fetch_region_instrs, u64::from(total));
                        if let Some(ring) = obs.ring.as_mut() {
                            ring.record(Stage::Fetch, "fetch-region", cycle, fetch_cycles);
                            if entry.ops_len > 0 {
                                ring.record(Stage::Prefetch, "sw-prefetch", cycle, 0);
                            }
                        }
                    }
                    for i in 0..entry.ops_len {
                        let block = ftq.pool_block(entry.ops_start, i);
                        self.execute_prefetch_ops(block, decode_done, cycle);
                    }
                    if let Some(cause) = entry.resteer {
                        let resolved_at = match cause.kind {
                            ResteerKind::Decode => decode_done,
                            ResteerKind::Execute => decode_done + exec_pipe,
                        };
                        let resume = resolved_at + redirect_penalty;
                        bpu_stalled_until = resume;
                        resteer_until = resume;
                        resteer_is_exec = cause.kind == ResteerKind::Execute;
                        match cause.kind {
                            ResteerKind::Decode => self.stats.decode_resteers += 1,
                            ResteerKind::Execute => self.stats.exec_resteers += 1,
                        }
                        if let Some(obs) = self.obs.as_deref_mut() {
                            obs.registry.record(obs.resteer_penalty, resume - cycle);
                            if let Some(attr) = obs.attr.as_mut() {
                                attr.record(cause.pc, cause.branch, cause.miss, resume - cycle);
                            }
                            if let Some(ring) = obs.ring.as_mut() {
                                let name = match cause.kind {
                                    ResteerKind::Decode => "resteer-decode",
                                    ResteerKind::Execute => "resteer-execute",
                                };
                                ring.record(Stage::Decode, name, cycle, resume - cycle);
                            }
                        }
                    }
                    // Start the next head's I-cache access in the same
                    // cycle (pipelined tag check).
                    if !ftq.is_empty() {
                        let (first_line, last_line) = ftq.head_lines();
                        head_ready_at =
                            Some(self.probe_head_lines(first_line, last_line, cycle));
                    }
                }

            // ---- Retire: drain decoded instructions, attribute slots. ----
            while deliveries.front_ready().is_some_and(|ready| ready <= cycle) {
                let (instrs, ops) = deliveries.pop_front();
                if deliveries.is_empty() {
                    mask.clear(activity::DELIVERIES);
                }
                avail.push_back(instrs, ops);
                mask.set(activity::RETIRE);
            }

            let width = retire_width;
            if backend_deficit >= 1.0 {
                backend_deficit -= 1.0;
                self.stats.topdown.backend_bound += u64::from(width);
            } else {
                let mut slots = width;
                let mut retired_orig: u32 = 0;
                while slots > 0 {
                    let Some((orig, ops)) = avail.front_mut() else { break };
                    // Prefetch ops sit at block start: retire them first.
                    if *ops > 0 {
                        let take = (*ops).min(slots);
                        *ops -= take;
                        slots -= take;
                        rob_occupancy -= take as usize;
                        self.stats.retired_prefetch_ops += u64::from(take);
                        self.stats.topdown.retiring += u64::from(take);
                    } else if *orig > 0 {
                        let take = (*orig).min(slots);
                        *orig -= take;
                        slots -= take;
                        rob_occupancy -= take as usize;
                        retired_orig += take;
                        self.stats.topdown.retiring += u64::from(take);
                    }
                    if *orig == 0 && *ops == 0 {
                        avail.pop_front();
                        if avail.is_empty() {
                            mask.clear(activity::RETIRE);
                        }
                    }
                }
                self.stats.retired_instructions += u64::from(retired_orig);
                if retired_orig > 0 {
                    if let Some(obs) = self.obs.as_deref_mut() {
                        if let Some(ring) = obs.ring.as_mut() {
                            ring.record(Stage::Commit, "retire", cycle, 0);
                        }
                    }
                    if let Some(timeline) = self.timeline.as_deref_mut() {
                        timeline.on_retire(cycle, &self.stats);
                    }
                }
                backend_deficit +=
                    f64::from(retired_orig) * backend_extra_cpki / 1000.0;
                if slots > 0 {
                    // Starved: frontend latency, or wrong-path recovery.
                    if cycle < resteer_until && resteer_is_exec {
                        self.stats.topdown.bad_speculation += u64::from(slots);
                    } else {
                        self.stats.topdown.frontend_bound += u64::from(slots);
                    }
                }
            }

            // ---- Observability: per-cycle occupancy histograms. ----------
            // One never-taken branch per cycle at the `off` tier, exactly
            // like the integrity gate below.
            if let Some(obs) = self.obs.as_deref_mut() {
                obs.registry.record(obs.ftq_occupancy, ftq.len() as u64);
                obs.registry.record(obs.rob_occupancy, rob_occupancy as u64);
            }

            // ---- Integrity: mutation drill, invariant sweep, watchdogs. --
            if let Some(p) = period {
                if let Some(spec) = mutate {
                    if cycle == spec.at_cycle {
                        self.inject_mutation(spec.kind);
                    }
                }
                if cycle.is_multiple_of(p) {
                    let deep = cycle >= next_deep;
                    if deep {
                        next_deep = cycle + integrity.deep_period;
                    }
                    if let Err((fault, component, structure)) =
                        self.sweep(deep, &ftq, &deliveries, &avail, rob_occupancy, mask)
                    {
                        return Err(self.raise(
                            fault,
                            component,
                            structure,
                            cycle,
                            instruction_budget,
                        ));
                    }
                    let queued =
                        ftq.len() + deliveries.len() + avail.len() + self.mem.inflight_len();
                    let watchdogs = watchdogs.as_mut().expect("checking enabled");
                    if let Err(fault) = watchdogs.check(
                        cycle,
                        self.stats.retired_instructions + self.stats.retired_prefetch_ops,
                        || self.mem.has_outstanding_fill(cycle),
                        queued,
                    ) {
                        return Err(self.raise(
                            fault,
                            "watchdog",
                            String::new(),
                            cycle,
                            instruction_budget,
                        ));
                    }
                }
            }

            // ---- Batched stepping: skip runs of quiescent cycles. --------
            // With the retire queue drained, every remaining stage's next
            // action is a pure function of already-scheduled times: the
            // BPU resumes at `bpu_stalled_until`, fetch at
            // `max(head_ready_at, fetch_free_at)`, and the decode pipe
            // drains at its head's `ready_at`. Jump to the earliest of
            // those and bulk-apply the skipped cycles' only state changes
            // — the backend-deficit drain and the integer Top-Down slot
            // tallies — in the same order the stepped loop would, so the
            // statistics stay bit-identical. (`backend_deficit` would also
            // accumulate `0.0 * cpki / 1000.0` per skipped cycle, which is
            // exact identity for the non-negative deficit.)
            // Skipping must also stop at the instruction budget: once the
            // retire stage crosses it, the loop breaks right after the
            // cycle increment, so there are no further cycles to attribute.
            if batch
                && !mask.contains(activity::RETIRE)
                && self.stats.retired_instructions < instruction_budget
            {
                let e_bpu = if !events_done && !ftq.is_full() {
                    bpu_stalled_until
                } else {
                    u64::MAX
                };
                // `head_ready_at` is `Some` iff the FTQ is non-empty here;
                // a full ROB keeps fetch blocked until the decode pipe
                // drains, which `e_decode` already bounds.
                let e_fetch = match head_ready_at {
                    Some(ready) if rob_occupancy < rob_entries => ready.max(fetch_free_at),
                    _ => u64::MAX,
                };
                let e_decode = deliveries.front_ready().unwrap_or(u64::MAX);
                let next = e_bpu.min(e_fetch).min(e_decode);
                if next != u64::MAX && next > cycle + 1 {
                    let target = next.min(max_cycles).max(cycle + 1);
                    let mut skipped = cycle + 1;
                    while skipped < target && backend_deficit >= 1.0 {
                        backend_deficit -= 1.0;
                        self.stats.topdown.backend_bound += u64::from(retire_width);
                        skipped += 1;
                    }
                    if skipped < target {
                        let idle = target - skipped;
                        let bad = if resteer_is_exec {
                            resteer_until.saturating_sub(skipped).min(idle)
                        } else {
                            0
                        };
                        self.stats.topdown.bad_speculation += u64::from(retire_width) * bad;
                        self.stats.topdown.frontend_bound +=
                            u64::from(retire_width) * (idle - bad);
                    }
                    cycle = target - 1;
                }
            }

            cycle += 1;

            if self.stats.retired_instructions >= instruction_budget {
                break;
            }
            // Stream exhausted and every queue drained (the mask bits
            // mirror `events_done`, the FTQ, the decode pipe, and the
            // retire queue exactly).
            if mask.all_idle() {
                break;
            }
            if cycle >= max_cycles {
                // With checking enabled the watchdog reports this as a
                // typed violation before the silent valve can trip; hitting
                // it here means checking is off (or sampling skipped past
                // the boundary), so report it if we can.
                if period.is_some() {
                    let fault = Fault::new(
                        ViolationKind::CycleBudget,
                        format!("cycle budget exhausted: {cycle} cycles (limit {max_cycles})"),
                    );
                    return Err(self.raise(
                        fault,
                        "watchdog",
                        String::new(),
                        cycle,
                        instruction_budget,
                    ));
                }
                break;
            }
        }

        // Final deep sweep: end-of-run structural state must be coherent
        // even if the sampling cadence never lined up mid-run.
        if period.is_some() {
            if let Err((fault, component, structure)) =
                self.sweep(true, &ftq, &deliveries, &avail, rob_occupancy, mask)
            {
                return Err(self.raise(fault, component, structure, cycle, instruction_budget));
            }
        }

        self.stats.cycles = cycle;
        self.stats.prefetch_buffer = self.system.prefetch_stats().into();
        let mem = *self.mem.stats();
        self.stats.icache_demand_accesses = mem.demand_accesses;
        self.stats.icache_demand_misses = mem.demand_misses;
        self.stats.icache_prefetches = mem.prefetches;
        if let Some(obs) = self.obs.as_deref_mut() {
            obs.mirror_stats(&self.stats, &mem);
            obs.mirror_internal();
            self.system.register_metrics(&mut obs.registry);
        }
        if let Some(timeline) = self.timeline.as_deref_mut() {
            timeline.flush(&self.stats);
        }
        Ok(self.stats.clone())
    }

    /// The end-of-run metrics snapshot: the legacy statistics mirrored as
    /// counters plus the hot-loop occupancy histograms and any
    /// system-specific metrics. `None` at the `off` observability tier.
    pub fn metrics_snapshot(&self) -> Option<twig_obs::MetricsSnapshot> {
        self.obs.as_deref().map(|obs| obs.snapshot())
    }

    /// The end-of-run windowed timeline (per-window counter deltas plus
    /// derived metrics and phase segments). `None` unless `TWIG_OBS_WINDOW`
    /// selects a window.
    pub fn timeline_snapshot(&self) -> Option<twig_obs::TimelineSnapshot> {
        self.timeline.as_deref().map(|timeline| timeline.snapshot())
    }

    /// Sampled span events recorded so far, oldest first (empty unless
    /// the `trace` tier is on).
    pub fn trace_events(&self) -> Vec<twig_obs::TraceEvent> {
        self.obs
            .as_deref()
            .and_then(|obs| obs.ring.as_ref())
            .map(|ring| ring.events())
            .unwrap_or_default()
    }

    /// chrome://tracing JSON of the sampled spans, labelled with this
    /// run's integrity label. `Ok(None)` unless the `trace` tier is on.
    ///
    /// # Errors
    ///
    /// Returns an [`twig_obs::ExportError`] if serialization fails.
    pub fn chrome_trace(&self) -> Result<Option<String>, twig_obs::ExportError> {
        let Some(ring) = self.obs.as_deref().and_then(|obs| obs.ring.as_ref()) else {
            return Ok(None);
        };
        twig_obs::chrome_trace_json(&self.integrity_label, &ring.events(), ring.dropped_spans())
            .map(Some)
    }

    /// The end-of-run per-branch attribution profile ([`twig_obs::attr`]);
    /// `None` unless attribution (`TWIG_OBS_ATTR`) is enabled.
    pub fn attribution_snapshot(&self) -> Option<twig_obs::AttributionSnapshot> {
        self.obs
            .as_deref()
            .and_then(|obs| obs.attr.as_ref())
            .map(|table| table.snapshot())
    }

    /// Folded-stack (flamegraph-compatible) rendering of the attribution
    /// profile, one stack per tracked branch site. `None` unless
    /// attribution is enabled.
    pub fn attribution_folded(&self, label: &str) -> Option<String> {
        self.attribution_snapshot()
            .map(|snap| twig_obs::folded_stacks(label, &snap))
    }

    /// Whether the `TWIG_INTEGRITY_MUTATE_LABEL` selector (a substring of
    /// the integrity label) matches this run. Unset selects every run.
    fn mutation_label_selected(&self) -> bool {
        match &twig_types::HarnessConfig::global()
            .integrity_mutate_label
            .value
        {
            Some(sel) => self.integrity_label.contains(sel.as_str()),
            None => true,
        }
    }

    /// Applies the armed seeded corruption (the CI mutation drill).
    fn inject_mutation(&mut self, kind: MutationKind) {
        match kind {
            MutationKind::RasDepth => self.ras.corrupt_depth(),
            MutationKind::BtbOccupancy => {
                // Prefer the system's main BTB; fall back to the IBTB so
                // the drill always has a target (e.g. the ideal baseline).
                if !self.system.inject_corruption(kind) {
                    self.ibtb.corrupt_occupancy();
                }
            }
        }
    }

    /// One invariant sweep: loop-local queue invariants plus every
    /// registered structure [`Validator`]. On failure returns the fault,
    /// the failing component's name, and its forensic snapshot.
    ///
    /// The cheap (`deep == false`) tier is strictly O(1) — occupancy
    /// counters only — so the `sampled` tier's cost stays independent of
    /// queue depth. The O(queue) walks (FTQ region ordering, delivery
    /// monotonicity, exact ROB accounting) run on deep scans, bounding
    /// their detection latency by `deep_period + period` like every
    /// other structural check.
    fn sweep(
        &self,
        deep: bool,
        ftq: &FtqRing,
        deliveries: &DeliveryRing,
        avail: &RetireRing,
        rob_occupancy: usize,
        mask: ActivityMask,
    ) -> Result<(), (Fault, &'static str, String)> {
        if ftq.len() > self.config.ftq_entries {
            return Err((
                Fault::new(
                    ViolationKind::FtqOccupancy,
                    format!(
                        "ftq holds {} entries, capacity {}",
                        ftq.len(),
                        self.config.ftq_entries
                    ),
                ),
                "ftq",
                format!("{ftq:?}"),
            ));
        }
        if !deep {
            return self.check_validators(false);
        }
        // The activity mask is a pure summary of the queues: a stale bit
        // means a push/pop site forgot its transition, which would let the
        // batched stepping skip live work (or spin on drained queues).
        for (bit, occupied, name) in [
            (activity::FTQ, !ftq.is_empty(), "ftq"),
            (activity::DELIVERIES, !deliveries.is_empty(), "deliveries"),
            (activity::RETIRE, !avail.is_empty(), "retire-queue"),
        ] {
            if mask.contains(bit) != occupied {
                return Err((
                    Fault::new(
                        ViolationKind::ActivityMask,
                        format!(
                            "{name} activity bit is {} but the structure {}",
                            mask.contains(bit),
                            if occupied { "holds work" } else { "is empty" }
                        ),
                    ),
                    "activity-mask",
                    format!(
                        "{mask:?} ftq={} deliveries={} retire-queue={}",
                        ftq.len(),
                        deliveries.len(),
                        avail.len()
                    ),
                ));
            }
        }
        for (i, entry) in ftq.iter().enumerate() {
            // `first_line == u64::MAX` marks a region that consumed no
            // block (stream exhausted); anything else must be ordered.
            if entry.first_line != u64::MAX && entry.first_line > entry.last_line {
                return Err((
                    Fault::new(
                        ViolationKind::FtqOrder,
                        format!(
                            "ftq[{i}] lines out of order: first {} > last {}",
                            entry.first_line, entry.last_line
                        ),
                    ),
                    "ftq",
                    format!("{entry:?}"),
                ));
            }
        }
        let mut prev_ready = 0u64;
        for (i, (ready_at, _, _)) in deliveries.iter().enumerate() {
            if ready_at < prev_ready {
                return Err((
                    Fault::new(
                        ViolationKind::FtqOrder,
                        format!(
                            "delivery[{i}] ready_at {ready_at} precedes predecessor at \
                             {prev_ready}"
                        ),
                    ),
                    "deliveries",
                    format!("{deliveries:?}"),
                ));
            }
            prev_ready = ready_at;
        }
        let in_flight: u64 = deliveries
            .iter()
            .map(|(_, instrs, ops)| u64::from(instrs) + u64::from(ops))
            .sum();
        let waiting: u64 = avail
            .iter()
            .map(|(orig, ops)| u64::from(orig) + u64::from(ops))
            .sum();
        if rob_occupancy as u64 != in_flight + waiting {
            return Err((
                Fault::new(
                    ViolationKind::RobAccounting,
                    format!(
                        "rob occupancy {rob_occupancy} != in-flight deliveries {in_flight} \
                         + retire queue {waiting}"
                    ),
                ),
                "rob",
                format!("deliveries={deliveries:?} avail={avail:?}"),
            ));
        }
        self.check_validators(true)
    }

    /// Runs every registered structure [`Validator`] at the given depth.
    fn check_validators(&self, deep: bool) -> Result<(), (Fault, &'static str, String)> {
        let base: [&dyn Validator; 3] = [&self.ibtb, &self.ras, &self.mem];
        for validator in base.into_iter().chain(self.system.validators()) {
            if let Err(fault) = validator.check(deep) {
                return Err((fault, validator.component(), validator.snapshot()));
            }
        }
        Ok(())
    }

    /// Builds the typed violation for `fault`, writing a cycle-stamped
    /// forensic [`StateDump`] unless dumping is disabled.
    fn raise(
        &self,
        fault: Fault,
        component: &str,
        structure: String,
        cycle: u64,
        instruction_budget: u64,
    ) -> Box<IntegrityViolation> {
        let mut violation = IntegrityViolation {
            kind: fault.kind,
            component: component.to_string(),
            cycle,
            detail: fault.detail,
            dump_path: None,
        };
        if self.config.integrity.dump {
            let dump = StateDump {
                version: DUMP_VERSION,
                label: self.integrity_label.clone(),
                kind: violation.kind.as_str().to_string(),
                component: violation.component.clone(),
                cycle,
                detail: violation.detail.clone(),
                config: self.config,
                instruction_budget,
                retired_instructions: self.stats.retired_instructions,
                events_consumed: self.events_consumed,
                history: self
                    .history
                    .iter()
                    .map(|h| DumpBranch {
                        block: h.block.raw(),
                        cycle: h.cycle,
                    })
                    .collect(),
                structure,
            };
            match dump.write() {
                Ok(path) => violation.dump_path = Some(path),
                // Dump failure must not mask the violation itself.
                Err(err) => eprintln!(
                    "twig-sim: failed to write integrity dump for {}: {err}",
                    violation.component
                ),
            }
        }
        Box::new(violation)
    }

    /// The statistics collected so far (valid after [`Self::run`]).
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The BTB system under test.
    pub fn system(&self) -> &B {
        &self.system
    }

    /// Builds one fetch region at the BPU, consuming block events until a
    /// taken branch, a pending resteer, or the region cap. Returns `None`
    /// when the event stream is exhausted before any block is consumed.
    ///
    /// Blocks carrying software prefetch ops are staged in
    /// `self.ops_scratch` (cleared on entry); the caller copies them into
    /// the FTQ ring's shared pool alongside the region.
    fn build_region(
        &mut self,
        events: &mut impl Iterator<Item = BlockEvent>,
        cycle: u64,
        observer: &mut dyn MissObserver,
        events_done: &mut bool,
    ) -> Option<Region> {
        self.ops_scratch.clear();
        let mut entry = Region {
            instrs: 0,
            ops: 0,
            first_line: u64::MAX,
            last_line: 0,
            resteer: None,
        };
        let mut consumed = false;
        loop {
            let Some(ev) = events.next() else {
                *events_done = true;
                break;
            };
            consumed = true;
            self.events_consumed += 1;
            let block = self.program.block(ev.block);
            self.history.push_back(HistoryEntry {
                block: ev.block,
                cycle,
            });
            if self.history.len() > LBR_DEPTH {
                self.history.pop_front();
            }

            // FDIP: warm the block's lines as soon as it is enqueued.
            // `end_addr` is exclusive, so the last byte is one before it.
            let first_line = block.addr.line().line_number();
            let last_byte = Addr::new(block.end_addr().raw() - 1);
            let last_line = last_byte.line().line_number().max(first_line);
            for line in first_line..=last_line {
                self.mem
                    .prefetch(CacheLineAddr::from_line_number(line), cycle);
            }
            self.drain_line_events(cycle);
            {
                let mut ctx = FrontendCtx {
                    cycle,
                    program: self.program,
                    mem: &mut self.mem,
                };
                self.system.lines_accessed(
                    CacheLineAddr::from_line_number(first_line),
                    CacheLineAddr::from_line_number(last_line),
                    &mut ctx,
                );
            }
            entry.first_line = entry.first_line.min(first_line);
            entry.last_line = entry.last_line.max(last_line);
            entry.instrs += block.num_instrs;
            entry.ops += block.prefetch_ops.len() as u32;
            if !block.prefetch_ops.is_empty() {
                self.ops_scratch.push(ev.block);
            }

            let mut region_ends = ev.taken;
            if block.branch_kind().is_some() {
                let rec = self
                    .program
                    .resolve_branch(ev.block, ev.taken, ev.target)
                    .expect("terminator is a branch");
                let kind = rec.kind;
                self.stats.btb_accesses[kind.index()] += 1;

                let outcome = if self.config.ideal_btb {
                    LookupOutcome::Hit {
                        target: rec.outcome.target().unwrap_or(rec.fallthrough),
                        kind,
                    }
                } else {
                    let mut ctx = FrontendCtx {
                        cycle,
                        program: self.program,
                        mem: &mut self.mem,
                    };
                    self.system.lookup(rec.pc, &mut ctx)
                };

                entry.resteer = match outcome {
                    LookupOutcome::Hit { .. } | LookupOutcome::CoveredMiss { .. } => {
                        if matches!(outcome, LookupOutcome::CoveredMiss { .. }) {
                            self.stats.covered_misses[kind.index()] += 1;
                        }
                        self.predict_with_entry(&rec, ev.taken)
                    }
                    LookupOutcome::Miss => self.handle_btb_miss(&rec, ev, cycle, observer),
                };
                // A wrongly-predicted-taken conditional also ends the
                // region from the BPU's point of view.
                if entry.resteer.is_some() {
                    region_ends = true;
                }

                // Maintain the speculative RAS along the (correct) path.
                if kind.is_call() {
                    self.ras.push(rec.fallthrough);
                }
            }

            if region_ends || entry.instrs >= self.config.region_max_instrs {
                break;
            }
        }
        // A decode resteer means the BPU believed the fall-through path:
        // optionally model the wrong-path sequential prefetching FDIP
        // would issue while stalled.
        if self.config.wrong_path_prefetch
            && entry.resteer.is_some_and(|c| c.kind == ResteerKind::Decode)
        {
            for i in 1..=u64::from(self.config.wrong_path_lines) {
                self.mem.prefetch(
                    CacheLineAddr::from_line_number(entry.last_line + i),
                    cycle,
                );
            }
            self.drain_line_events(cycle);
        }
        consumed.then_some(entry)
    }

    /// Prediction when the BTB identified the branch. Returns the resteer
    /// required by a wrong direction/target prediction.
    fn predict_with_entry(
        &mut self,
        rec: &twig_types::BranchRecord,
        taken: bool,
    ) -> Option<ResteerCause> {
        let cause = |miss: MissKind| ResteerCause {
            kind: ResteerKind::Execute,
            pc: rec.pc.raw(),
            branch: rec.kind,
            miss,
        };
        match rec.kind {
            BranchKind::Conditional => {
                self.stats.conditional_executed += 1;
                let predicted = if matches!(self.config.direction, DirectionPredictorKind::Oracle)
                {
                    taken
                } else {
                    self.direction.predict(rec.pc)
                };
                self.direction.update(rec.pc, taken);
                if predicted != taken {
                    self.stats.direction_mispredicts += 1;
                    return Some(cause(MissKind::Direction));
                }
                None
            }
            BranchKind::DirectJump | BranchKind::DirectCall => None,
            BranchKind::IndirectJump | BranchKind::IndirectCall => {
                let actual = rec.outcome.target().expect("indirects are taken");
                let predicted = if self.config.ideal_btb {
                    Some(actual)
                } else {
                    self.ibtb.lookup(rec.pc).map(|e| e.target)
                };
                self.ibtb.insert(rec.pc, actual, rec.kind);
                if predicted != Some(actual) {
                    self.stats.indirect_mispredicts += 1;
                    return Some(cause(MissKind::IndirectTarget));
                }
                None
            }
            BranchKind::Return => {
                let actual = rec.outcome.target().expect("returns are taken");
                let predicted = if self.config.ideal_btb {
                    let _ = self.ras.pop();
                    Some(actual)
                } else {
                    self.ras.pop()
                };
                if predicted != Some(actual) {
                    self.stats.return_mispredicts += 1;
                    return Some(cause(MissKind::ReturnTarget));
                }
                None
            }
        }
    }

    /// A real BTB miss: the BPU cannot even tell a branch exists at this PC.
    fn handle_btb_miss(
        &mut self,
        rec: &twig_types::BranchRecord,
        ev: BlockEvent,
        cycle: u64,
        observer: &mut dyn MissObserver,
    ) -> Option<ResteerCause> {
        let kind = rec.kind;
        if kind == BranchKind::Conditional {
            self.stats.conditional_executed += 1;
            // Decode identifies the branch; the predictor still trains.
            self.direction.update(rec.pc, ev.taken);
        }
        if let BranchOutcome::Taken(_) = rec.outcome {
            self.stats.btb_misses[kind.index()] += 1;
            self.history.make_contiguous();
            observer.on_btb_miss(ev.block, kind, self.history.as_slices().0, cycle);
            // Install at resolution (the BPU stalls until then anyway).
            let mut ctx = FrontendCtx {
                cycle,
                program: self.program,
                mem: &mut self.mem,
            };
            self.system.resolve_taken(rec, ev.block, &mut ctx);
            if kind.is_indirect() && !kind.is_return() {
                self.ibtb
                    .insert(rec.pc, rec.outcome.target().expect("taken"), kind);
            }
            if kind.is_return() {
                let _ = self.ras.pop();
            }
            // Direct branches and returns are redirected at decode (the
            // decoder computes/pops the target); indirect targets are only
            // known at execute.
            let (resteer, miss) = if kind.is_indirect() && !kind.is_return() {
                (ResteerKind::Execute, MissKind::BtbMissExecute)
            } else {
                (ResteerKind::Decode, MissKind::BtbMissDecode)
            };
            Some(ResteerCause {
                kind: resteer,
                pc: rec.pc.raw(),
                branch: kind,
                miss,
            })
        } else {
            // Not-taken conditional without a BTB entry: sequential fetch
            // was correct by construction; no penalty, no allocation.
            None
        }
    }

    /// Executes the software prefetch ops attached to `block`, effective at
    /// decode time.
    fn execute_prefetch_ops(&mut self, block: BlockId, decode_done: u64, cycle: u64) {
        let ops = &self.program.block(block).prefetch_ops;
        let mut ctx = FrontendCtx {
            cycle,
            program: self.program,
            mem: &mut self.mem,
        };
        for op in ops {
            self.system.software_prefetch(op, decode_done, &mut ctx);
        }
    }

    /// Issues the demand accesses for a fetch region's lines and returns
    /// the cycle its bytes are ready (max over lines).
    fn probe_head_lines(&mut self, first_line: u64, last_line: u64, cycle: u64) -> u64 {
        let mut ready = cycle;
        let mut missed = std::mem::take(&mut self.line_scratch);
        missed.clear();
        for line in first_line..=last_line {
            let r = self
                .mem
                .demand(CacheLineAddr::from_line_number(line), cycle);
            ready = ready.max(r.ready_at);
            if r.source != crate::icache::FillSource::L1i {
                missed.push(CacheLineAddr::from_line_number(line));
            }
        }
        for &line in &missed {
            self.line_demand_missed(line, cycle);
        }
        self.line_scratch = missed;
        self.drain_line_events(cycle);
        ready
    }

    fn line_demand_missed(&mut self, line: CacheLineAddr, cycle: u64) {
        let mut ctx = FrontendCtx {
            cycle,
            program: self.program,
            mem: &mut self.mem,
        };
        self.system.line_demand_miss(line, &mut ctx);
    }

    /// Reports L1i fills/evictions to the BTB system.
    fn drain_line_events(&mut self, cycle: u64) {
        let filled = self.mem.take_filled_l1i();
        let evicted = self.mem.take_evicted_l1i();
        if filled.is_empty() && evicted.is_empty() {
            return;
        }
        let mut ctx = FrontendCtx {
            cycle,
            program: self.program,
            mem: &mut self.mem,
        };
        for (line, ready_at) in filled {
            self.system.line_filled(line, ready_at, &mut ctx);
        }
        for line in evicted {
            self.system.line_evicted(line, &mut ctx);
        }
    }
}

impl<B: BtbSystem> std::fmt::Debug for Simulator<'_, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("system", &self.system.name())
            .field("direction", &self.direction.name())
            .field("cycles", &self.stats.cycles)
            .finish_non_exhaustive()
    }
}
