//! Return address stack.

use twig_types::Addr;

/// A fixed-capacity circular return address stack.
///
/// Pushes past capacity overwrite the oldest entry (the classic RAS
/// overflow/corruption behaviour), and pops from an empty stack return
/// `None` — both show up as return mispredicts in deep call chains.
///
/// # Examples
///
/// ```
/// use twig_sim::Ras;
/// use twig_types::Addr;
///
/// let mut ras = Ras::new(4);
/// ras.push(Addr::new(0x100));
/// ras.push(Addr::new(0x200));
/// assert_eq!(ras.pop(), Some(Addr::new(0x200)));
/// assert_eq!(ras.pop(), Some(Addr::new(0x100)));
/// assert_eq!(ras.pop(), None);
/// ```
#[derive(Clone, Debug)]
pub struct Ras {
    slots: Vec<Addr>,
    top: usize,
    depth: usize,
}

impl Ras {
    /// Creates an empty RAS with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RAS capacity must be positive");
        Ras {
            slots: vec![Addr::ZERO; capacity],
            top: 0,
            depth: 0,
        }
    }

    /// Pushes a return address, overwriting the oldest entry on overflow.
    pub fn push(&mut self, addr: Addr) {
        self.slots[self.top] = addr;
        self.top = (self.top + 1) % self.slots.len();
        self.depth = (self.depth + 1).min(self.slots.len());
    }

    /// Pops the youngest return address, or `None` if empty/underflowed.
    pub fn pop(&mut self) -> Option<Addr> {
        if self.depth == 0 {
            return None;
        }
        self.top = (self.top + self.slots.len() - 1) % self.slots.len();
        self.depth -= 1;
        Some(self.slots[self.top])
    }

    /// The youngest return address without popping.
    pub fn peek(&self) -> Option<Addr> {
        if self.depth == 0 {
            return None;
        }
        let idx = (self.top + self.slots.len() - 1) % self.slots.len();
        Some(self.slots[idx])
    }

    /// Live entries (saturates at capacity after overflow).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Capacity in slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(v: u64) -> Addr {
        Addr::new(v)
    }

    #[test]
    fn lifo_order() {
        let mut ras = Ras::new(8);
        for i in 1..=5u64 {
            ras.push(a(i));
        }
        for i in (1..=5u64).rev() {
            assert_eq!(ras.pop(), Some(a(i)));
        }
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn overflow_corrupts_oldest() {
        let mut ras = Ras::new(2);
        ras.push(a(1));
        ras.push(a(2));
        ras.push(a(3)); // overwrites 1
        assert_eq!(ras.pop(), Some(a(3)));
        assert_eq!(ras.pop(), Some(a(2)));
        // Entry 1 is gone: corrupted by wrap-around.
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn peek_is_nondestructive() {
        let mut ras = Ras::new(4);
        ras.push(a(7));
        assert_eq!(ras.peek(), Some(a(7)));
        assert_eq!(ras.depth(), 1);
        assert_eq!(ras.pop(), Some(a(7)));
        assert_eq!(ras.peek(), None);
    }

    #[test]
    fn depth_saturates() {
        let mut ras = Ras::new(3);
        for i in 0..10u64 {
            ras.push(a(i));
        }
        assert_eq!(ras.depth(), 3);
        assert_eq!(ras.capacity(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = Ras::new(0);
    }
}
