//! Return address stack.

use twig_types::Addr;

use crate::integrity::refmodel::RefRas;
use crate::integrity::{Fault, Validator, ViolationKind};

/// A fixed-capacity circular return address stack.
///
/// Pushes past capacity overwrite the oldest entry (the classic RAS
/// overflow/corruption behaviour), and pops from an empty stack return
/// `None` — both show up as return mispredicts in deep call chains.
/// These edge semantics are pinned by the `overflow_*`/`underflow_*`
/// tests below and documented in DESIGN.md §"RAS edge semantics".
///
/// # Examples
///
/// ```
/// use twig_sim::Ras;
/// use twig_types::Addr;
///
/// let mut ras = Ras::new(4);
/// ras.push(Addr::new(0x100));
/// ras.push(Addr::new(0x200));
/// assert_eq!(ras.pop(), Some(Addr::new(0x200)));
/// assert_eq!(ras.pop(), Some(Addr::new(0x100)));
/// assert_eq!(ras.pop(), None);
/// ```
#[derive(Clone, Debug)]
pub struct Ras {
    slots: Vec<Addr>,
    top: usize,
    depth: usize,
    shadow: Option<Box<RasShadow>>,
}

/// Differential shadow: the naive bounded-`Vec` reference stack plus the
/// first recorded divergence.
#[derive(Clone, Debug)]
struct RasShadow {
    reference: RefRas,
    divergence: Option<Fault>,
}

impl Ras {
    /// Creates an empty RAS with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RAS capacity must be positive");
        Ras {
            slots: vec![Addr::ZERO; capacity],
            top: 0,
            depth: 0,
            shadow: None,
        }
    }

    /// Arms the differential shadow ([`RefRas`]); every push/pop is
    /// mirrored and compared. Must be called on an empty RAS.
    pub fn enable_shadow(&mut self) {
        assert_eq!(self.depth, 0, "shadow must start from an empty RAS");
        self.shadow = Some(Box::new(RasShadow {
            reference: RefRas::new(self.slots.len()),
            divergence: None,
        }));
    }

    /// Pushes a return address, overwriting the oldest entry on overflow.
    pub fn push(&mut self, addr: Addr) {
        self.slots[self.top] = addr;
        self.top = (self.top + 1) % self.slots.len();
        self.depth = (self.depth + 1).min(self.slots.len());
        if let Some(shadow) = &mut self.shadow {
            shadow.reference.push(addr);
        }
    }

    /// Pops the youngest return address, or `None` if empty/underflowed.
    pub fn pop(&mut self) -> Option<Addr> {
        let popped = if self.depth == 0 {
            None
        } else {
            self.top = (self.top + self.slots.len() - 1) % self.slots.len();
            self.depth -= 1;
            Some(self.slots[self.top])
        };
        if self.shadow.is_some() {
            self.shadow_pop(popped);
        }
        popped
    }

    #[inline(never)]
    fn shadow_pop(&mut self, popped: Option<Addr>) {
        let shadow = self.shadow.as_mut().expect("shadow armed");
        let ref_popped = shadow.reference.pop();
        if popped != ref_popped && shadow.divergence.is_none() {
            shadow.divergence = Some(Fault::new(
                ViolationKind::RasDivergence,
                format!("pop returned {popped:?}, reference stack says {ref_popped:?}"),
            ));
        }
    }

    /// The youngest return address without popping.
    pub fn peek(&self) -> Option<Addr> {
        if self.depth == 0 {
            return None;
        }
        let idx = (self.top + self.slots.len() - 1) % self.slots.len();
        Some(self.slots[idx])
    }

    /// Live entries (saturates at capacity after overflow).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Capacity in slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Seeds a RAS-depth corruption for the integrity mutation drill:
    /// pushes the depth counter past capacity, the bookkeeping bug the
    /// bounds check exists to catch. Pop arithmetic stays in range (slot
    /// indices are modular), so the corruption is observable, not fatal.
    #[doc(hidden)]
    pub fn corrupt_depth(&mut self) {
        self.depth = self.slots.len() + 1;
    }

    /// The live entries, oldest first (for deep shadow comparison).
    fn live_entries(&self) -> Vec<Addr> {
        let cap = self.slots.len();
        let depth = self.depth.min(cap);
        (0..depth)
            .map(|i| self.slots[(self.top + cap - depth + i) % cap])
            .collect()
    }
}

impl Validator for Ras {
    fn component(&self) -> &'static str {
        "ras"
    }

    fn check(&self, deep: bool) -> Result<(), Fault> {
        if self.depth > self.slots.len() {
            return Err(Fault::new(
                ViolationKind::RasBounds,
                format!(
                    "depth {} exceeds capacity {}",
                    self.depth,
                    self.slots.len()
                ),
            ));
        }
        if self.top >= self.slots.len() {
            return Err(Fault::new(
                ViolationKind::RasBounds,
                format!("top {} outside {} slots", self.top, self.slots.len()),
            ));
        }
        if let Some(shadow) = &self.shadow {
            if let Some(divergence) = &shadow.divergence {
                return Err(divergence.clone());
            }
            if deep {
                if self.depth != shadow.reference.depth() {
                    return Err(Fault::new(
                        ViolationKind::RasDivergence,
                        format!(
                            "depth {} but reference stack holds {}",
                            self.depth,
                            shadow.reference.depth()
                        ),
                    ));
                }
                if !self.live_entries().into_iter().eq(shadow.reference.entries()) {
                    return Err(Fault::new(
                        ViolationKind::RasDivergence,
                        "live entries do not match the reference stack".to_string(),
                    ));
                }
            }
        }
        Ok(())
    }

    fn snapshot(&self) -> String {
        format!(
            "ras depth {}/{} top {} entries {:?}",
            self.depth,
            self.slots.len(),
            self.top,
            self.live_entries()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(v: u64) -> Addr {
        Addr::new(v)
    }

    #[test]
    fn lifo_order() {
        let mut ras = Ras::new(8);
        for i in 1..=5u64 {
            ras.push(a(i));
        }
        for i in (1..=5u64).rev() {
            assert_eq!(ras.pop(), Some(a(i)));
        }
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn overflow_corrupts_oldest() {
        let mut ras = Ras::new(2);
        ras.push(a(1));
        ras.push(a(2));
        ras.push(a(3)); // overwrites 1
        assert_eq!(ras.pop(), Some(a(3)));
        assert_eq!(ras.pop(), Some(a(2)));
        // Entry 1 is gone: corrupted by wrap-around.
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn peek_is_nondestructive() {
        let mut ras = Ras::new(4);
        ras.push(a(7));
        assert_eq!(ras.peek(), Some(a(7)));
        assert_eq!(ras.depth(), 1);
        assert_eq!(ras.pop(), Some(a(7)));
        assert_eq!(ras.peek(), None);
    }

    #[test]
    fn depth_saturates() {
        let mut ras = Ras::new(3);
        for i in 0..10u64 {
            ras.push(a(i));
        }
        assert_eq!(ras.depth(), 3);
        assert_eq!(ras.capacity(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = Ras::new(0);
    }

    // ---- Edge-semantics pins (see DESIGN.md, "RAS edge semantics"). ----

    #[test]
    fn overflow_wrap_pops_in_reverse_push_order_of_survivors() {
        // Capacity 3, push 5: entries 1 and 2 are overwritten by the wrap.
        // The survivors pop youngest-first, then the stack underflows —
        // it does NOT wrap around to re-serve overwritten slots.
        let mut ras = Ras::new(3);
        for i in 1..=5u64 {
            ras.push(a(i));
        }
        assert_eq!(ras.depth(), 3);
        assert_eq!(ras.pop(), Some(a(5)));
        assert_eq!(ras.pop(), Some(a(4)));
        assert_eq!(ras.pop(), Some(a(3)));
        assert_eq!(ras.pop(), None, "overwritten entries must not resurface");
        assert_eq!(ras.depth(), 0);
    }

    #[test]
    fn underflow_pop_is_sticky_none_and_push_recovers() {
        // Pops past empty return `None` without corrupting state; a
        // subsequent push starts a fresh, consistent stack.
        let mut ras = Ras::new(4);
        ras.push(a(1));
        assert_eq!(ras.pop(), Some(a(1)));
        for _ in 0..10 {
            assert_eq!(ras.pop(), None);
            assert_eq!(ras.depth(), 0);
        }
        ras.push(a(2));
        ras.push(a(3));
        assert_eq!(ras.depth(), 2);
        assert_eq!(ras.pop(), Some(a(3)));
        assert_eq!(ras.pop(), Some(a(2)));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn shadowed_ras_agrees_through_overflow_and_underflow() {
        let mut ras = Ras::new(2);
        ras.enable_shadow();
        for i in 1..=4u64 {
            ras.push(a(i));
        }
        assert_eq!(ras.pop(), Some(a(4)));
        assert_eq!(ras.pop(), Some(a(3)));
        assert_eq!(ras.pop(), None);
        ras.push(a(9));
        assert_eq!(ras.pop(), Some(a(9)));
        assert!(ras.check(true).is_ok(), "reference stack must stay in lockstep");
    }

    #[test]
    fn corrupt_depth_is_caught_by_bounds_check() {
        let mut ras = Ras::new(4);
        ras.push(a(1));
        assert!(ras.check(true).is_ok());
        ras.corrupt_depth();
        let fault = ras.check(false).unwrap_err();
        assert_eq!(fault.kind, ViolationKind::RasBounds);
    }
}
