//! The [`BtbSystem`] abstraction: BTB organization plus prefetch policy.
//!
//! The paper compares four BTB designs on the same FDIP frontend: the plain
//! baseline BTB (optionally fed by Twig's software prefetch instructions),
//! Shotgun's partitioned BTB, Confluence's line-synced AirBTB, and an ideal
//! BTB. The simulator core is agnostic: it drives any [`BtbSystem`] through
//! lookup/resolve hooks plus I-cache-event and software-prefetch hooks.

use twig_types::{Addr, BlockId, BranchKind, BranchRecord, CacheLineAddr, PrefetchOp};
use twig_workload::Program;

use crate::btb::Btb;
use crate::config::SimConfig;
use crate::icache::MemoryHierarchy;
use crate::integrity::{MutationKind, Validator};
use crate::prefetch_buffer::{PrefetchBuffer, PrefetchBufferStats};

/// Mutable frontend state handed to [`BtbSystem`] hooks.
#[derive(Debug)]
pub struct FrontendCtx<'a> {
    /// Current cycle.
    pub cycle: u64,
    /// The simulated program (for predecode queries and op resolution).
    pub program: &'a Program,
    /// The instruction-side memory hierarchy (for issuing line prefetches).
    pub mem: &'a mut MemoryHierarchy,
}

/// Outcome of a BTB lookup.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LookupOutcome {
    /// Found in the BTB proper.
    Hit {
        /// The predicted taken target.
        target: Addr,
        /// The stored branch kind.
        kind: BranchKind,
    },
    /// Found in the prefetch buffer: a would-be miss that prefetching
    /// covered. The entry is promoted into the BTB.
    CoveredMiss {
        /// The predicted taken target.
        target: Addr,
        /// The stored branch kind.
        kind: BranchKind,
    },
    /// Not present anywhere.
    Miss,
}

impl LookupOutcome {
    /// Whether this lookup avoided a resteer.
    pub fn is_hit(&self) -> bool {
        !matches!(self, LookupOutcome::Miss)
    }
}

/// A BTB organization plus its prefetching machinery.
///
/// Object-safe so experiment harnesses can select implementations at
/// runtime (`Box<dyn BtbSystem>` also implements the trait).
pub trait BtbSystem {
    /// Display name for reports.
    fn name(&self) -> &str;

    /// BPU-time branch-target lookup.
    fn lookup(&mut self, pc: Addr, ctx: &mut FrontendCtx<'_>) -> LookupOutcome;

    /// A taken branch resolved; install/refresh its entry.
    fn resolve_taken(&mut self, rec: &BranchRecord, block: BlockId, ctx: &mut FrontendCtx<'_>);

    /// An L1i line was filled (demand or prefetch); its bytes arrive at
    /// `ready_at`, so predecoded entries cannot be usable before then.
    fn line_filled(&mut self, line: CacheLineAddr, ready_at: u64, ctx: &mut FrontendCtx<'_>) {
        let _ = (line, ready_at, ctx);
    }

    /// An L1i line was evicted.
    fn line_evicted(&mut self, line: CacheLineAddr, ctx: &mut FrontendCtx<'_>) {
        let _ = (line, ctx);
    }

    /// Whether this system consumes [`line_filled`]/[`line_evicted`]
    /// callbacks. Systems that leave both as the default no-ops return
    /// `false` (the default) and the memory hierarchy skips recording
    /// line events entirely — the queues would only ever be drained into
    /// the void. Predecode-based prefetchers (Confluence) return `true`.
    ///
    /// [`line_filled`]: BtbSystem::line_filled
    /// [`line_evicted`]: BtbSystem::line_evicted
    fn observes_line_events(&self) -> bool {
        false
    }

    /// A demand fetch missed L1i (temporal-stream trigger).
    fn line_demand_miss(&mut self, line: CacheLineAddr, ctx: &mut FrontendCtx<'_>) {
        let _ = (line, ctx);
    }

    /// The BPU enqueued a fetch block spanning `[first_line, last_line]`
    /// (inclusive). Shotgun-style prefetchers learn spatial footprints from
    /// this access stream.
    fn lines_accessed(
        &mut self,
        first_line: CacheLineAddr,
        last_line: CacheLineAddr,
        ctx: &mut FrontendCtx<'_>,
    ) {
        let _ = (first_line, last_line, ctx);
    }

    /// A software BTB prefetch op was decoded at cycle `decoded_at`.
    fn software_prefetch(
        &mut self,
        op: &PrefetchOp,
        decoded_at: u64,
        ctx: &mut FrontendCtx<'_>,
    ) {
        let _ = (op, decoded_at, ctx);
    }

    /// Prefetch coverage/accuracy counters.
    fn prefetch_stats(&self) -> PrefetchBufferStats;

    /// Arms differential reference models inside the system's structures
    /// (called once, before the first lookup, under `paranoid`).
    fn enable_differential(&mut self) {}

    /// The system's self-checking structures, polled by the integrity
    /// layer. Default: none.
    fn validators(&self) -> Vec<&dyn Validator> {
        Vec::new()
    }

    /// Applies a seeded corruption for the integrity mutation drill.
    /// Returns whether the system owns a structure of that kind (the
    /// simulator falls back to its own IBTB/RAS otherwise).
    #[doc(hidden)]
    fn inject_corruption(&mut self, kind: MutationKind) -> bool {
        let _ = kind;
        false
    }

    /// Contributes system-specific counters to the observability
    /// registry at end of run (called only when the obs tier is on).
    /// Default: nothing. Implementations should namespace their metrics
    /// under `system.<name>.`.
    fn register_metrics(&self, registry: &mut twig_obs::MetricsRegistry) {
        let _ = registry;
    }
}

impl<T: BtbSystem + ?Sized> BtbSystem for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn lookup(&mut self, pc: Addr, ctx: &mut FrontendCtx<'_>) -> LookupOutcome {
        (**self).lookup(pc, ctx)
    }
    fn resolve_taken(&mut self, rec: &BranchRecord, block: BlockId, ctx: &mut FrontendCtx<'_>) {
        (**self).resolve_taken(rec, block, ctx)
    }
    fn line_filled(&mut self, line: CacheLineAddr, ready_at: u64, ctx: &mut FrontendCtx<'_>) {
        (**self).line_filled(line, ready_at, ctx)
    }
    fn line_evicted(&mut self, line: CacheLineAddr, ctx: &mut FrontendCtx<'_>) {
        (**self).line_evicted(line, ctx)
    }
    fn observes_line_events(&self) -> bool {
        (**self).observes_line_events()
    }
    fn line_demand_miss(&mut self, line: CacheLineAddr, ctx: &mut FrontendCtx<'_>) {
        (**self).line_demand_miss(line, ctx)
    }
    fn lines_accessed(
        &mut self,
        first_line: CacheLineAddr,
        last_line: CacheLineAddr,
        ctx: &mut FrontendCtx<'_>,
    ) {
        (**self).lines_accessed(first_line, last_line, ctx)
    }
    fn software_prefetch(&mut self, op: &PrefetchOp, decoded_at: u64, ctx: &mut FrontendCtx<'_>) {
        (**self).software_prefetch(op, decoded_at, ctx)
    }
    fn prefetch_stats(&self) -> PrefetchBufferStats {
        (**self).prefetch_stats()
    }
    fn enable_differential(&mut self) {
        (**self).enable_differential()
    }
    fn validators(&self) -> Vec<&dyn Validator> {
        (**self).validators()
    }
    fn inject_corruption(&mut self, kind: MutationKind) -> bool {
        (**self).inject_corruption(kind)
    }
    fn register_metrics(&self, registry: &mut twig_obs::MetricsRegistry) {
        (**self).register_metrics(registry)
    }
}


/// Reusable execution engine for Twig's software BTB prefetch instructions.
///
/// Any [`BtbSystem`] can embed one to gain `brprefetch`/`brcoalesce`
/// support: it owns the prefetch buffer, models the prefetch-execution
/// latency and the coalesce-table line buffer, and resolves id-based
/// operands against the program's current layout. Twig's claim that it
/// works with *any* underlying BTB organization (§5) is exactly this
/// separation.
#[derive(Debug)]
pub struct SoftwarePrefetcher {
    buffer: PrefetchBuffer,
    prefetch_exec_latency: u64,
    coalesce_miss_latency: u64,
    /// Tiny LRU of recently read coalesce-table lines: consecutive
    /// `brcoalesce` ops hitting the same table line pay the cheap latency.
    table_lines: Vec<CacheLineAddr>,
}

/// Capacity of the coalesce-table line buffer.
const TABLE_LINE_BUFFER: usize = 16;

impl SoftwarePrefetcher {
    /// Builds the engine from the simulator configuration.
    pub fn new(config: &SimConfig) -> Self {
        SoftwarePrefetcher {
            buffer: PrefetchBuffer::new(config.prefetch_buffer_entries),
            prefetch_exec_latency: config.prefetch_exec_latency,
            coalesce_miss_latency: config.coalesce_table_miss_latency,
            table_lines: Vec::with_capacity(TABLE_LINE_BUFFER),
        }
    }

    /// Demand lookup in the prefetch buffer (consumes the entry).
    pub fn take(&mut self, pc: Addr, cycle: u64) -> Option<crate::prefetch_buffer::BufferedEntry> {
        self.buffer.take(pc, cycle)
    }

    /// Buffer statistics.
    pub fn stats(&self) -> PrefetchBufferStats {
        self.buffer.stats()
    }

    /// Whether an entry for `pc` is resident.
    pub fn contains(&self, pc: Addr) -> bool {
        self.buffer.contains(pc)
    }

    /// The underlying prefetch buffer (integrity checking).
    pub fn buffer(&self) -> &PrefetchBuffer {
        &self.buffer
    }

    /// Executes one decoded prefetch op.
    pub fn execute(&mut self, op: &PrefetchOp, decoded_at: u64, program: &Program) {
        match *op {
            PrefetchOp::BrPrefetch { branch_block } => {
                let ready = decoded_at + self.prefetch_exec_latency;
                self.insert_block(branch_block, ready, program);
            }
            PrefetchOp::BrCoalesce {
                base_index,
                bitmask,
            } => {
                let table = program.coalesce_table();
                let line = program.coalesce_entry_addr(base_index).line();
                let mem_latency = self.table_line_latency(line);
                let ready = decoded_at + self.prefetch_exec_latency + mem_latency;
                let mut mask = bitmask;
                while mask != 0 {
                    let bit = mask.trailing_zeros();
                    mask &= mask - 1;
                    let idx = base_index as usize + bit as usize;
                    if let Some(&block) = table.get(idx) {
                        self.insert_block(block, ready, program);
                    }
                }
            }
        }
    }

    fn table_line_latency(&mut self, line: CacheLineAddr) -> u64 {
        if let Some(pos) = self.table_lines.iter().position(|&l| l == line) {
            self.table_lines.remove(pos);
            self.table_lines.insert(0, line);
            1
        } else {
            self.table_lines.insert(0, line);
            self.table_lines.truncate(TABLE_LINE_BUFFER);
            self.coalesce_miss_latency
        }
    }

    fn insert_block(&mut self, block: BlockId, ready_at: u64, program: &Program) {
        let b = program.block(block);
        let Some(kind) = b.branch_kind() else { return };
        let Some(target) = program.direct_branch_target_addr(block) else {
            return;
        };
        self.buffer.insert(b.branch_pc(), target, kind, ready_at);
    }
}

/// The baseline BTB organization: a single set-associative BTB plus the
/// prefetch buffer consumed by Twig's `brprefetch`/`brcoalesce`
/// instructions. With no injected ops in the program this is exactly the
/// paper's FDIP baseline.
///
/// # Examples
///
/// ```
/// use twig_sim::{PlainBtb, SimConfig};
///
/// let system = PlainBtb::new(&SimConfig::default());
/// assert_eq!(system.name(), "plain");
/// # use twig_sim::BtbSystem;
/// ```
#[derive(Debug)]
pub struct PlainBtb {
    btb: Btb,
    software: SoftwarePrefetcher,
}

impl PlainBtb {
    /// Builds the baseline system from the simulator configuration.
    pub fn new(config: &SimConfig) -> Self {
        PlainBtb {
            btb: Btb::new(config.btb),
            software: SoftwarePrefetcher::new(config),
        }
    }

    /// Direct access to the underlying BTB (tests, occupancy inspection).
    pub fn btb(&self) -> &Btb {
        &self.btb
    }
}

impl BtbSystem for PlainBtb {
    fn name(&self) -> &str {
        "plain"
    }

    fn lookup(&mut self, pc: Addr, ctx: &mut FrontendCtx<'_>) -> LookupOutcome {
        if let Some(entry) = self.btb.lookup(pc) {
            return LookupOutcome::Hit {
                target: entry.target,
                kind: entry.kind,
            };
        }
        if let Some(buffered) = self.software.take(pc, ctx.cycle) {
            self.btb.insert(pc, buffered.target, buffered.kind);
            return LookupOutcome::CoveredMiss {
                target: buffered.target,
                kind: buffered.kind,
            };
        }
        LookupOutcome::Miss
    }

    fn resolve_taken(&mut self, rec: &BranchRecord, _block: BlockId, _ctx: &mut FrontendCtx<'_>) {
        if let Some(target) = rec.outcome.target() {
            self.btb.insert(rec.pc, target, rec.kind);
        }
    }

    fn software_prefetch(&mut self, op: &PrefetchOp, decoded_at: u64, ctx: &mut FrontendCtx<'_>) {
        self.software.execute(op, decoded_at, ctx.program);
    }

    fn prefetch_stats(&self) -> PrefetchBufferStats {
        self.software.stats()
    }

    fn enable_differential(&mut self) {
        self.btb.enable_shadow();
    }

    fn validators(&self) -> Vec<&dyn Validator> {
        vec![&self.btb, self.software.buffer()]
    }

    fn inject_corruption(&mut self, kind: MutationKind) -> bool {
        match kind {
            MutationKind::BtbOccupancy => {
                self.btb.corrupt_occupancy();
                true
            }
            MutationKind::RasDepth => false,
        }
    }

    fn register_metrics(&self, registry: &mut twig_obs::MetricsRegistry) {
        registry.set_by_name("system.plain.btb_occupancy", self.btb.occupancy() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_workload::{ProgramGenerator, WorkloadSpec};

    fn setup() -> (Program, SimConfig, MemoryHierarchy) {
        let program = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
        let config = SimConfig::default();
        let mem = MemoryHierarchy::new(&config);
        (program, config, mem)
    }

    fn first_direct_branch(program: &Program) -> BlockId {
        program
            .blocks()
            .find(|(id, b)| {
                b.branch_kind().is_some_and(|k| k.is_direct())
                    && program.direct_branch_target_addr(*id).is_some()
            })
            .map(|(id, _)| id)
            .unwrap()
    }

    #[test]
    fn miss_then_resolve_then_hit() {
        let (program, config, mut mem) = setup();
        let mut sys = PlainBtb::new(&config);
        let block = first_direct_branch(&program);
        let rec = program.resolve_branch(block, true, Some(block_target(&program, block))).unwrap();
        let mut ctx = FrontendCtx {
            cycle: 0,
            program: &program,
            mem: &mut mem,
        };
        assert_eq!(sys.lookup(rec.pc, &mut ctx), LookupOutcome::Miss);
        sys.resolve_taken(&rec, block, &mut ctx);
        assert!(matches!(
            sys.lookup(rec.pc, &mut ctx),
            LookupOutcome::Hit { .. }
        ));
    }

    fn block_target(program: &Program, block: BlockId) -> BlockId {
        use twig_workload::Terminator;
        match &program.block(block).term {
            Terminator::Conditional { taken, .. } => *taken,
            Terminator::Jump { target } => *target,
            Terminator::Call { callee, .. } => program.function(*callee).entry,
            _ => panic!("not a direct branch"),
        }
    }

    #[test]
    fn brprefetch_covers_would_be_miss() {
        let (program, config, mut mem) = setup();
        let mut sys = PlainBtb::new(&config);
        let block = first_direct_branch(&program);
        let pc = program.block(block).branch_pc();
        let op = PrefetchOp::BrPrefetch {
            branch_block: block,
        };
        let mut ctx = FrontendCtx {
            cycle: 100,
            program: &program,
            mem: &mut mem,
        };
        sys.software_prefetch(&op, 50, &mut ctx);
        // Ready at 50 + prefetch_exec_latency < 100: covered.
        match sys.lookup(pc, &mut ctx) {
            LookupOutcome::CoveredMiss { target, .. } => {
                assert_eq!(Some(target), program.direct_branch_target_addr(block));
            }
            other => panic!("expected covered miss, got {other:?}"),
        }
        // Promoted into the BTB: next lookup is a plain hit.
        assert!(matches!(
            sys.lookup(pc, &mut ctx),
            LookupOutcome::Hit { .. }
        ));
        assert_eq!(sys.prefetch_stats().used, 1);
    }

    #[test]
    fn late_prefetch_does_not_cover() {
        let (program, config, mut mem) = setup();
        let mut sys = PlainBtb::new(&config);
        let block = first_direct_branch(&program);
        let pc = program.block(block).branch_pc();
        let mut ctx = FrontendCtx {
            cycle: 51,
            program: &program,
            mem: &mut mem,
        };
        sys.software_prefetch(
            &PrefetchOp::BrPrefetch {
                branch_block: block,
            },
            50,
            &mut ctx,
        );
        // decoded_at 50 + latency 4 = 54 > 51: still in flight.
        assert_eq!(sys.lookup(pc, &mut ctx), LookupOutcome::Miss);
    }

    #[test]
    fn brcoalesce_prefetches_masked_entries() {
        let (mut program, config, mut mem) = setup();
        // Build a coalesce table from the first few direct branches.
        let table: Vec<BlockId> = program
            .blocks()
            .filter(|(id, b)| {
                b.branch_kind().is_some_and(|k| k.is_direct())
                    && program.direct_branch_target_addr(*id).is_some()
            })
            .map(|(id, _)| id)
            .take(8)
            .collect();
        assert!(table.len() >= 4);
        program.set_coalesce_table(table.clone());
        let mut sys = PlainBtb::new(&config);
        let mut ctx = FrontendCtx {
            cycle: 1000,
            program: &program,
            mem: &mut mem,
        };
        sys.software_prefetch(
            &PrefetchOp::BrCoalesce {
                base_index: 0,
                bitmask: 0b1011,
            },
            0,
            &mut ctx,
        );
        assert_eq!(sys.prefetch_stats().inserted, 3);
        for (i, &block) in table.iter().take(4).enumerate() {
            let pc = program.block(block).branch_pc();
            let outcome = sys.lookup(pc, &mut ctx);
            if i == 2 {
                assert_eq!(outcome, LookupOutcome::Miss, "bit 2 unset");
            } else {
                assert!(outcome.is_hit(), "entry {i} should be prefetched");
            }
        }
    }

    #[test]
    fn coalesce_table_line_buffer_amortizes_latency() {
        let (mut program, config, mut mem) = setup();
        let table: Vec<BlockId> = program
            .blocks()
            .filter(|(id, b)| {
                b.branch_kind().is_some_and(|k| k.is_direct())
                    && program.direct_branch_target_addr(*id).is_some()
            })
            .map(|(id, _)| id)
            .take(2)
            .collect();
        program.set_coalesce_table(table.clone());
        let mut sys = PlainBtb::new(&config);
        let mut ctx = FrontendCtx {
            cycle: 0,
            program: &program,
            mem: &mut mem,
        };
        // First touch of the table line: slow path.
        sys.software_prefetch(
            &PrefetchOp::BrCoalesce {
                base_index: 0,
                bitmask: 0b1,
            },
            0,
            &mut ctx,
        );
        // Second touch (same line, entries are 12 B apart): fast path.
        sys.software_prefetch(
            &PrefetchOp::BrCoalesce {
                base_index: 1,
                bitmask: 0b1,
            },
            0,
            &mut ctx,
        );
        let pc0 = program.block(table[0]).branch_pc();
        let pc1 = program.block(table[1]).branch_pc();
        let slow_ready = config.prefetch_exec_latency + config.coalesce_table_miss_latency;
        let fast_ready = config.prefetch_exec_latency + 1;
        ctx.cycle = fast_ready;
        assert!(sys.lookup(pc1, &mut ctx).is_hit(), "fast entry ready");
        assert!(
            !sys.lookup(pc0, &mut ctx).is_hit(),
            "slow entry not ready before {slow_ready}"
        );
    }
}
