//! Set-associative branch target buffer (and indirect-target BTB).

use twig_types::{Addr, BranchKind};

use crate::config::BtbGeometry;
use crate::integrity::refmodel::RefBtb;
use crate::integrity::{Fault, Validator, ViolationKind};

/// One BTB entry: tag, target, and branch classification.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BtbEntry {
    tag: u64,
    /// Predicted taken target.
    pub target: Addr,
    /// Branch classification stored with the entry (lets the frontend pick
    /// the RAS/IBTB/direction-predictor path before decode).
    pub kind: BranchKind,
}

/// The vacancy sentinel. `Addr::ZERO` is never a real branch target
/// (generated programs live well above address zero), so a slot equal to
/// this constant is structurally *vacant* — the integrity layer's
/// occupancy scan relies on vacated slots being scrubbed back to it.
const EMPTY_ENTRY: BtbEntry = BtbEntry {
    tag: 0,
    target: Addr::ZERO,
    kind: BranchKind::Conditional,
};

/// Differential shadow state: the naive reference model plus the first
/// recorded divergence. Boxed behind an `Option` so the `off` tier pays
/// one pointer-null check per operation.
#[derive(Clone, Debug)]
struct BtbShadow {
    reference: RefBtb,
    divergence: Option<Fault>,
}

/// A set-associative, true-LRU branch target buffer.
///
/// Used for the main BTB (keyed by branch PC, holding direct targets and
/// branch kinds) and, with different geometry, for the IBTB (holding the
/// last observed indirect target).
///
/// Storage is a single flat `Vec<BtbEntry>` (`sets × ways`) with a
/// per-set occupancy count: every set is a contiguous MRU-first slice, so
/// `lookup`/`insert` touch one cache-friendly region instead of chasing a
/// per-set `Vec` allocation, and recency updates are slice rotations
/// instead of `remove`+`insert` shifts through a heap vector.
///
/// # Examples
///
/// ```
/// use twig_sim::{Btb, BtbGeometry};
/// use twig_types::{Addr, BranchKind};
///
/// let mut btb = Btb::new(BtbGeometry::new(64, 4));
/// let pc = Addr::new(0x40_1000);
/// assert!(btb.lookup(pc).is_none());
/// btb.insert(pc, Addr::new(0x40_2000), BranchKind::DirectJump);
/// assert_eq!(btb.lookup(pc).unwrap().target, Addr::new(0x40_2000));
/// ```
#[derive(Clone, Debug)]
pub struct Btb {
    // Flat `sets × ways` storage; set `s` owns
    // `storage[s * ways .. s * ways + lens[s]]`, MRU first (true LRU).
    storage: Vec<BtbEntry>,
    lens: Vec<u16>,
    ways: usize,
    set_shift: u32,
    set_bits: u32,
    set_mask: u64,
    geometry: BtbGeometry,
    name: &'static str,
    shadow: Option<Box<BtbShadow>>,
}

impl Btb {
    /// Creates an empty BTB with the given geometry.
    pub fn new(geometry: BtbGeometry) -> Self {
        Btb::named(geometry, "btb")
    }

    /// Creates an empty BTB with a component name for integrity reports
    /// (`ibtb`, `ubtb`, …).
    pub fn named(geometry: BtbGeometry, name: &'static str) -> Self {
        let sets = geometry.sets();
        let set_mask = sets as u64 - 1;
        assert!(
            geometry.ways <= u16::MAX as usize,
            "BTB associativity {} exceeds the u16 per-set occupancy counter",
            geometry.ways
        );
        Btb {
            storage: vec![EMPTY_ENTRY; sets * geometry.ways],
            lens: vec![0; sets],
            ways: geometry.ways,
            // Branch PCs are byte addresses; skip the low bit to spread
            // entries (x86 instructions are byte-aligned, so bit 0 carries
            // information, but real BTBs commonly drop it).
            set_shift: 1,
            set_bits: set_mask.count_ones(),
            set_mask,
            geometry,
            name,
            shadow: None,
        }
    }

    /// Arms the differential shadow: every subsequent operation is
    /// mirrored into a naive [`RefBtb`] and compared. Must be called on an
    /// empty BTB so both models start from the same state.
    pub fn enable_shadow(&mut self) {
        assert_eq!(self.occupancy(), 0, "shadow must start from an empty BTB");
        self.shadow = Some(Box::new(BtbShadow {
            reference: RefBtb::new(self.geometry),
            divergence: None,
        }));
    }

    /// Whether the differential shadow is armed.
    pub fn shadowed(&self) -> bool {
        self.shadow.is_some()
    }

    #[inline]
    fn set_and_tag(&self, pc: Addr) -> (usize, u64) {
        let key = pc.raw() >> self.set_shift;
        ((key & self.set_mask) as usize, key >> self.set_bits)
    }

    /// The occupied MRU-first slice of `set`, plus its occupancy.
    #[inline]
    fn set_slice(&self, set: usize) -> &[BtbEntry] {
        let base = set * self.ways;
        &self.storage[base..base + self.lens[set] as usize]
    }

    /// Looks up `pc`, promoting the entry to MRU on hit.
    #[inline]
    pub fn lookup(&mut self, pc: Addr) -> Option<BtbEntry> {
        let (set, tag) = self.set_and_tag(pc);
        let base = set * self.ways;
        let len = self.lens[set] as usize;
        let ways = &mut self.storage[base..base + len];
        let hit = match ways.iter().position(|e| e.tag == tag) {
            Some(pos) => {
                let entry = ways[pos];
                // Promote to MRU: one forward memmove of [0, pos), then
                // overwrite the head (entries are `Copy`, so this beats a
                // slice rotation).
                ways.copy_within(..pos, 1);
                ways[0] = entry;
                Some(entry)
            }
            None => None,
        };
        if self.shadow.is_some() {
            self.shadow_lookup(pc, hit);
        }
        hit
    }

    #[inline(never)]
    fn shadow_lookup(&mut self, pc: Addr, hit: Option<BtbEntry>) {
        let shadow = self.shadow.as_mut().expect("shadow armed");
        let ref_hit = shadow.reference.lookup(pc);
        let got = hit.map(|e| (e.target, e.kind));
        let expected = ref_hit.map(|e| (e.target, e.kind));
        if got != expected && shadow.divergence.is_none() {
            shadow.divergence = Some(Fault::new(
                ViolationKind::BtbDivergence,
                format!(
                    "lookup({pc:?}) returned {got:?}, reference model says {expected:?}"
                ),
            ));
        }
    }

    /// Checks for `pc` without touching recency state.
    #[inline]
    pub fn probe(&self, pc: Addr) -> Option<BtbEntry> {
        let (set, tag) = self.set_and_tag(pc);
        self.set_slice(set).iter().find(|e| e.tag == tag).copied()
    }

    /// Inserts or updates the entry for `pc` at MRU, returning the evicted
    /// entry's tag-reconstructed PC if the set overflowed.
    pub fn insert(&mut self, pc: Addr, target: Addr, kind: BranchKind) -> Option<Addr> {
        let evicted = self.insert_inner(pc, target, kind);
        if self.shadow.is_some() {
            self.shadow_insert(pc, target, kind, evicted);
        }
        evicted
    }

    fn insert_inner(&mut self, pc: Addr, target: Addr, kind: BranchKind) -> Option<Addr> {
        let (set, tag) = self.set_and_tag(pc);
        let base = set * self.ways;
        let len = self.lens[set] as usize;
        let ways = &mut self.storage[base..base + len];
        if let Some(pos) = ways.iter().position(|e| e.tag == tag) {
            ways.copy_within(..pos, 1);
            ways[0] = BtbEntry { tag, target, kind };
            return None;
        }
        if len < self.ways {
            let ways = &mut self.storage[base..base + len + 1];
            ways.copy_within(..len, 1);
            ways[0] = BtbEntry { tag, target, kind };
            self.lens[set] = (len + 1) as u16;
            return None;
        }
        // Full set: shift everything down one and drop the LRU tail.
        let victim = ways[len - 1];
        ways.copy_within(..len - 1, 1);
        ways[0] = BtbEntry { tag, target, kind };
        let key = (victim.tag << self.set_bits) | set as u64;
        Some(Addr::new(key << self.set_shift))
    }

    #[inline(never)]
    fn shadow_insert(&mut self, pc: Addr, target: Addr, kind: BranchKind, evicted: Option<Addr>) {
        let shadow = self.shadow.as_mut().expect("shadow armed");
        let ref_evicted = shadow.reference.insert(pc, target, kind);
        if evicted != ref_evicted && shadow.divergence.is_none() {
            shadow.divergence = Some(Fault::new(
                ViolationKind::BtbDivergence,
                format!(
                    "insert({pc:?}) evicted {evicted:?}, reference model says {ref_evicted:?}"
                ),
            ));
        }
    }

    /// Removes the entry for `pc` if present.
    pub fn invalidate(&mut self, pc: Addr) -> bool {
        let (set, tag) = self.set_and_tag(pc);
        let base = set * self.ways;
        let len = self.lens[set] as usize;
        let ways = &mut self.storage[base..base + len];
        let removed = match ways.iter().position(|e| e.tag == tag) {
            Some(pos) => {
                ways.copy_within(pos + 1.., pos);
                // Scrub the vacated tail slot so the occupancy scan can
                // tell vacant slots from live ones.
                ways[len - 1] = EMPTY_ENTRY;
                self.lens[set] = (len - 1) as u16;
                true
            }
            None => false,
        };
        if self.shadow.is_some() {
            self.shadow_invalidate(pc, removed);
        }
        removed
    }

    #[inline(never)]
    fn shadow_invalidate(&mut self, pc: Addr, removed: bool) {
        let shadow = self.shadow.as_mut().expect("shadow armed");
        let ref_removed = shadow.reference.invalidate(pc);
        if removed != ref_removed && shadow.divergence.is_none() {
            shadow.divergence = Some(Fault::new(
                ViolationKind::BtbDivergence,
                format!(
                    "invalidate({pc:?}) removed={removed}, reference model says {ref_removed}"
                ),
            ));
        }
    }

    /// Number of resident entries.
    pub fn occupancy(&self) -> usize {
        self.lens.iter().map(|&l| l as usize).sum()
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.storage.len()
    }

    /// Clears all entries.
    pub fn clear(&mut self) {
        self.lens.fill(0);
        // Scrub so the occupancy scan's vacancy invariant keeps holding.
        self.storage.fill(EMPTY_ENTRY);
        if let Some(shadow) = &mut self.shadow {
            shadow.reference.clear();
        }
    }

    /// Seeds a BTB-occupancy corruption for the integrity mutation drill:
    /// bumps (or, if the set is full, drops) one per-set occupancy counter
    /// without touching the entries, exactly the class of bookkeeping bug
    /// a hot-loop rewrite could introduce.
    #[doc(hidden)]
    pub fn corrupt_occupancy(&mut self) {
        if (self.lens[0] as usize) < self.ways {
            self.lens[0] += 1;
        } else {
            self.lens[0] -= 1;
        }
    }

    /// Full structural scan: per-set occupancy counters vs. live entries,
    /// vacancy sentinels, duplicate tags, and (when shadowed) lockstep
    /// equality with the naive reference model.
    fn check_deep(&self) -> Result<(), Fault> {
        for set in 0..self.lens.len() {
            let len = self.lens[set] as usize;
            if len > self.ways {
                return Err(Fault::new(
                    ViolationKind::BtbOccupancy,
                    format!("set {set}: occupancy {len} exceeds {} ways", self.ways),
                ));
            }
            let base = set * self.ways;
            let live = &self.storage[base..base + len];
            for (way, entry) in live.iter().enumerate() {
                if *entry == EMPTY_ENTRY {
                    return Err(Fault::new(
                        ViolationKind::BtbOccupancy,
                        format!(
                            "set {set}: occupancy {len} but way {way} is vacant \
                             (counter ahead of live entries)"
                        ),
                    ));
                }
                if live[..way].iter().any(|e| e.tag == entry.tag) {
                    return Err(Fault::new(
                        ViolationKind::BtbDuplicate,
                        format!("set {set}: duplicate tag {:#x}", entry.tag),
                    ));
                }
            }
            for (off, entry) in self.storage[base + len..base + self.ways].iter().enumerate() {
                if *entry != EMPTY_ENTRY {
                    return Err(Fault::new(
                        ViolationKind::BtbOccupancy,
                        format!(
                            "set {set}: live entry at way {} beyond occupancy {len} \
                             (counter behind live entries)",
                            len + off
                        ),
                    ));
                }
            }
            if let Some(shadow) = &self.shadow {
                let reference = shadow.reference.set_entries(set);
                let matches = reference.len() == len
                    && live.iter().zip(reference).all(|(e, r)| {
                        e.tag == r.tag && e.target == r.target && e.kind == r.kind
                    });
                if !matches {
                    return Err(Fault::new(
                        ViolationKind::BtbDivergence,
                        format!(
                            "set {set}: {len} live entries do not match the reference \
                             model's {} entries",
                            reference.len()
                        ),
                    ));
                }
            }
        }
        Ok(())
    }
}

impl Validator for Btb {
    fn component(&self) -> &'static str {
        self.name
    }

    fn check(&self, deep: bool) -> Result<(), Fault> {
        if let Some(shadow) = &self.shadow {
            if let Some(divergence) = &shadow.divergence {
                return Err(divergence.clone());
            }
        }
        if deep {
            self.check_deep()?;
        }
        Ok(())
    }

    fn snapshot(&self) -> String {
        let sets = self.lens.len();
        let mut text = format!(
            "{} {}x{} occupancy {}/{}",
            self.name,
            sets,
            self.ways,
            self.occupancy(),
            self.capacity()
        );
        // The densest few sets, MRU first: enough to see the corruption
        // without dumping 8 K sets.
        let mut order: Vec<usize> = (0..sets).collect();
        order.sort_by_key(|&s| std::cmp::Reverse(self.lens[s]));
        for &set in order.iter().take(4) {
            let live = self.set_slice(set);
            text.push_str(&format!("\nset {set} (len {}):", self.lens[set]));
            for e in live {
                text.push_str(&format!(" [tag {:#x} -> {:?} {:?}]", e.tag, e.target, e.kind));
            }
        }
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(v: u64) -> Addr {
        Addr::new(v)
    }

    #[test]
    fn insert_then_lookup() {
        let mut btb = Btb::new(BtbGeometry::new(16, 2));
        btb.insert(addr(0x1000), addr(0x2000), BranchKind::DirectCall);
        let e = btb.lookup(addr(0x1000)).unwrap();
        assert_eq!(e.target, addr(0x2000));
        assert_eq!(e.kind, BranchKind::DirectCall);
    }

    #[test]
    fn update_in_place() {
        let mut btb = Btb::new(BtbGeometry::new(16, 2));
        btb.insert(addr(0x1000), addr(0x2000), BranchKind::Conditional);
        btb.insert(addr(0x1000), addr(0x3000), BranchKind::Conditional);
        assert_eq!(btb.occupancy(), 1);
        assert_eq!(btb.lookup(addr(0x1000)).unwrap().target, addr(0x3000));
    }

    #[test]
    fn lru_eviction_order() {
        // 1 set × 2 ways: third distinct pc mapping to the set evicts LRU.
        let mut btb = Btb::new(BtbGeometry::new(2, 2));
        btb.insert(addr(0x10), addr(1), BranchKind::DirectJump);
        btb.insert(addr(0x20), addr(2), BranchKind::DirectJump);
        // Touch 0x10 so 0x20 becomes LRU.
        btb.lookup(addr(0x10)).unwrap();
        let evicted = btb.insert(addr(0x30), addr(3), BranchKind::DirectJump);
        assert_eq!(evicted, Some(addr(0x20)));
        assert!(btb.probe(addr(0x10)).is_some());
        assert!(btb.probe(addr(0x20)).is_none());
        assert!(btb.probe(addr(0x30)).is_some());
    }

    #[test]
    fn evicted_pc_reconstruction_roundtrips() {
        let mut btb = Btb::new(BtbGeometry::new(8, 1));
        // Two PCs in the same set (differ above set bits).
        let a = addr(0x1000);
        let b = addr(0x1000 + (8 << 1) * 64);
        assert_eq!(btb.set_and_tag(a).0, btb.set_and_tag(b).0);
        btb.insert(a, addr(1), BranchKind::DirectJump);
        let evicted = btb.insert(b, addr(2), BranchKind::DirectJump);
        assert_eq!(evicted, Some(a));
    }

    #[test]
    fn probe_does_not_promote() {
        let mut btb = Btb::new(BtbGeometry::new(2, 2));
        btb.insert(addr(0x10), addr(1), BranchKind::DirectJump);
        btb.insert(addr(0x20), addr(2), BranchKind::DirectJump);
        // probe (not lookup) 0x10: it stays LRU and is evicted next.
        btb.probe(addr(0x10)).unwrap();
        let evicted = btb.insert(addr(0x30), addr(3), BranchKind::DirectJump);
        assert_eq!(evicted, Some(addr(0x10)));
    }

    #[test]
    fn invalidate_removes() {
        let mut btb = Btb::new(BtbGeometry::new(16, 4));
        btb.insert(addr(0x77), addr(1), BranchKind::Return);
        assert!(btb.invalidate(addr(0x77)));
        assert!(!btb.invalidate(addr(0x77)));
        assert!(btb.lookup(addr(0x77)).is_none());
    }

    #[test]
    #[should_panic(expected = "exceeds the u16 per-set occupancy counter")]
    fn associativity_beyond_u16_is_rejected() {
        let _ = Btb::new(BtbGeometry::new(1 << 17, 1 << 17));
    }

    #[test]
    fn occupancy_and_capacity() {
        let mut btb = Btb::new(BtbGeometry::new(64, 4));
        assert_eq!(btb.capacity(), 64);
        for i in 0..100u64 {
            btb.insert(addr(i * 2), addr(i), BranchKind::Conditional);
        }
        assert!(btb.occupancy() <= 64);
        btb.clear();
        assert_eq!(btb.occupancy(), 0);
    }

    #[test]
    fn distinct_pcs_distinct_entries() {
        let mut btb = Btb::new(BtbGeometry::new(1024, 4));
        for i in 0..200u64 {
            btb.insert(addr(0x1000 + i * 6), addr(i), BranchKind::Conditional);
        }
        for i in 0..200u64 {
            let e = btb.probe(addr(0x1000 + i * 6));
            if let Some(e) = e {
                assert_eq!(e.target, addr(i));
            }
        }
    }

    #[test]
    fn middle_way_invalidation_keeps_lru_order() {
        let mut btb = Btb::new(BtbGeometry::new(4, 4));
        // One set, 4 ways; insert 4, drop the 2nd-most-recent, insert 2.
        let step = 4 << 1; // next address in the same set
        let pcs: Vec<Addr> = (0..6).map(|i| addr(0x100 + i * step * 64)).collect();
        for &pc in &pcs[..4] {
            btb.insert(pc, addr(1), BranchKind::Conditional);
        }
        assert!(btb.invalidate(pcs[2]));
        assert_eq!(btb.occupancy(), 3);
        // Refill: no eviction on the first insert, LRU (pcs[0]) on the next.
        assert_eq!(btb.insert(pcs[4], addr(1), BranchKind::Conditional), None);
        assert_eq!(
            btb.insert(pcs[5], addr(1), BranchKind::Conditional),
            Some(pcs[0])
        );
    }
}
