//! Set-associative branch target buffer (and indirect-target BTB).

use twig_types::{Addr, BranchKind};

use crate::config::BtbGeometry;

/// One BTB entry: tag, target, and branch classification.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BtbEntry {
    tag: u64,
    /// Predicted taken target.
    pub target: Addr,
    /// Branch classification stored with the entry (lets the frontend pick
    /// the RAS/IBTB/direction-predictor path before decode).
    pub kind: BranchKind,
}

const EMPTY_ENTRY: BtbEntry = BtbEntry {
    tag: 0,
    target: Addr::ZERO,
    kind: BranchKind::Conditional,
};

/// A set-associative, true-LRU branch target buffer.
///
/// Used for the main BTB (keyed by branch PC, holding direct targets and
/// branch kinds) and, with different geometry, for the IBTB (holding the
/// last observed indirect target).
///
/// Storage is a single flat `Vec<BtbEntry>` (`sets × ways`) with a
/// per-set occupancy count: every set is a contiguous MRU-first slice, so
/// `lookup`/`insert` touch one cache-friendly region instead of chasing a
/// per-set `Vec` allocation, and recency updates are slice rotations
/// instead of `remove`+`insert` shifts through a heap vector.
///
/// # Examples
///
/// ```
/// use twig_sim::{Btb, BtbGeometry};
/// use twig_types::{Addr, BranchKind};
///
/// let mut btb = Btb::new(BtbGeometry::new(64, 4));
/// let pc = Addr::new(0x40_1000);
/// assert!(btb.lookup(pc).is_none());
/// btb.insert(pc, Addr::new(0x40_2000), BranchKind::DirectJump);
/// assert_eq!(btb.lookup(pc).unwrap().target, Addr::new(0x40_2000));
/// ```
#[derive(Clone, Debug)]
pub struct Btb {
    // Flat `sets × ways` storage; set `s` owns
    // `storage[s * ways .. s * ways + lens[s]]`, MRU first (true LRU).
    storage: Vec<BtbEntry>,
    lens: Vec<u16>,
    ways: usize,
    set_shift: u32,
    set_bits: u32,
    set_mask: u64,
}

impl Btb {
    /// Creates an empty BTB with the given geometry.
    pub fn new(geometry: BtbGeometry) -> Self {
        let sets = geometry.sets();
        let set_mask = sets as u64 - 1;
        assert!(
            geometry.ways <= u16::MAX as usize,
            "BTB associativity {} exceeds the u16 per-set occupancy counter",
            geometry.ways
        );
        Btb {
            storage: vec![EMPTY_ENTRY; sets * geometry.ways],
            lens: vec![0; sets],
            ways: geometry.ways,
            // Branch PCs are byte addresses; skip the low bit to spread
            // entries (x86 instructions are byte-aligned, so bit 0 carries
            // information, but real BTBs commonly drop it).
            set_shift: 1,
            set_bits: set_mask.count_ones(),
            set_mask,
        }
    }

    #[inline]
    fn set_and_tag(&self, pc: Addr) -> (usize, u64) {
        let key = pc.raw() >> self.set_shift;
        ((key & self.set_mask) as usize, key >> self.set_bits)
    }

    /// The occupied MRU-first slice of `set`, plus its occupancy.
    #[inline]
    fn set_slice(&self, set: usize) -> &[BtbEntry] {
        let base = set * self.ways;
        &self.storage[base..base + self.lens[set] as usize]
    }

    /// Looks up `pc`, promoting the entry to MRU on hit.
    #[inline]
    pub fn lookup(&mut self, pc: Addr) -> Option<BtbEntry> {
        let (set, tag) = self.set_and_tag(pc);
        let base = set * self.ways;
        let len = self.lens[set] as usize;
        let ways = &mut self.storage[base..base + len];
        let pos = ways.iter().position(|e| e.tag == tag)?;
        let entry = ways[pos];
        // Promote to MRU: one forward memmove of [0, pos), then overwrite
        // the head (entries are `Copy`, so this beats a slice rotation).
        ways.copy_within(..pos, 1);
        ways[0] = entry;
        Some(entry)
    }

    /// Checks for `pc` without touching recency state.
    #[inline]
    pub fn probe(&self, pc: Addr) -> Option<BtbEntry> {
        let (set, tag) = self.set_and_tag(pc);
        self.set_slice(set).iter().find(|e| e.tag == tag).copied()
    }

    /// Inserts or updates the entry for `pc` at MRU, returning the evicted
    /// entry's tag-reconstructed PC if the set overflowed.
    pub fn insert(&mut self, pc: Addr, target: Addr, kind: BranchKind) -> Option<Addr> {
        let (set, tag) = self.set_and_tag(pc);
        let base = set * self.ways;
        let len = self.lens[set] as usize;
        let ways = &mut self.storage[base..base + len];
        if let Some(pos) = ways.iter().position(|e| e.tag == tag) {
            ways.copy_within(..pos, 1);
            ways[0] = BtbEntry { tag, target, kind };
            return None;
        }
        if len < self.ways {
            let ways = &mut self.storage[base..base + len + 1];
            ways.copy_within(..len, 1);
            ways[0] = BtbEntry { tag, target, kind };
            self.lens[set] = (len + 1) as u16;
            return None;
        }
        // Full set: shift everything down one and drop the LRU tail.
        let victim = ways[len - 1];
        ways.copy_within(..len - 1, 1);
        ways[0] = BtbEntry { tag, target, kind };
        let key = (victim.tag << self.set_bits) | set as u64;
        Some(Addr::new(key << self.set_shift))
    }

    /// Removes the entry for `pc` if present.
    pub fn invalidate(&mut self, pc: Addr) -> bool {
        let (set, tag) = self.set_and_tag(pc);
        let base = set * self.ways;
        let len = self.lens[set] as usize;
        let ways = &mut self.storage[base..base + len];
        match ways.iter().position(|e| e.tag == tag) {
            Some(pos) => {
                ways.copy_within(pos + 1.., pos);
                self.lens[set] = (len - 1) as u16;
                true
            }
            None => false,
        }
    }

    /// Number of resident entries.
    pub fn occupancy(&self) -> usize {
        self.lens.iter().map(|&l| l as usize).sum()
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.storage.len()
    }

    /// Clears all entries.
    pub fn clear(&mut self) {
        self.lens.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(v: u64) -> Addr {
        Addr::new(v)
    }

    #[test]
    fn insert_then_lookup() {
        let mut btb = Btb::new(BtbGeometry::new(16, 2));
        btb.insert(addr(0x1000), addr(0x2000), BranchKind::DirectCall);
        let e = btb.lookup(addr(0x1000)).unwrap();
        assert_eq!(e.target, addr(0x2000));
        assert_eq!(e.kind, BranchKind::DirectCall);
    }

    #[test]
    fn update_in_place() {
        let mut btb = Btb::new(BtbGeometry::new(16, 2));
        btb.insert(addr(0x1000), addr(0x2000), BranchKind::Conditional);
        btb.insert(addr(0x1000), addr(0x3000), BranchKind::Conditional);
        assert_eq!(btb.occupancy(), 1);
        assert_eq!(btb.lookup(addr(0x1000)).unwrap().target, addr(0x3000));
    }

    #[test]
    fn lru_eviction_order() {
        // 1 set × 2 ways: third distinct pc mapping to the set evicts LRU.
        let mut btb = Btb::new(BtbGeometry::new(2, 2));
        btb.insert(addr(0x10), addr(1), BranchKind::DirectJump);
        btb.insert(addr(0x20), addr(2), BranchKind::DirectJump);
        // Touch 0x10 so 0x20 becomes LRU.
        btb.lookup(addr(0x10)).unwrap();
        let evicted = btb.insert(addr(0x30), addr(3), BranchKind::DirectJump);
        assert_eq!(evicted, Some(addr(0x20)));
        assert!(btb.probe(addr(0x10)).is_some());
        assert!(btb.probe(addr(0x20)).is_none());
        assert!(btb.probe(addr(0x30)).is_some());
    }

    #[test]
    fn evicted_pc_reconstruction_roundtrips() {
        let mut btb = Btb::new(BtbGeometry::new(8, 1));
        // Two PCs in the same set (differ above set bits).
        let a = addr(0x1000);
        let b = addr(0x1000 + (8 << 1) * 64);
        assert_eq!(btb.set_and_tag(a).0, btb.set_and_tag(b).0);
        btb.insert(a, addr(1), BranchKind::DirectJump);
        let evicted = btb.insert(b, addr(2), BranchKind::DirectJump);
        assert_eq!(evicted, Some(a));
    }

    #[test]
    fn probe_does_not_promote() {
        let mut btb = Btb::new(BtbGeometry::new(2, 2));
        btb.insert(addr(0x10), addr(1), BranchKind::DirectJump);
        btb.insert(addr(0x20), addr(2), BranchKind::DirectJump);
        // probe (not lookup) 0x10: it stays LRU and is evicted next.
        btb.probe(addr(0x10)).unwrap();
        let evicted = btb.insert(addr(0x30), addr(3), BranchKind::DirectJump);
        assert_eq!(evicted, Some(addr(0x10)));
    }

    #[test]
    fn invalidate_removes() {
        let mut btb = Btb::new(BtbGeometry::new(16, 4));
        btb.insert(addr(0x77), addr(1), BranchKind::Return);
        assert!(btb.invalidate(addr(0x77)));
        assert!(!btb.invalidate(addr(0x77)));
        assert!(btb.lookup(addr(0x77)).is_none());
    }

    #[test]
    #[should_panic(expected = "exceeds the u16 per-set occupancy counter")]
    fn associativity_beyond_u16_is_rejected() {
        let _ = Btb::new(BtbGeometry::new(1 << 17, 1 << 17));
    }

    #[test]
    fn occupancy_and_capacity() {
        let mut btb = Btb::new(BtbGeometry::new(64, 4));
        assert_eq!(btb.capacity(), 64);
        for i in 0..100u64 {
            btb.insert(addr(i * 2), addr(i), BranchKind::Conditional);
        }
        assert!(btb.occupancy() <= 64);
        btb.clear();
        assert_eq!(btb.occupancy(), 0);
    }

    #[test]
    fn distinct_pcs_distinct_entries() {
        let mut btb = Btb::new(BtbGeometry::new(1024, 4));
        for i in 0..200u64 {
            btb.insert(addr(0x1000 + i * 6), addr(i), BranchKind::Conditional);
        }
        for i in 0..200u64 {
            let e = btb.probe(addr(0x1000 + i * 6));
            if let Some(e) = e {
                assert_eq!(e.target, addr(i));
            }
        }
    }

    #[test]
    fn middle_way_invalidation_keeps_lru_order() {
        let mut btb = Btb::new(BtbGeometry::new(4, 4));
        // One set, 4 ways; insert 4, drop the 2nd-most-recent, insert 2.
        let step = 4 << 1; // next address in the same set
        let pcs: Vec<Addr> = (0..6).map(|i| addr(0x100 + i * step * 64)).collect();
        for &pc in &pcs[..4] {
            btb.insert(pc, addr(1), BranchKind::Conditional);
        }
        assert!(btb.invalidate(pcs[2]));
        assert_eq!(btb.occupancy(), 3);
        // Refill: no eviction on the first insert, LRU (pcs[0]) on the next.
        assert_eq!(btb.insert(pcs[4], addr(1), BranchKind::Conditional), None);
        assert_eq!(
            btb.insert(pcs[5], addr(1), BranchKind::Conditional),
            Some(pcs[0])
        );
    }
}
