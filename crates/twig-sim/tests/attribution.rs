//! Attribution-layer integration tests: Top-Down slot conservation on
//! every app configuration, reconciliation of the per-branch attribution
//! profile against the aggregate bubble counters (no double-charging),
//! and bit-identity of the headline statistics with attribution on.

use twig_sim::{AttrConfig, MissKind, ObsConfig, PlainBtb, SimConfig, SimStats, Simulator};
use twig_workload::{AppId, InputConfig, ProgramGenerator, Walker, WorkloadSpec};

const BUDGET: u64 = 60_000;

fn run_app(app: AppId, obs: ObsConfig) -> (SimStats, Option<Simulator<'static, PlainBtb>>) {
    // Leak the program: each test runs a handful of small apps once, and
    // returning the simulator (for its snapshots) requires 'static data.
    let spec: &'static WorkloadSpec = Box::leak(Box::new(WorkloadSpec::preset(app)));
    let program = Box::leak(Box::new(ProgramGenerator::new(spec.clone()).generate()));
    let config = SimConfig {
        obs,
        ..SimConfig::paper_baseline(spec.backend_extra_cpki)
    };
    let mut sim = Simulator::new(program, config, PlainBtb::new(&config));
    let stats = sim.run(Walker::new(&*program, InputConfig::numbered(0)), BUDGET);
    (stats, Some(sim))
}

#[test]
fn topdown_slots_conserve_on_all_nine_apps() {
    for app in AppId::ALL {
        let spec = WorkloadSpec::preset(app);
        let config = SimConfig::paper_baseline(spec.backend_extra_cpki);
        let program = ProgramGenerator::new(spec).generate();
        let mut sim = Simulator::new(&program, config, PlainBtb::new(&config));
        let stats = sim.run(Walker::new(&program, InputConfig::numbered(0)), BUDGET);
        // Every cycle attributes exactly `retire_width` slots (and the
        // paper machine is width-symmetric: fetch_width == retire_width).
        assert_eq!(config.fetch_width, config.retire_width, "{app:?}");
        assert_eq!(
            stats.topdown.total(),
            stats.cycles * u64::from(config.fetch_width),
            "slot conservation violated on {app:?}"
        );
    }
}

#[test]
fn attribution_reconciles_with_aggregate_counters() {
    for app in [AppId::Kafka, AppId::Wordpress, AppId::Verilator] {
        let obs = ObsConfig::counters().with_attr(AttrConfig::on());
        let (stats, sim) = run_app(app, obs);
        let sim = sim.unwrap();
        let attr = sim.attribution_snapshot().expect("attribution enabled");
        let metrics = sim.metrics_snapshot().expect("counters tier");

        // Every resteer is charged exactly once: event totals match the
        // aggregate resteer counters, cycle totals match the
        // resteer-penalty histogram's sum (same charge site).
        assert_eq!(
            attr.total_events,
            stats.decode_resteers + stats.exec_resteers,
            "event totals diverge on {app:?}"
        );
        let penalty = metrics
            .histogram("frontend.resteer_penalty")
            .expect("penalty histogram");
        assert_eq!(
            attr.total_cycles, penalty.sum,
            "cycle totals diverge on {app:?}"
        );
        assert!(attr.total_events > 0, "no resteers at all on {app:?}");

        // With sample=1 the table is charged on every event.
        assert_eq!(attr.sampled_events, attr.total_events);
        assert_eq!(attr.sampled_cycles, attr.total_cycles);

        // The table never over-counts: per-entry charges (minus their
        // error bounds) stay within the exact total.
        let table_cycles: u64 = attr.entries.iter().map(|e| e.cycles - e.error_cycles).sum();
        assert!(table_cycles <= attr.total_cycles);

        // Kind-level reconciliation: BTB-miss entries vs miss resteers.
        let by_kind = attr.cycles_by_miss_kind();
        let btb_cycles = by_kind[MissKind::BtbMissDecode.index()]
            + by_kind[MissKind::BtbMissExecute.index()];
        if stats.total_btb_misses() == stats.covered_misses.iter().sum::<u64>() {
            assert_eq!(btb_cycles, 0, "no uncovered misses but BTB charges on {app:?}");
        }

        // The mirrored totals agree with the snapshot.
        assert_eq!(metrics.counter("obs.attr.total_cycles"), Some(attr.total_cycles));
        assert_eq!(metrics.counter("obs.attr.total_events"), Some(attr.total_events));
    }
}

#[test]
fn attribution_does_not_perturb_the_simulation() {
    let (off, _) = run_app(AppId::Kafka, ObsConfig::off());
    let (on, sim) = run_app(
        AppId::Kafka,
        ObsConfig::off().with_attr(AttrConfig { k: 8, sample: 4, ..AttrConfig::on() }),
    );
    assert_eq!(off, on, "attribution changed the simulated statistics");
    // Attribution alone (level off) still yields both snapshots.
    let sim = sim.unwrap();
    assert!(sim.attribution_snapshot().is_some());
    assert!(sim.metrics_snapshot().is_some());
    // Sampling keeps exact totals.
    let attr = sim.attribution_snapshot().unwrap();
    assert_eq!(attr.total_events, on.decode_resteers + on.exec_resteers);
    assert!(attr.sampled_events <= attr.total_events.div_ceil(4));
    assert!(attr.entries.len() <= 8, "table respects its capacity");
}

#[test]
fn attribution_export_is_deterministic() {
    let obs = ObsConfig::counters().with_attr(AttrConfig::on());
    let (_, a) = run_app(AppId::Drupal, obs);
    let (_, b) = run_app(AppId::Drupal, obs);
    let a = a.unwrap();
    let b = b.unwrap();
    let ja = a.attribution_snapshot().unwrap().to_json().unwrap();
    let jb = b.attribution_snapshot().unwrap().to_json().unwrap();
    assert_eq!(ja, jb);
    assert_eq!(
        a.attribution_folded("drupal/baseline"),
        b.attribution_folded("drupal/baseline")
    );
    let folded = a.attribution_folded("drupal/baseline").unwrap();
    assert!(folded.lines().all(|l| l.starts_with("drupal/baseline;")));
}
