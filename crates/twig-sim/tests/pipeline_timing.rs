//! Precise pipeline-timing tests on hand-built programs: with exact CFGs
//! the expected resteer costs, region shapes, and steady-state rates can
//! be asserted quantitatively rather than directionally.

use twig_sim::{DirectionPredictorKind, PlainBtb, SimConfig, SimStats, Simulator};
use twig_types::BlockId;
use twig_workload::{InputConfig, Program, ProgramBuilder, Terminator, Walker};

/// A single hot loop: bb0 -(cond, always taken)-> bb0; bb1 is dead exit.
fn hot_loop(instrs_per_block: u32) -> Program {
    let mut b = ProgramBuilder::new();
    let f0 = b.function();
    b.block(
        f0,
        instrs_per_block,
        Terminator::Conditional {
            taken: b.block_ref(f0, 0),
            not_taken: b.block_ref(f0, 1),
            taken_prob: 1.0,
        },
    );
    b.block(f0, 1, Terminator::Return);
    b.build(f0)
}

/// A chain of `n` distinct blocks linked by jumps, closed into a cycle:
/// every block's terminator is a distinct taken branch site.
fn jump_ring(n: usize, instrs_per_block: u32) -> Program {
    let mut b = ProgramBuilder::new();
    let f0 = b.function();
    for i in 0..n {
        let next = (i + 1) % n;
        b.block(
            f0,
            instrs_per_block,
            Terminator::Jump {
                target: b.block_ref(f0, next),
            },
        );
    }
    b.build(f0)
}

fn no_skew() -> InputConfig {
    InputConfig {
        cond_skew: 0.0,
        weight_skew: 0.0,
        ..InputConfig::numbered(0)
    }
}

fn run(program: &Program, config: SimConfig, instructions: u64) -> SimStats {
    let mut sim = Simulator::new(program, config, PlainBtb::new(&config));
    sim.run(Walker::new(program, no_skew()), instructions)
}

fn quiet_config() -> SimConfig {
    SimConfig {
        backend_extra_cpki: 0.0,
        direction: DirectionPredictorKind::Oracle,
        ..SimConfig::default()
    }
}

#[test]
fn hot_loop_reaches_bpu_limited_steady_state() {
    // One taken branch per block: the BPU emits one region (= one block)
    // per cycle, so steady-state IPC == instrs per block / region,
    // bounded by retire width.
    let program = hot_loop(4);
    let stats = run(&program, quiet_config(), 100_000);
    let ipc = stats.ipc();
    assert!(
        (3.2..=4.05).contains(&ipc),
        "expected ~4 IPC (one 4-instr region/cycle), got {ipc:.2}"
    );
    // The loop branch misses exactly once (compulsory), then always hits.
    assert_eq!(stats.total_btb_misses(), 1);
    assert_eq!(stats.decode_resteers, 1);
}

#[test]
fn wide_hot_loop_is_retire_limited() {
    // 12-instr blocks exceed the 6-wide retire: IPC pins at ~6.
    let program = hot_loop(12);
    let stats = run(&program, quiet_config(), 120_000);
    let ipc = stats.ipc();
    assert!(
        (5.2..=6.0).contains(&ipc),
        "expected retire-limited ~6 IPC, got {ipc:.2}"
    );
}

#[test]
fn every_block_is_its_own_region() {
    // In a jump ring every block ends taken, so regions cannot merge:
    // accesses == block executions == taken jumps.
    let program = jump_ring(8, 3);
    let stats = run(&program, quiet_config(), 24_000);
    let jumps = stats.btb_accesses[twig_types::BranchKind::DirectJump.index()];
    // 24k instructions / 3 per block = 8k block executions.
    assert!((7_900..=8_100).contains(&(jumps as i64)), "{jumps}");
}

#[test]
fn ring_larger_than_btb_set_conflicts_forever() {
    // A ring whose 9 branches all map into few sets of a tiny BTB keeps
    // missing; one smaller than the BTB stops missing after warmup.
    let small_cfg = SimConfig {
        btb: twig_sim::BtbGeometry::new(8, 1),
        ..quiet_config()
    };
    let fits = run(&jump_ring(4, 3), small_cfg, 30_000);
    let thrashes = run(&jump_ring(64, 3), small_cfg, 30_000);
    assert!(fits.total_btb_misses() <= 8, "{}", fits.total_btb_misses());
    assert!(
        thrashes.total_btb_misses() > 5_000,
        "{}",
        thrashes.total_btb_misses()
    );
    assert!(thrashes.ipc() < fits.ipc() * 0.6);
}

#[test]
fn decode_resteer_cost_matches_pipeline_depth() {
    // Ideal I$ isolates the resteer cost. Every jump in a ring larger than
    // the BTB misses -> each block costs (decode_pipe + redirect + fetch)
    // extra cycles versus the hit case.
    let config = SimConfig {
        ideal_icache: true,
        btb: twig_sim::BtbGeometry::new(8, 1),
        ..quiet_config()
    };
    let n = 64;
    let instrs = 30_000;
    let hits = run(&jump_ring(4, 3), config, instrs);
    let misses = run(&jump_ring(n, 3), config, instrs);
    let blocks = instrs / 3;
    let extra_per_block =
        (misses.cycles as f64 - hits.cycles as f64) / blocks as f64;
    // Expected bubble: decode_pipe (12) + redirect (2) + fetch/issue (~2).
    assert!(
        (10.0..=22.0).contains(&extra_per_block),
        "decode-resteer cost {extra_per_block:.1} cycles/block"
    );
}

#[test]
fn covered_miss_avoids_the_resteer_cost() {
    // Hand-inject a brprefetch in a two-block loop covering the *other*
    // block's branch: after warmup, would-be misses become covered and the
    // IPC approaches the always-hit configuration.
    let build = |tiny_btb: bool, inject: bool| -> SimStats {
        let mut b = ProgramBuilder::new();
        let f0 = b.function();
        for i in 0..32usize {
            b.block(
                f0,
                3,
                Terminator::Jump {
                    target: b.block_ref(f0, (i + 1) % 32),
                },
            );
        }
        let mut program = b.build(f0);
        if inject {
            // Each block prefetches the branch 8 blocks ahead (timely at
            // one region per cycle and a 12-cycle decode pipe).
            for i in 0..32u32 {
                let target_block = BlockId::new((i + 8) % 32);
                program.block_mut(BlockId::new(i)).prefetch_ops.push(
                    twig_types::PrefetchOp::BrPrefetch {
                        branch_block: target_block,
                    },
                );
            }
            twig_workload::layout::assign_layout(
                &mut program,
                &twig_workload::LayoutOptions::default(),
            );
        }
        let config = SimConfig {
            ideal_icache: true,
            btb: if tiny_btb {
                twig_sim::BtbGeometry::new(4, 1)
            } else {
                SimConfig::default().btb
            },
            ..quiet_config()
        };
        run(&program, config, 30_000)
    };
    let baseline = build(true, false);
    let twig = build(true, true);
    let big = build(false, false);
    assert!(
        baseline.total_btb_misses() > 5_000,
        "baseline must thrash: {}",
        baseline.total_btb_misses()
    );
    assert!(
        twig.total_covered_misses() > 4_000,
        "prefetches must cover: {} covered, {} missed",
        twig.total_covered_misses(),
        twig.total_btb_misses()
    );
    assert!(
        twig.ipc() > baseline.ipc() * 1.3,
        "covering misses must pay off: {:.2} vs {:.2}",
        twig.ipc(),
        baseline.ipc()
    );
    assert!(twig.ipc() <= big.ipc() * 1.02, "cannot beat the always-hit BTB");
}

#[test]
fn rob_cap_bounds_frontend_runahead() {
    // With a crushing backend factor the frontend must stall once the ROB
    // fills; decoded-but-unretired work stays bounded, which shows up as
    // backend-bound slots dominating.
    let program = hot_loop(4);
    let config = SimConfig {
        backend_extra_cpki: 2_000.0,
        direction: DirectionPredictorKind::Oracle,
        ..SimConfig::default()
    };
    let stats = run(&program, config, 20_000);
    let td = stats.topdown;
    assert!(
        td.backend_bound > td.frontend_bound * 3,
        "backend-bound must dominate: {td:?}"
    );
    // IPC throttled to ~1000/2000 = 0.5.
    assert!((0.35..=0.6).contains(&stats.ipc()), "{}", stats.ipc());
}

#[test]
fn return_prediction_uses_the_ras() {
    // A call chain deeper than the RAS forces return mispredicts; a
    // shallow one predicts all returns after warmup.
    let build_chain = |depth: usize| -> Program {
        let mut b = ProgramBuilder::new();
        let funcs: Vec<usize> = (0..depth + 1).map(|_| b.function()).collect();
        // f0 calls f1 ... f(depth-1) calls f(depth); leaf returns; each
        // caller returns after its call; f0 loops.
        for (i, &f) in funcs.iter().enumerate() {
            if i < depth {
                b.block(
                    f,
                    2,
                    Terminator::Call {
                        callee: b.func_id(funcs[i + 1]),
                        return_to: b.block_ref(f, 1),
                    },
                );
                if i == 0 {
                    b.block(
                        f,
                        2,
                        Terminator::Jump {
                            target: b.block_ref(f, 0),
                        },
                    );
                } else {
                    b.block(f, 2, Terminator::Return);
                }
            } else {
                b.block(f, 2, Terminator::Return);
            }
        }
        b.build(funcs[0])
    };
    let shallow = run(&build_chain(8), quiet_config(), 40_000);
    assert_eq!(
        shallow.return_mispredicts, 0,
        "8-deep chain fits the 32-entry RAS"
    );
    let deep = run(&build_chain(64), quiet_config(), 40_000);
    assert!(
        deep.return_mispredicts > 100,
        "64-deep chain must overflow the RAS: {}",
        deep.return_mispredicts
    );
}
