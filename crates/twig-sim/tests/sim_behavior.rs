//! Behavioural tests of the frontend simulator: the relationships the
//! paper's §2 characterization relies on must hold on synthetic workloads.

use twig_sim::{
    BtbGeometry, DirectionPredictorKind, HistoryEntry, MissObserver, PlainBtb, SimConfig,
    SimStats, Simulator,
};
use twig_types::{BlockId, BranchKind};
use twig_workload::{InputConfig, ProgramGenerator, Walker, WorkloadSpec};

const BUDGET: u64 = 200_000;

fn run_with(config: SimConfig, spec: &WorkloadSpec) -> SimStats {
    let program = ProgramGenerator::new(spec.clone()).generate();
    let mut sim = Simulator::new(&program, config, PlainBtb::new(&config));
    sim.run(Walker::new(&program, InputConfig::numbered(0)), BUDGET)
}

fn tiny() -> WorkloadSpec {
    WorkloadSpec::tiny_test()
}

#[test]
fn simulation_terminates_and_makes_progress() {
    let stats = run_with(SimConfig::default(), &tiny());
    assert!(stats.retired_instructions >= BUDGET);
    assert!(stats.cycles > 0);
    let ipc = stats.ipc();
    assert!(
        (0.05..=6.0).contains(&ipc),
        "IPC {ipc} outside plausible range"
    );
}

#[test]
fn deterministic_runs() {
    let a = run_with(SimConfig::default(), &tiny());
    let b = run_with(SimConfig::default(), &tiny());
    assert_eq!(a, b);
}

#[test]
fn ideal_btb_outperforms_baseline() {
    let base = run_with(SimConfig::default(), &tiny());
    let ideal = run_with(
        SimConfig {
            ideal_btb: true,
            ..SimConfig::default()
        },
        &tiny(),
    );
    assert!(
        ideal.ipc() > base.ipc(),
        "ideal BTB {} must beat baseline {}",
        ideal.ipc(),
        base.ipc()
    );
    assert_eq!(ideal.total_btb_misses(), 0);
    assert_eq!(ideal.decode_resteers, 0);
}

#[test]
fn ideal_icache_outperforms_baseline() {
    let base = run_with(SimConfig::default(), &tiny());
    let ideal = run_with(
        SimConfig {
            ideal_icache: true,
            ..SimConfig::default()
        },
        &tiny(),
    );
    assert!(ideal.ipc() >= base.ipc());
    assert_eq!(ideal.icache_demand_misses, 0);
}

#[test]
fn bigger_btb_misses_less() {
    // The tiny program has only a few hundred branch sites, so the small
    // configuration must be genuinely tiny to create capacity pressure.
    let small = run_with(
        SimConfig::default().with_btb_entries(64),
        &tiny(),
    );
    let big = run_with(
        SimConfig::default().with_btb_entries(32768),
        &tiny(),
    );
    assert!(
        small.total_btb_misses() > big.total_btb_misses(),
        "512-entry misses {} vs 32K-entry misses {}",
        small.total_btb_misses(),
        big.total_btb_misses()
    );
    assert!(big.ipc() >= small.ipc());
}

#[test]
fn btb_misses_cause_decode_resteers() {
    let stats = run_with(SimConfig::default().with_btb_entries(256), &tiny());
    assert!(stats.direct_btb_misses() > 0);
    assert!(stats.decode_resteers > 0);
    // Every decode resteer stems from a BTB miss of a direct branch or a
    // return; misses of indirect branches resteer at execute.
    let direct_and_ret = stats.direct_btb_misses()
        + stats.btb_misses[BranchKind::Return.index()];
    assert!(stats.decode_resteers <= direct_and_ret);
}

#[test]
fn accesses_dominated_by_conditionals() {
    // Fig. 7: conditional branches dominate BTB accesses.
    let stats = run_with(SimConfig::default(), &tiny());
    let cond = stats.btb_accesses[BranchKind::Conditional.index()];
    for kind in BranchKind::ALL {
        if kind != BranchKind::Conditional {
            assert!(cond >= stats.btb_accesses[kind.index()], "{kind}");
        }
    }
}

#[test]
fn topdown_slots_account_every_cycle() {
    let config = SimConfig::default();
    let stats = run_with(config, &tiny());
    assert_eq!(
        stats.topdown.total(),
        stats.cycles * u64::from(config.retire_width),
        "slot attribution must cover every issue slot"
    );
    assert!(stats.topdown.frontend_bound > 0);
    assert!(stats.topdown.backend_bound > 0);
}

#[test]
fn backend_factor_shifts_topdown_attribution() {
    let light = run_with(
        SimConfig {
            backend_extra_cpki: 10.0,
            ..SimConfig::default()
        },
        &tiny(),
    );
    // The backend ceiling must drop below the frontend-bound IPC (~0.6)
    // to actually bind: 3000 extra cycles/ki caps IPC near 0.33.
    let heavy = run_with(
        SimConfig {
            backend_extra_cpki: 3000.0,
            ..SimConfig::default()
        },
        &tiny(),
    );
    assert!(heavy.topdown.backend_bound > light.topdown.backend_bound);
    assert!(heavy.ipc() < light.ipc());
}

#[test]
fn oracle_direction_removes_direction_mispredicts() {
    let stats = run_with(
        SimConfig {
            direction: DirectionPredictorKind::Oracle,
            ..SimConfig::default()
        },
        &tiny(),
    );
    assert_eq!(stats.direction_mispredicts, 0);
}

/// Best achievable direction accuracy on the replayed trace: always
/// predict each conditional branch's majority outcome. Synthetic
/// conditionals are memoryless draws, so this is the Bayes bound.
fn bayes_direction_bound(spec: &WorkloadSpec) -> f64 {
    let program = ProgramGenerator::new(spec.clone()).generate();
    let events = Walker::new(&program, InputConfig::numbered(0)).run_instructions(BUDGET);
    let mut counts: std::collections::HashMap<u32, (u64, u64)> = std::collections::HashMap::new();
    for ev in &events {
        if let twig_workload::Terminator::Conditional { .. } = program.block(ev.block).term {
            let e = counts.entry(ev.block.raw()).or_default();
            if ev.taken {
                e.0 += 1;
            } else {
                e.1 += 1;
            }
        }
    }
    let (best, total) = counts
        .values()
        .fold((0u64, 0u64), |(b, t), &(tk, nt)| (b + tk.max(nt), t + tk + nt));
    best as f64 / total.max(1) as f64
}

#[test]
fn tage_beats_small_gshare() {
    let tage = run_with(SimConfig::default(), &tiny());
    let gshare = run_with(
        SimConfig {
            direction: DirectionPredictorKind::Gshare { table_bits: 8 },
            ..SimConfig::default()
        },
        &tiny(),
    );
    // Accuracy is bounded by the per-branch bias; TAGE should track that
    // bound closely (it reaches ~93% of it on this trace) and not trail a
    // small gshare. Comparing against the computed bound keeps the test
    // meaningful regardless of which PRNG stream shaped the workload.
    let bound = bayes_direction_bound(&tiny());
    assert!(tage.direction_accuracy() >= gshare.direction_accuracy() * 0.97);
    assert!(
        tage.direction_accuracy() > bound * 0.9,
        "TAGE accuracy {:.4} below 90% of Bayes bound {:.4}",
        tage.direction_accuracy(),
        bound
    );
}

#[test]
fn deeper_ftq_does_not_hurt() {
    let shallow = run_with(
        SimConfig {
            ftq_entries: 2,
            ..SimConfig::default()
        },
        &tiny(),
    );
    let deep = run_with(
        SimConfig {
            ftq_entries: 48,
            ..SimConfig::default()
        },
        &tiny(),
    );
    assert!(
        deep.ipc() >= shallow.ipc() * 0.98,
        "deep FTQ {} vs shallow {}",
        deep.ipc(),
        shallow.ipc()
    );
}

#[test]
fn fdip_prefetches_lines() {
    let stats = run_with(SimConfig::default(), &tiny());
    assert!(stats.icache_prefetches > 0);
    assert!(stats.icache_demand_accesses > 0);
}

struct CountingObserver {
    misses: u64,
    histories_ok: bool,
    last_block: Option<BlockId>,
}

impl MissObserver for CountingObserver {
    fn on_btb_miss(
        &mut self,
        block: BlockId,
        _kind: BranchKind,
        history: &[HistoryEntry],
        _cycle: u64,
    ) {
        self.misses += 1;
        self.last_block = Some(block);
        if history.is_empty() || history.len() > twig_sim::LBR_DEPTH {
            self.histories_ok = false;
        }
        // History must be chronologically ordered and end with the miss.
        if history.windows(2).any(|w| w[0].cycle > w[1].cycle) {
            self.histories_ok = false;
        }
        if history.last().map(|h| h.block) != Some(block) {
            self.histories_ok = false;
        }
    }
}

#[test]
fn observer_sees_every_real_miss_with_lbr_history() {
    let spec = tiny();
    let program = ProgramGenerator::new(spec).generate();
    let config = SimConfig::default().with_btb_entries(512);
    let mut sim = Simulator::new(&program, config, PlainBtb::new(&config));
    let mut obs = CountingObserver {
        misses: 0,
        histories_ok: true,
        last_block: None,
    };
    let stats = sim.run_observed(
        Walker::new(&program, InputConfig::numbered(0)),
        BUDGET,
        &mut obs,
    );
    assert_eq!(obs.misses, stats.total_btb_misses());
    assert!(obs.histories_ok, "malformed LBR history delivered");
    assert!(obs.last_block.is_some());
}

#[test]
fn event_stream_end_drains_pipeline() {
    // A finite trace must terminate the run cleanly below the budget.
    let program = ProgramGenerator::new(tiny()).generate();
    let config = SimConfig::default();
    let events: Vec<_> = Walker::new(&program, InputConfig::numbered(0))
        .take(1000)
        .collect();
    let expected: u64 = events
        .iter()
        .map(|e| u64::from(program.block(e.block).num_instrs))
        .sum();
    let mut sim = Simulator::new(&program, config, PlainBtb::new(&config));
    let stats = sim.run(events, u64::MAX);
    assert_eq!(stats.retired_instructions, expected);
}

#[test]
fn associativity_reduces_conflict_misses() {
    let direct_mapped = run_with(
        SimConfig {
            btb: BtbGeometry::new(2048, 1),
            ..SimConfig::default()
        },
        &tiny(),
    );
    let assoc = run_with(
        SimConfig {
            btb: BtbGeometry::new(2048, 8),
            ..SimConfig::default()
        },
        &tiny(),
    );
    assert!(
        assoc.total_btb_misses() <= direct_mapped.total_btb_misses(),
        "8-way {} vs 1-way {}",
        assoc.total_btb_misses(),
        direct_mapped.total_btb_misses()
    );
}

#[test]
fn wrong_path_prefetch_changes_icache_traffic_only_when_enabled() {
    let base = run_with(SimConfig::default(), &tiny());
    let wp = run_with(
        SimConfig {
            wrong_path_prefetch: true,
            ..SimConfig::default()
        },
        &tiny(),
    );
    assert!(
        wp.icache_prefetches > base.icache_prefetches,
        "wrong-path mode must issue extra prefetches: {} vs {}",
        wp.icache_prefetches,
        base.icache_prefetches
    );
    // Same committed work either way.
    assert_eq!(wp.retired_instructions, base.retired_instructions);
    assert_eq!(wp.total_btb_misses(), base.total_btb_misses());
    // IPC moves only modestly (pollution vs accidental warmth).
    let ratio = wp.ipc() / base.ipc();
    assert!((0.7..=1.4).contains(&ratio), "IPC ratio {ratio}");
}
