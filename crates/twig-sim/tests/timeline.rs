//! Windowed timeline behaviour: enabling `TWIG_OBS_WINDOW` must be
//! bit-identity-preserving on [`SimStats`], per-window deltas must
//! reconcile exactly with end-of-run totals (conservation), and the
//! exported snapshot must be deterministic and batching-independent.

use twig_obs::{timeseries::track_names, ObsConfig};
use twig_sim::{PlainBtb, SimConfig, SimStats, Simulator};
use twig_types::HarnessConfig;
use twig_workload::{InputConfig, ProgramGenerator, Walker, WorkloadSpec};

const BUDGET: u64 = 150_000;

fn run(config: SimConfig) -> (SimStats, Option<twig_obs::TimelineSnapshot>) {
    let program = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
    let mut sim = Simulator::new(&program, config, PlainBtb::new(&config));
    let stats = sim.run(Walker::new(&program, InputConfig::numbered(0)), BUDGET);
    let timeline = sim.timeline_snapshot();
    (stats, timeline)
}

#[test]
fn windowing_preserves_bit_identical_stats() {
    let (off, none) = run(SimConfig::default());
    assert!(none.is_none(), "off tier must not build a timeline");
    for window in [512, 4096, 65_536] {
        let (on, timeline) = run(SimConfig {
            obs: ObsConfig::windowed(window),
            ..SimConfig::default()
        });
        assert_eq!(on, off, "window={window} perturbed simulation statistics");
        let timeline = timeline.expect("windowed run must produce a timeline");
        assert_eq!(timeline.window, window);
        assert!(!timeline.windows.is_empty());
    }
}

#[test]
fn per_window_deltas_reconcile_with_totals() {
    let window = 1000;
    let (stats, timeline) = run(SimConfig {
        obs: ObsConfig::windowed(window),
        ..SimConfig::default()
    });
    let timeline = timeline.unwrap();
    assert_eq!(timeline.dropped_windows, 0);

    let total_of = |name: &str| -> u64 {
        timeline
            .track_values(name)
            .unwrap_or_else(|| panic!("missing track {name}"))
            .iter()
            .sum()
    };
    assert_eq!(total_of(track_names::CYCLES), stats.cycles);
    assert_eq!(
        total_of(track_names::INSTRUCTIONS),
        stats.retired_instructions
    );
    assert_eq!(total_of(track_names::BTB_MISSES), stats.total_btb_misses());
    assert_eq!(
        total_of(track_names::BTB_COVERED),
        stats.total_covered_misses()
    );
    assert_eq!(total_of(track_names::DECODE_RESTEERS), stats.decode_resteers);
    assert_eq!(total_of(track_names::EXEC_RESTEERS), stats.exec_resteers);

    // Window ends are monotone, land on exact window multiples (except the
    // final drain window), and the last end matches the run totals.
    let ends: Vec<_> = timeline.windows.iter().map(|w| w.end_instr).collect();
    assert!(ends.windows(2).all(|w| w[0] <= w[1]));
    for end in &ends[..ends.len() - 1] {
        assert_eq!(end % window, 0, "non-final window end {end} off-grid");
    }
    let last = timeline.windows.last().unwrap();
    assert_eq!(last.end_instr, stats.retired_instructions);
    assert_eq!(last.end_cycle, stats.cycles);
}

#[test]
fn timeline_is_deterministic_and_batching_independent() {
    let windowed = SimConfig {
        obs: ObsConfig::windowed(2048),
        ..SimConfig::default()
    };
    let (_, a) = run(windowed);
    let (_, b) = run(windowed);
    let a = a.unwrap().to_json().unwrap();
    let b = b.unwrap().to_json().unwrap();
    assert_eq!(a, b, "re-run changed the timeline");

    let (_, unbatched) = run(SimConfig {
        batch_stepping: false,
        ..windowed
    });
    assert_eq!(
        a,
        unbatched.unwrap().to_json().unwrap(),
        "idle-cycle batching changed window attribution"
    );
}

#[test]
fn derived_metrics_and_phases_are_emitted() {
    let (stats, timeline) = run(SimConfig {
        obs: ObsConfig::windowed(4096),
        ..SimConfig::default()
    });
    let timeline = timeline.unwrap();
    assert_eq!(timeline.derived.len(), timeline.windows.len());
    assert!(!timeline.phases.is_empty());

    // Whole-run IPC recomputed from windowed cycles/instructions matches
    // the scalar statistic (both integer-derived from the same counters).
    let cycles: u64 = timeline
        .track_values(track_names::CYCLES)
        .unwrap()
        .iter()
        .sum();
    let instrs: u64 = timeline
        .track_values(track_names::INSTRUCTIONS)
        .unwrap()
        .iter()
        .sum();
    let ipc = instrs as f64 / cycles as f64;
    assert!((ipc - stats.ipc()).abs() < 1e-9);

    // Phase segments tile the window axis without gaps or overlap.
    let mut next = 0;
    for phase in &timeline.phases {
        assert_eq!(phase.start_window, next);
        assert!(phase.end_window >= phase.start_window);
        next = phase.end_window + 1;
    }
    assert_eq!(next, timeline.windows.len() as u64);
}

#[test]
fn snapshot_round_trips_through_json() {
    let (_, timeline) = run(SimConfig {
        obs: ObsConfig::windowed(8192),
        ..SimConfig::default()
    });
    let timeline = timeline.unwrap();
    let json = timeline.to_json().unwrap();
    let back = twig_obs::TimelineSnapshot::from_json(&json).expect("round trip");
    assert_eq!(back.to_json().unwrap(), json);
}

#[test]
fn harness_knob_flows_into_sim_config() {
    let harness = HarnessConfig::from_lookup(|var| match var {
        "TWIG_OBS_WINDOW" => Some("window=4096".to_string()),
        _ => None,
    })
    .expect("valid harness config");
    let obs = ObsConfig::from_harness(&harness).expect("valid knob");
    assert_eq!(obs.window, Some(4096));
    let (_, timeline) = run(SimConfig {
        obs,
        ..SimConfig::default()
    });
    assert!(timeline.is_some());
}
