//! Property tests for the prefetch buffer.
//!
//! Random operation sequences are replayed against a naive reference
//! model (the same differential style the integrity layer uses for the
//! BTB and RAS), and the buffer's own [`Validator`] invariants are
//! checked after every operation. Pinned here:
//!
//! * capacity is never exceeded, under any interleaving of inserts,
//!   re-inserts, and demand takes;
//! * an inserted entry is hittable immediately once its ready cycle
//!   passes (hit-after-insert), and a take returns exactly the payload
//!   the most recent insert wrote;
//! * eviction order is stable FIFO: victims leave in first-insert order,
//!   unaffected by payload-refreshing re-inserts.

use std::collections::VecDeque;

use twig_proptest::prelude::*;
use twig_sim::integrity::Validator;
use twig_sim::{BufferedEntry, PrefetchBuffer};
use twig_types::{Addr, BranchKind};

const KINDS: [BranchKind; 6] = [
    BranchKind::Conditional,
    BranchKind::DirectJump,
    BranchKind::DirectCall,
    BranchKind::IndirectJump,
    BranchKind::IndirectCall,
    BranchKind::Return,
];

/// Naive reference with the documented semantics — re-insert refreshes
/// the payload in place (keeping the earlier ready cycle, not
/// double-counted, age unchanged), insert-when-full evicts the oldest
/// resident entry, take removes a ready entry and leaves a late one
/// resident.
///
/// One deliberate subtlety mirrored here: a PC's FIFO age is its
/// *earliest un-evicted enqueue*, which survives take + re-insert. A
/// consumed entry leaves a stale key in the push history, and if the PC
/// is prefetched again before that key reaches the front, the new
/// incarnation inherits the old age and can be evicted first-insert
/// order early. The model keeps residence (a flat pair list) separate
/// from push history, so it stays structurally independent of the
/// `HashMap + VecDeque` implementation while pinning that behavior.
struct RefBuffer {
    entries: Vec<(Addr, BufferedEntry)>,
    pushes: VecDeque<Addr>,
    capacity: usize,
    evicted: Vec<Addr>,
}

impl RefBuffer {
    fn new(capacity: usize) -> Self {
        RefBuffer {
            entries: Vec::new(),
            pushes: VecDeque::new(),
            capacity,
            evicted: Vec::new(),
        }
    }

    fn resident(&self, pc: Addr) -> Option<usize> {
        self.entries.iter().position(|(p, _)| *p == pc)
    }

    fn insert(&mut self, pc: Addr, target: Addr, kind: BranchKind, ready_at: u64) {
        if let Some(idx) = self.resident(pc) {
            let e = &mut self.entries[idx].1;
            e.target = target;
            e.kind = kind;
            e.ready_at = e.ready_at.min(ready_at);
            return;
        }
        if self.entries.len() == self.capacity {
            // Oldest un-evicted enqueue that still names a resident
            // entry; stale keys of consumed entries are skipped.
            while let Some(victim) = self.pushes.pop_front() {
                if let Some(idx) = self.resident(victim) {
                    self.entries.remove(idx);
                    self.evicted.push(victim);
                    break;
                }
            }
        }
        self.entries.push((
            pc,
            BufferedEntry {
                target,
                kind,
                ready_at,
            },
        ));
        self.pushes.push_back(pc);
    }

    fn take(&mut self, pc: Addr, cycle: u64) -> Option<BufferedEntry> {
        let idx = self.resident(pc)?;
        if self.entries[idx].1.ready_at <= cycle {
            Some(self.entries.remove(idx).1)
        } else {
            None
        }
    }
}

/// One generated operation against the buffer.
#[derive(Clone, Debug)]
enum Op {
    Insert { pc: u64, target: u64, kind: usize, ready_at: u64 },
    Take { pc: u64, cycle: u64 },
}

/// Strategy for an operation over a small PC pool (so re-inserts, hits,
/// and misses all occur often).
fn op_strategy() -> impl Strategy<Value = Op> {
    ((0u8..3, 0u64..24), (0u64..1 << 20, 0usize..KINDS.len(), 0u64..64)).prop_map(
        |((sel, pc), (target, kind, when))| {
            let pc = 0x4000 + pc * 4;
            if sel == 0 {
                Op::Take { pc, cycle: when }
            } else {
                Op::Insert {
                    pc,
                    target,
                    kind,
                    ready_at: when,
                }
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Differential check against the reference model: identical take
    /// results, identical resident sets, identical FIFO victim order,
    /// capacity never exceeded, and the [`Validator`] invariants hold
    /// after every operation.
    #[test]
    fn buffer_matches_reference_model(
        capacity in 1usize..12,
        ops in prop::collection::vec(op_strategy(), 1..200),
    ) {
        let mut buf = PrefetchBuffer::new(capacity);
        let mut reference = RefBuffer::new(capacity);
        for op in &ops {
            match *op {
                Op::Insert { pc, target, kind, ready_at } => {
                    buf.insert(Addr::new(pc), Addr::new(target), KINDS[kind], ready_at);
                    reference.insert(Addr::new(pc), Addr::new(target), KINDS[kind], ready_at);
                }
                Op::Take { pc, cycle } => {
                    let got = buf.take(Addr::new(pc), cycle);
                    let want = reference.take(Addr::new(pc), cycle);
                    prop_assert_eq!(got, want, "take({pc:#x}, {cycle}) diverged");
                }
            }
            prop_assert!(buf.len() <= capacity, "capacity exceeded: {} > {capacity}", buf.len());
            prop_assert_eq!(buf.len(), reference.entries.len());
            for (pc, _) in &reference.entries {
                prop_assert!(buf.contains(*pc), "reference-resident {pc:?} missing");
            }
            if let Err(fault) = buf.check(true) {
                prop_assert!(false, "validator fault after {op:?}: {fault:?}");
            }
        }
    }

    /// Hit-after-insert: an entry just inserted is immediately takeable
    /// at any cycle at or past its ready cycle, and the take returns the
    /// exact payload written.
    #[test]
    fn hit_after_insert(
        warm in prop::collection::vec(op_strategy(), 0..40),
        capacity in 1usize..12,
        target in 1u64..1 << 20,
        kind in 0usize..KINDS.len(),
        ready_at in 0u64..64,
        slack in 0u64..16,
    ) {
        let mut buf = PrefetchBuffer::new(capacity);
        for op in warm {
            match op {
                Op::Insert { pc, target, kind, ready_at } => {
                    buf.insert(Addr::new(pc), Addr::new(target), KINDS[kind], ready_at);
                }
                Op::Take { pc, cycle } => {
                    let _ = buf.take(Addr::new(pc), cycle);
                }
            }
        }
        // A PC outside the warm-up pool, so the insert below fully
        // determines the payload (a pool PC could keep an earlier,
        // smaller ready cycle from a past insert).
        let pc = Addr::new(0x9_0000);
        buf.insert(pc, Addr::new(target), KINDS[kind], ready_at);
        prop_assert!(buf.contains(pc));
        let before = buf.stats().late;
        if ready_at > 0 {
            prop_assert_eq!(buf.take(pc, ready_at - 1), None);
            prop_assert_eq!(buf.stats().late, before + 1, "late lookup not counted");
        }
        let got = buf.take(pc, ready_at + slack);
        prop_assert_eq!(
            got,
            Some(BufferedEntry { target: Addr::new(target), kind: KINDS[kind], ready_at }),
        );
        prop_assert!(!buf.contains(pc), "take must consume the entry");
    }

    /// Eviction order is stable FIFO over first-insert order: filling a
    /// buffer with distinct PCs and then overflowing it evicts exactly
    /// the oldest entries, in order, regardless of interleaved
    /// payload-refreshing re-inserts (which must not move an entry to
    /// the back of the queue).
    #[test]
    fn eviction_order_is_stable_fifo(
        capacity in 1usize..10,
        overflow in 1usize..10,
        refresh in prop::collection::vec((0u64..10, 0u64..64), 0..20),
    ) {
        let total = capacity + overflow;
        let mut buf = PrefetchBuffer::new(capacity);
        let mut reference = RefBuffer::new(capacity);
        let pc = |i: usize| Addr::new(0x1000 + i as u64 * 4);
        for i in 0..total {
            // Re-insert a random still-resident PC first: refreshes
            // payload but must not perturb FIFO age. (An already-evicted
            // PC is skipped — re-inserting it would be a fresh insert.)
            for &(j, when) in &refresh {
                let j = j as usize % (i + 1);
                if !buf.contains(pc(j)) {
                    continue;
                }
                buf.insert(pc(j), Addr::new(0xFFFF), KINDS[j % KINDS.len()], when);
                reference.insert(pc(j), Addr::new(0xFFFF), KINDS[j % KINDS.len()], when);
            }
            buf.insert(pc(i), Addr::new(i as u64), KINDS[i % KINDS.len()], 0);
            reference.insert(pc(i), Addr::new(i as u64), KINDS[i % KINDS.len()], 0);
            prop_assert!(buf.len() <= capacity);
        }
        // The survivors are exactly the `capacity` most recent first
        // inserts; the victims left in first-insert order.
        let expected_victims: Vec<Addr> = (0..overflow).map(pc).collect();
        prop_assert_eq!(&reference.evicted, &expected_victims);
        for i in 0..overflow {
            prop_assert!(!buf.contains(pc(i)), "victim {i} still resident");
        }
        for i in overflow..total {
            prop_assert!(buf.contains(pc(i)), "survivor {i} evicted early");
        }
        prop_assert_eq!(buf.stats().evicted_unused, overflow as u64);
        if let Err(fault) = buf.check(true) {
            prop_assert!(false, "validator fault after overflow: {fault:?}");
        }
    }
}
