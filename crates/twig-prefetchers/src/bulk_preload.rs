//! Two-level bulk preload (Bonanno et al., HPCA 2013): a small first-level
//! BTB backed by a large second level, with region-granular bulk transfer.
//!
//! On a first-level miss that hits the second level, the whole fixed-size
//! *region* of second-level entries is moved up, exploiting spatial
//! locality. The paper's related work notes the limitation this model
//! reproduces: it can only exploit spatial locality around the missing
//! branch, so scattered miss patterns gain little — "similar to the
//! next-line prefetchers".


use std::collections::VecDeque;

use twig_sim::{
    Btb, BtbGeometry, BtbSystem, FrontendCtx, LookupOutcome, MutationKind, PrefetchBuffer,
    PrefetchBufferStats, SimConfig, Validator,
};
use twig_types::{Addr, BlockId, BranchKind, BranchRecord, FxHashMap};

/// Region granularity of the bulk transfer, in bytes (2^shift).
pub const REGION_SHIFT: u32 = 9; // 512-byte regions

/// Latency of a bulk transfer from the second level.
pub const BULK_LATENCY: u64 = 6;

/// The two-level BTB organization.
///
/// # Examples
///
/// ```
/// use twig_prefetchers::TwoLevelBtb;
/// use twig_sim::{BtbSystem, SimConfig};
///
/// let two_level = TwoLevelBtb::new(&SimConfig::default());
/// assert_eq!(two_level.name(), "two-level-bulk");
/// ```
#[derive(Debug)]
pub struct TwoLevelBtb {
    /// Fast first level (a quarter of the baseline's entries).
    l1: Btb,
    /// Large second level: region id -> entries, oldest first (a deque
    /// so the FIFO cap evicts in O(1)).
    l2: FxHashMap<u64, VecDeque<(Addr, Addr, BranchKind)>>,
    buffer: PrefetchBuffer,
    max_l2_regions: usize,
}

impl TwoLevelBtb {
    /// Builds the two-level BTB: L1 = baseline/4, L2 = 8x baseline (its
    /// entries live in denser, slower storage).
    pub fn new(config: &SimConfig) -> Self {
        let l1_entries = (config.btb.entries / 4).max(config.btb.ways * 2);
        TwoLevelBtb {
            l1: Btb::new(BtbGeometry::new(
                (1usize << (l1_entries / config.btb.ways).max(1).ilog2()) * config.btb.ways,
                config.btb.ways,
            )),
            l2: FxHashMap::default(),
            buffer: PrefetchBuffer::new(config.prefetch_buffer_entries),
            max_l2_regions: config.btb.entries * 8 / 4,
        }
    }

    fn region_of(pc: Addr) -> u64 {
        pc.raw() >> REGION_SHIFT
    }

    /// First-level capacity in entries.
    pub fn l1_capacity(&self) -> usize {
        self.l1.capacity()
    }

    fn bulk_preload(&mut self, pc: Addr, cycle: u64) {
        let Some(entries) = self.l2.get(&Self::region_of(pc)) else {
            return;
        };
        let ready = cycle + BULK_LATENCY;
        for &(epc, target, kind) in entries.clone().iter() {
            if epc != pc {
                self.buffer.insert(epc, target, kind, ready);
            }
        }
    }
}

impl BtbSystem for TwoLevelBtb {
    fn name(&self) -> &str {
        "two-level-bulk"
    }

    fn lookup(&mut self, pc: Addr, ctx: &mut FrontendCtx<'_>) -> LookupOutcome {
        if let Some(entry) = self.l1.lookup(pc) {
            return LookupOutcome::Hit {
                target: entry.target,
                kind: entry.kind,
            };
        }
        if let Some(buffered) = self.buffer.take(pc, ctx.cycle) {
            self.l1.insert(pc, buffered.target, buffered.kind);
            return LookupOutcome::CoveredMiss {
                target: buffered.target,
                kind: buffered.kind,
            };
        }
        // A second-level hit cannot redirect in time (the branch has
        // already fallen through) but triggers the bulk region move so the
        // region's other branches hit next time.
        self.bulk_preload(pc, ctx.cycle);
        LookupOutcome::Miss
    }

    fn resolve_taken(&mut self, rec: &BranchRecord, _block: BlockId, _ctx: &mut FrontendCtx<'_>) {
        let Some(target) = rec.outcome.target() else {
            return;
        };
        self.l1.insert(rec.pc, target, rec.kind);
        if self.l2.len() >= self.max_l2_regions
            && !self.l2.contains_key(&Self::region_of(rec.pc))
        {
            return;
        }
        let region = self.l2.entry(Self::region_of(rec.pc)).or_default();
        region.retain(|&(pc, _, _)| pc != rec.pc);
        region.push_back((rec.pc, target, rec.kind));
        // One region holds at most a line's worth of entries.
        if region.len() > 16 {
            region.pop_front();
        }
    }

    fn prefetch_stats(&self) -> PrefetchBufferStats {
        self.buffer.stats()
    }

    fn enable_differential(&mut self) {
        self.l1.enable_shadow();
    }

    fn validators(&self) -> Vec<&dyn Validator> {
        vec![&self.l1, &self.buffer]
    }

    fn inject_corruption(&mut self, kind: MutationKind) -> bool {
        match kind {
            MutationKind::BtbOccupancy => {
                self.l1.corrupt_occupancy();
                true
            }
            MutationKind::RasDepth => false,
        }
    }

    fn register_metrics(&self, registry: &mut twig_sim::MetricsRegistry) {
        registry.set_by_name(
            "system.two-level-bulk.l1_occupancy",
            self.l1.occupancy() as u64,
        );
        registry.set_by_name(
            "system.two-level-bulk.l2_regions",
            self.l2.len() as u64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_sim::MemoryHierarchy;
    use twig_types::BranchOutcome;
    use twig_workload::{ProgramGenerator, WorkloadSpec};

    fn rec(pc: u64, target: u64) -> BranchRecord {
        BranchRecord {
            pc: Addr::new(pc),
            kind: BranchKind::Conditional,
            outcome: BranchOutcome::Taken(Addr::new(target)),
            fallthrough: Addr::new(pc + 4),
        }
    }

    fn parts() -> (twig_workload::Program, SimConfig, MemoryHierarchy) {
        let program = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
        let config = SimConfig::default();
        let mem = MemoryHierarchy::new(&config);
        (program, config, mem)
    }

    #[test]
    fn l1_is_smaller_than_baseline() {
        let config = SimConfig::default();
        let t = TwoLevelBtb::new(&config);
        assert!(t.l1_capacity() <= config.btb.entries / 4);
    }

    #[test]
    fn bulk_preload_covers_region_neighbours() {
        let (program, config, mut mem) = parts();
        let mut t = TwoLevelBtb::new(&config);
        let mut ctx = FrontendCtx {
            cycle: 0,
            program: &program,
            mem: &mut mem,
        };
        // Three branches in one 512B region.
        for i in 0..3u64 {
            t.resolve_taken(&rec(0x8000 + i * 16, 0x9000), BlockId::new(0), &mut ctx);
        }
        t.l1.clear();
        // Miss on the first triggers the bulk move.
        assert_eq!(t.lookup(Addr::new(0x8000), &mut ctx), LookupOutcome::Miss);
        ctx.cycle = BULK_LATENCY + 1;
        for i in 1..3u64 {
            assert!(
                matches!(
                    t.lookup(Addr::new(0x8000 + i * 16), &mut ctx),
                    LookupOutcome::CoveredMiss { .. }
                ),
                "neighbour {i} not preloaded"
            );
        }
    }

    #[test]
    fn cross_region_branches_are_not_preloaded() {
        let (program, config, mut mem) = parts();
        let mut t = TwoLevelBtb::new(&config);
        let mut ctx = FrontendCtx {
            cycle: 0,
            program: &program,
            mem: &mut mem,
        };
        t.resolve_taken(&rec(0x8000, 0x9000), BlockId::new(0), &mut ctx);
        t.resolve_taken(&rec(0x8000 + (1 << REGION_SHIFT), 0x9000), BlockId::new(0), &mut ctx);
        t.l1.clear();
        assert_eq!(t.lookup(Addr::new(0x8000), &mut ctx), LookupOutcome::Miss);
        ctx.cycle = BULK_LATENCY + 1;
        // The other region's branch stays cold.
        assert_eq!(
            t.lookup(Addr::new(0x8000 + (1 << REGION_SHIFT)), &mut ctx),
            LookupOutcome::Miss
        );
    }
}
