//! Phantom-BTB (Burcea & Moshovos, ASPLOS 2009): BTB virtualization into
//! the L2 cache.
//!
//! Phantom-BTB keeps the architectural BTB small and spills evicted entries
//! into *virtual tables* living in the memory hierarchy, packed as groups
//! of entries per cache line. A dedicated prefetch engine detects misses
//! and fetches the victim's region group back, paying an L2-class access
//! latency. The paper's related-work section cites its two costs — extra
//! metadata traffic and the long latency of prediction-critical metadata —
//! both of which this model reproduces.


use twig_sim::{
    Btb, BtbSystem, FrontendCtx, LookupOutcome, MutationKind, PrefetchBuffer,
    PrefetchBufferStats, SimConfig, Validator,
};
use twig_types::{Addr, BlockId, BranchKind, BranchRecord, FxHashMap};

/// Entries per virtual-table group (one L2 line's worth).
pub const GROUP_ENTRIES: usize = 4;

/// Region granularity for grouping: branches within the same
/// `2^REGION_SHIFT`-byte region share a group.
pub const REGION_SHIFT: u32 = 8;

/// A stored virtual-table entry.
#[derive(Clone, Copy, Debug)]
struct VirtualEntry {
    pc: Addr,
    target: Addr,
    kind: BranchKind,
}

/// The Phantom-BTB organization: a conventional BTB backed by L2-resident
/// virtual tables with region-group prefetching.
///
/// # Examples
///
/// ```
/// use twig_prefetchers::PhantomBtb;
/// use twig_sim::{BtbSystem, SimConfig};
///
/// let pbtb = PhantomBtb::new(&SimConfig::default());
/// assert_eq!(pbtb.name(), "phantom-btb");
/// ```
#[derive(Debug)]
pub struct PhantomBtb {
    btb: Btb,
    /// Virtual tables: region id -> stored group (newest first).
    virtual_tables: FxHashMap<u64, Vec<VirtualEntry>>,
    buffer: PrefetchBuffer,
    l2_latency: u64,
    /// Bound on virtualized metadata (a fraction of a real L2).
    max_groups: usize,
}

impl PhantomBtb {
    /// Builds Phantom-BTB with the baseline BTB geometry and an L2-bounded
    /// virtual-table budget.
    pub fn new(config: &SimConfig) -> Self {
        PhantomBtb {
            btb: Btb::new(config.btb),
            virtual_tables: FxHashMap::default(),
            buffer: PrefetchBuffer::new(config.prefetch_buffer_entries),
            l2_latency: config.l2_latency,
            // Dedicate ~1/8 of the L2 to virtualized BTB metadata.
            max_groups: config.l2.bytes / 64 / 8,
        }
    }

    /// Number of resident virtual-table groups.
    pub fn virtual_groups(&self) -> usize {
        self.virtual_tables.len()
    }

    fn region_of(pc: Addr) -> u64 {
        pc.raw() >> REGION_SHIFT
    }

    fn spill(&mut self, entry: VirtualEntry) {
        if self.virtual_tables.len() >= self.max_groups
            && !self.virtual_tables.contains_key(&Self::region_of(entry.pc))
        {
            // Virtual storage full: drop the spill (metadata pressure —
            // one of PBTB's documented costs).
            return;
        }
        let group = self
            .virtual_tables
            .entry(Self::region_of(entry.pc))
            .or_default();
        group.retain(|e| e.pc != entry.pc);
        group.insert(0, entry);
        group.truncate(GROUP_ENTRIES);
    }

    /// On a miss, fetch the region's group from the virtual tables into the
    /// prefetch buffer (available after an L2-class latency).
    fn fetch_group(&mut self, pc: Addr, cycle: u64) {
        let Some(group) = self.virtual_tables.get(&Self::region_of(pc)) else {
            return;
        };
        let ready = cycle + self.l2_latency;
        for e in group.clone() {
            self.buffer.insert(e.pc, e.target, e.kind, ready);
        }
    }
}

impl BtbSystem for PhantomBtb {
    fn name(&self) -> &str {
        "phantom-btb"
    }

    fn lookup(&mut self, pc: Addr, ctx: &mut FrontendCtx<'_>) -> LookupOutcome {
        if let Some(entry) = self.btb.lookup(pc) {
            return LookupOutcome::Hit {
                target: entry.target,
                kind: entry.kind,
            };
        }
        if let Some(buffered) = self.buffer.take(pc, ctx.cycle) {
            if let Some(victim) = self.btb.insert(pc, buffered.target, buffered.kind) {
                let _ = victim; // victim's payload unknown; spilled on resolve
            }
            return LookupOutcome::CoveredMiss {
                target: buffered.target,
                kind: buffered.kind,
            };
        }
        // Miss: trigger the virtual-table group fetch for this region so
        // the *next* misses nearby are covered.
        self.fetch_group(pc, ctx.cycle);
        LookupOutcome::Miss
    }

    fn resolve_taken(&mut self, rec: &BranchRecord, _block: BlockId, _ctx: &mut FrontendCtx<'_>) {
        let Some(target) = rec.outcome.target() else {
            return;
        };
        self.btb.insert(rec.pc, target, rec.kind);
        // Virtualize: the entry is also journaled to its region group so a
        // future eviction can be recovered.
        self.spill(VirtualEntry {
            pc: rec.pc,
            target,
            kind: rec.kind,
        });
    }

    fn prefetch_stats(&self) -> PrefetchBufferStats {
        self.buffer.stats()
    }

    fn enable_differential(&mut self) {
        self.btb.enable_shadow();
    }

    fn validators(&self) -> Vec<&dyn Validator> {
        vec![&self.btb, &self.buffer]
    }

    fn inject_corruption(&mut self, kind: MutationKind) -> bool {
        match kind {
            MutationKind::BtbOccupancy => {
                self.btb.corrupt_occupancy();
                true
            }
            MutationKind::RasDepth => false,
        }
    }

    fn register_metrics(&self, registry: &mut twig_sim::MetricsRegistry) {
        registry.set_by_name(
            "system.phantom-btb.btb_occupancy",
            self.btb.occupancy() as u64,
        );
        registry.set_by_name(
            "system.phantom-btb.virtual_groups",
            self.virtual_tables.len() as u64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_sim::MemoryHierarchy;
    use twig_types::BranchOutcome;
    use twig_workload::{ProgramGenerator, WorkloadSpec};

    fn rec(pc: u64, target: u64) -> BranchRecord {
        BranchRecord {
            pc: Addr::new(pc),
            kind: BranchKind::DirectCall,
            outcome: BranchOutcome::Taken(Addr::new(target)),
            fallthrough: Addr::new(pc + 5),
        }
    }

    fn parts() -> (twig_workload::Program, SimConfig, MemoryHierarchy) {
        let program = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
        let config = SimConfig::default();
        let mem = MemoryHierarchy::new(&config);
        (program, config, mem)
    }

    #[test]
    fn group_fetch_covers_neighbouring_misses_after_latency() {
        let (program, config, mut mem) = parts();
        let mut pbtb = PhantomBtb::new(&config);
        let mut ctx = FrontendCtx {
            cycle: 0,
            program: &program,
            mem: &mut mem,
        };
        // Two branches in the same 256B region, resolved (so virtualized).
        pbtb.resolve_taken(&rec(0x4000, 0x9000), BlockId::new(0), &mut ctx);
        pbtb.resolve_taken(&rec(0x4010, 0x9100), BlockId::new(0), &mut ctx);
        // Simulate losing the BTB contents (capacity churn elsewhere).
        pbtb.btb.clear();
        // First miss triggers the group fetch...
        assert_eq!(pbtb.lookup(Addr::new(0x4000), &mut ctx), LookupOutcome::Miss);
        // ...and after the L2 latency, the *neighbour* is covered.
        ctx.cycle = config.l2_latency + 1;
        assert!(matches!(
            pbtb.lookup(Addr::new(0x4010), &mut ctx),
            LookupOutcome::CoveredMiss { .. }
        ));
    }

    #[test]
    fn fetch_is_not_instant() {
        let (program, config, mut mem) = parts();
        let mut pbtb = PhantomBtb::new(&config);
        let mut ctx = FrontendCtx {
            cycle: 0,
            program: &program,
            mem: &mut mem,
        };
        pbtb.resolve_taken(&rec(0x4000, 0x9000), BlockId::new(0), &mut ctx);
        pbtb.btb.clear();
        assert_eq!(pbtb.lookup(Addr::new(0x4000), &mut ctx), LookupOutcome::Miss);
        // Immediately after the trigger the entry is still in flight.
        ctx.cycle = 1;
        assert_eq!(pbtb.lookup(Addr::new(0x4000), &mut ctx), LookupOutcome::Miss);
    }

    #[test]
    fn groups_are_bounded() {
        let (program, config, mut mem) = parts();
        let mut pbtb = PhantomBtb::new(&config);
        let mut ctx = FrontendCtx {
            cycle: 0,
            program: &program,
            mem: &mut mem,
        };
        // Region group holds at most GROUP_ENTRIES.
        for i in 0..10u64 {
            pbtb.resolve_taken(&rec(0x4000 + i * 8, 0x9000), BlockId::new(0), &mut ctx);
        }
        assert_eq!(pbtb.virtual_groups(), 1);
        let group = &pbtb.virtual_tables[&(0x4000u64 >> REGION_SHIFT)];
        assert_eq!(group.len(), GROUP_ENTRIES);
        // Newest entries retained.
        assert!(group.iter().any(|e| e.pc == Addr::new(0x4000 + 9 * 8)));
    }

    #[test]
    fn virtual_storage_is_bounded() {
        let (program, _, mut mem) = parts();
        let small = SimConfig {
            l2: twig_sim::CacheGeometry::new(64 * 64 * 8, 16), // tiny L2
            ..SimConfig::default()
        };
        let mut pbtb = PhantomBtb::new(&small);
        let mut ctx = FrontendCtx {
            cycle: 0,
            program: &program,
            mem: &mut mem,
        };
        for i in 0..100u64 {
            pbtb.resolve_taken(
                &rec(0x10_0000 + i * 1024, 0x9000),
                BlockId::new(0),
                &mut ctx,
            );
        }
        assert!(pbtb.virtual_groups() <= pbtb.max_groups);
    }
}
