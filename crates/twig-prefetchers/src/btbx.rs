//! A BTB-X-style compressed BTB (Asheim, Grot & Kumar, CAL 2021).
//!
//! The paper's related-work section (§5) argues that Twig is independent of
//! the underlying BTB organization and "should be just as effective" with
//! compressed designs like BTB-X. This module makes that claim testable:
//! a storage-budgeted BTB whose partitions store *delta-encoded* targets of
//! different widths — short-offset branches (the overwhelming majority,
//! Fig. 15) go to narrow partitions, so the same silicon budget holds
//! roughly twice the entries — combined with the standard
//! [`SoftwarePrefetcher`] so Twig's instructions work unchanged.

use twig_sim::{
    Btb, BtbGeometry, BtbSystem, FrontendCtx, LookupOutcome, MutationKind, PrefetchBufferStats,
    SimConfig, SoftwarePrefetcher, Validator,
};
use twig_types::{Addr, BlockId, BranchRecord, PrefetchOp};

/// One partition: entries whose branch-to-target delta fits `offset_bits`.
#[derive(Debug)]
struct Partition {
    btb: Btb,
    offset_bits: u32,
}

/// Per-entry overhead bits besides the target offset (tag + kind + LRU).
const ENTRY_OVERHEAD_BITS: u64 = 20;

/// The partition plan: `(offset_bits, share of the bit budget)`.
/// Narrow partitions get most of the budget because most deltas are short.
const PARTITION_PLAN: [(u32, f64); 5] = [
    (6, 0.10),
    (12, 0.35),
    (18, 0.25),
    (25, 0.15),
    (46, 0.15),
];

/// A compressed, partitioned BTB under the same storage budget as the
/// baseline, with Twig software-prefetch support.
///
/// # Examples
///
/// ```
/// use twig_prefetchers::CompressedBtb;
/// use twig_sim::{BtbSystem, SimConfig};
///
/// let btbx = CompressedBtb::new(&SimConfig::default());
/// assert!(btbx.total_entries() > 8192, "compression buys extra entries");
/// assert_eq!(btbx.name(), "btb-x");
/// ```
#[derive(Debug)]
pub struct CompressedBtb {
    partitions: Vec<Partition>,
    software: SoftwarePrefetcher,
}

impl CompressedBtb {
    /// Builds the compressed BTB with the same bit budget as the baseline
    /// BTB in `config` (entries × (overhead + 46-bit target)).
    pub fn new(config: &SimConfig) -> Self {
        let budget_bits = config.btb.entries as u64 * (ENTRY_OVERHEAD_BITS + 46);
        let ways = config.btb.ways.max(2);
        let partitions = PARTITION_PLAN
            .iter()
            .map(|&(offset_bits, share)| {
                let bits_per_entry = ENTRY_OVERHEAD_BITS + u64::from(offset_bits);
                let entries = (budget_bits as f64 * share / bits_per_entry as f64) as usize;
                // Sets must be a power of two; absorb the remainder into
                // the way count so capacity tracks the bit budget closely.
                let sets = 1usize << (entries / ways).max(1).ilog2();
                let ways = (entries / sets).max(ways);
                Partition {
                    btb: Btb::new(BtbGeometry::new(sets * ways, ways)),
                    offset_bits,
                }
            })
            .collect();
        CompressedBtb {
            partitions,
            software: SoftwarePrefetcher::new(config),
        }
    }

    /// Total entries across partitions (exceeds the uncompressed design's
    /// count under the same budget).
    pub fn total_entries(&self) -> usize {
        self.partitions.iter().map(|p| p.btb.capacity()).sum()
    }

    /// The partition index an entry with this branch→target delta uses.
    fn partition_for(&self, pc: Addr, target: Addr) -> usize {
        let bits = pc.offset_bits_to(target);
        self.partitions
            .iter()
            .position(|p| p.offset_bits >= bits)
            .unwrap_or(self.partitions.len() - 1)
    }

    fn insert(&mut self, pc: Addr, target: Addr, kind: twig_types::BranchKind) {
        let idx = self.partition_for(pc, target);
        self.partitions[idx].btb.insert(pc, target, kind);
        // An entry lives in exactly one partition: shoot down stale copies
        // (the target delta class can change under re-layout/JIT).
        for (i, p) in self.partitions.iter_mut().enumerate() {
            if i != idx {
                p.btb.invalidate(pc);
            }
        }
    }
}

impl BtbSystem for CompressedBtb {
    fn name(&self) -> &str {
        "btb-x"
    }

    fn lookup(&mut self, pc: Addr, ctx: &mut FrontendCtx<'_>) -> LookupOutcome {
        for p in &mut self.partitions {
            if let Some(entry) = p.btb.lookup(pc) {
                return LookupOutcome::Hit {
                    target: entry.target,
                    kind: entry.kind,
                };
            }
        }
        if let Some(buffered) = self.software.take(pc, ctx.cycle) {
            self.insert(pc, buffered.target, buffered.kind);
            return LookupOutcome::CoveredMiss {
                target: buffered.target,
                kind: buffered.kind,
            };
        }
        LookupOutcome::Miss
    }

    fn resolve_taken(&mut self, rec: &BranchRecord, _block: BlockId, _ctx: &mut FrontendCtx<'_>) {
        if let Some(target) = rec.outcome.target() {
            self.insert(rec.pc, target, rec.kind);
        }
    }

    fn software_prefetch(&mut self, op: &PrefetchOp, decoded_at: u64, ctx: &mut FrontendCtx<'_>) {
        self.software.execute(op, decoded_at, ctx.program);
    }

    fn prefetch_stats(&self) -> PrefetchBufferStats {
        self.software.stats()
    }

    fn enable_differential(&mut self) {
        for p in &mut self.partitions {
            p.btb.enable_shadow();
        }
    }

    fn validators(&self) -> Vec<&dyn Validator> {
        let mut v: Vec<&dyn Validator> =
            self.partitions.iter().map(|p| &p.btb as &dyn Validator).collect();
        v.push(self.software.buffer());
        v
    }

    fn inject_corruption(&mut self, kind: MutationKind) -> bool {
        match kind {
            MutationKind::BtbOccupancy => {
                self.partitions[0].btb.corrupt_occupancy();
                true
            }
            MutationKind::RasDepth => false,
        }
    }

    fn register_metrics(&self, registry: &mut twig_sim::MetricsRegistry) {
        registry.set_by_name("system.btb-x.total_entries", self.total_entries() as u64);
        registry.set_by_name(
            "system.btb-x.occupancy",
            self.partitions.iter().map(|p| p.btb.occupancy()).sum::<usize>() as u64,
        );
        registry.set_by_name("system.btb-x.partitions", self.partitions.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_sim::MemoryHierarchy;
    use twig_types::{BranchKind, BranchOutcome};
    use twig_workload::{ProgramGenerator, WorkloadSpec};

    fn rec(pc: u64, target: u64) -> BranchRecord {
        BranchRecord {
            pc: Addr::new(pc),
            kind: BranchKind::DirectJump,
            outcome: BranchOutcome::Taken(Addr::new(target)),
            fallthrough: Addr::new(pc + 5),
        }
    }

    fn ctx_parts() -> (twig_workload::Program, SimConfig, MemoryHierarchy) {
        let program = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
        let config = SimConfig::default();
        let mem = MemoryHierarchy::new(&config);
        (program, config, mem)
    }

    #[test]
    fn compression_buys_capacity() {
        let config = SimConfig::default();
        let btbx = CompressedBtb::new(&config);
        assert!(
            btbx.total_entries() as f64 > config.btb.entries as f64 * 1.4,
            "expected >1.4x entries, got {} vs {}",
            btbx.total_entries(),
            config.btb.entries
        );
    }

    #[test]
    fn short_and_long_deltas_route_to_different_partitions() {
        let config = SimConfig::default();
        let btbx = CompressedBtb::new(&config);
        let near = btbx.partition_for(Addr::new(0x1000), Addr::new(0x1040));
        let far = btbx.partition_for(Addr::new(0x1000), Addr::new(0x7f00_0000_0000));
        assert!(near < far, "near {near} vs far {far}");
    }

    #[test]
    fn insert_then_hit_regardless_of_delta() {
        let (program, config, mut mem) = ctx_parts();
        let mut btbx = CompressedBtb::new(&config);
        let mut ctx = FrontendCtx {
            cycle: 0,
            program: &program,
            mem: &mut mem,
        };
        for (pc, target) in [(0x40_1000u64, 0x40_1040u64), (0x40_2000, 0x7f00_0000_0000)] {
            let r = rec(pc, target);
            assert_eq!(btbx.lookup(r.pc, &mut ctx), LookupOutcome::Miss);
            btbx.resolve_taken(&r, BlockId::new(0), &mut ctx);
            match btbx.lookup(r.pc, &mut ctx) {
                LookupOutcome::Hit { target: t, .. } => assert_eq!(t, Addr::new(target)),
                other => panic!("expected hit, got {other:?}"),
            }
        }
    }

    #[test]
    fn retarget_moves_entry_between_partitions() {
        let (program, config, mut mem) = ctx_parts();
        let mut btbx = CompressedBtb::new(&config);
        let mut ctx = FrontendCtx {
            cycle: 0,
            program: &program,
            mem: &mut mem,
        };
        let pc = 0x40_1000u64;
        btbx.resolve_taken(&rec(pc, pc + 0x20), BlockId::new(0), &mut ctx);
        btbx.resolve_taken(&rec(pc, 0x7f00_0000_0000), BlockId::new(0), &mut ctx);
        // Exactly one resident copy, with the fresh target.
        let copies = btbx
            .partitions
            .iter()
            .filter(|p| p.btb.probe(Addr::new(pc)).is_some())
            .count();
        assert_eq!(copies, 1);
        match btbx.lookup(Addr::new(pc), &mut ctx) {
            LookupOutcome::Hit { target, .. } => {
                assert_eq!(target, Addr::new(0x7f00_0000_0000));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn software_prefetch_covers_misses_like_plain_btb() {
        let (program, config, mut mem) = ctx_parts();
        let mut btbx = CompressedBtb::new(&config);
        let branch = program
            .blocks()
            .find(|(id, b)| {
                b.branch_kind().is_some_and(|k| k.is_direct())
                    && program.direct_branch_target_addr(*id).is_some()
            })
            .map(|(id, _)| id)
            .unwrap();
        let pc = program.block(branch).branch_pc();
        let mut ctx = FrontendCtx {
            cycle: 100,
            program: &program,
            mem: &mut mem,
        };
        btbx.software_prefetch(
            &PrefetchOp::BrPrefetch {
                branch_block: branch,
            },
            50,
            &mut ctx,
        );
        assert!(matches!(
            btbx.lookup(pc, &mut ctx),
            LookupOutcome::CoveredMiss { .. }
        ));
        assert_eq!(btbx.prefetch_stats().used, 1);
    }
}
