//! Baseline hardware BTB prefetchers for the Twig reproduction.
//!
//! The paper (§2.3, §4) compares Twig against the two state-of-the-art
//! hardware BTB prefetchers, both implemented here from their original
//! descriptions as [`BtbSystem`](twig_sim::BtbSystem)s pluggable into the
//! `twig-sim` frontend:
//!
//! - [`Shotgun`] — partitioned U-BTB/C-BTB with unconditional-branch-driven
//!   spatial-footprint prefetching (Kumar et al., ASPLOS 2018),
//! - [`Confluence`] — a line-synchronized AirBTB fed by SHIFT-style
//!   temporal streaming (Kaynak et al., MICRO 2015), adapted to
//!   variable-length instructions as the paper describes,
//! - [`StreamTable`] — the shared record-and-replay temporal-stream
//!   machinery.
//!
//! The related-work BTB organizations the paper discusses (§5) are also
//! implemented, both as further baselines and to test Twig's claim of
//! independence from the BTB design:
//!
//! - [`CompressedBtb`] — a BTB-X-style delta-compressed, partitioned BTB,
//! - [`PhantomBtb`] — BTB virtualization into the L2 (Phantom-BTB),
//! - [`TwoLevelBtb`] — two-level bulk preload.
//!
//! Twig's own hardware support (the `brprefetch`/`brcoalesce` execution
//! path and the BTB prefetch buffer) lives in `twig_sim::PlainBtb`, because
//! Twig deliberately requires no change to the BTB organization (§3).
//!
//! # Example
//!
//! ```
//! use twig_prefetchers::Shotgun;
//! use twig_sim::{SimConfig, Simulator};
//! use twig_workload::{InputConfig, ProgramGenerator, Walker, WorkloadSpec};
//!
//! let program = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
//! let config = SimConfig::default();
//! let mut sim = Simulator::new(&program, config, Shotgun::new(&config));
//! let stats = sim.run(Walker::new(&program, InputConfig::numbered(0)), 20_000);
//! assert!(stats.ipc() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod btbx;
pub mod bulk_preload;
pub mod confluence;
pub mod phantom;
pub mod registry;
pub mod shotgun;
pub mod stream;

pub use btbx::CompressedBtb;
pub use bulk_preload::TwoLevelBtb;
pub use confluence::Confluence;
pub use phantom::PhantomBtb;
pub use registry::{by_name, UnknownPrefetcherError, VALID_NAMES};
pub use shotgun::Shotgun;
pub use stream::{StreamTable, TemporalStream};
