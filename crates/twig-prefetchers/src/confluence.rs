//! Confluence (Kaynak et al., MICRO 2015): unified instruction-supply
//! prefetching via a line-synchronized BTB (AirBTB) plus SHIFT-style
//! temporal streaming.
//!
//! Confluence's insight is that I-cache and BTB prefetching need the same
//! metadata. Its AirBTB keeps BTB content synchronized with L1i content at
//! cache-line granularity: when a line is filled (demand or prefetch), the
//! branches in the line are predecoded into the AirBTB; when the line is
//! evicted, its entries are invalidated. A SHIFT temporal prefetcher over
//! the L1i miss stream supplies both structures.
//!
//! The original design assumed a fixed 4-byte instruction size; like the
//! paper (§2.3), this implementation handles variable-length instructions by
//! predecoding from the program image (the hardware analogue carries
//! boundary metadata with each line).


use twig_sim::{
    BtbSystem, Fault, FrontendCtx, LookupOutcome, PrefetchBufferStats, SimConfig, Validator,
    ViolationKind,
};
use twig_types::{Addr, BlockId, BranchKind, BranchRecord, CacheLineAddr, FxHashMap};

use crate::stream::StreamTable;

/// One AirBTB entry.
#[derive(Clone, Copy, Debug)]
struct AirEntry {
    target: Addr,
    kind: BranchKind,
    /// Entry usable once its line's fill completes (predecode latency).
    ready_at: u64,
    /// Whether the entry was installed by a *prefetch* fill (for accuracy
    /// accounting) and not yet used.
    prefetched_unused: bool,
}

/// The Confluence BTB organization.
///
/// # Examples
///
/// ```
/// use twig_prefetchers::Confluence;
/// use twig_sim::{BtbSystem, SimConfig};
///
/// let confluence = Confluence::new(&SimConfig::default());
/// assert_eq!(confluence.name(), "confluence");
/// ```
#[derive(Debug)]
pub struct Confluence {
    /// Branch entries, grouped by the line their branch PC lives in —
    /// exactly the lines currently resident in L1i.
    lines: FxHashMap<CacheLineAddr, Vec<(Addr, AirEntry)>>,
    streams: StreamTable,
    stats: PrefetchBufferStats,
    /// Lines currently being filled by a stream prefetch (so their
    /// predecoded entries count as prefetched).
    inflight_prefetches: FxHashMap<CacheLineAddr, u64>,
}

impl Confluence {
    /// Builds Confluence with SHIFT-default stream-table sizing.
    pub fn new(_config: &SimConfig) -> Self {
        Confluence {
            lines: FxHashMap::default(),
            streams: StreamTable::with_defaults(),
            stats: PrefetchBufferStats::default(),
            inflight_prefetches: FxHashMap::default(),
        }
    }

    /// Number of lines with resident BTB entries.
    pub fn resident_lines(&self) -> usize {
        self.lines.len()
    }

    fn predecode_line(
        &mut self,
        line: CacheLineAddr,
        ready_at: u64,
        from_prefetch: bool,
        ctx: &mut FrontendCtx<'_>,
    ) {
        let mut entries = Vec::new();
        for (block, kind, target) in ctx.program.branches_in_line(line) {
            // Indirect branches get their most recent target from the IBTB
            // in the frontend; the AirBTB still identifies them. Direct
            // branches carry their decoded target.
            let target = match target {
                Some(t) => t,
                None => Addr::ZERO,
            };
            let pc = ctx.program.block(block).branch_pc();
            entries.push((
                pc,
                AirEntry {
                    target,
                    kind,
                    ready_at,
                    prefetched_unused: from_prefetch,
                },
            ));
            if from_prefetch {
                self.stats.inserted += 1;
            }
        }
        if !entries.is_empty() {
            self.lines.insert(line, entries);
        }
    }
}

impl BtbSystem for Confluence {
    fn name(&self) -> &str {
        "confluence"
    }

    // Predecode keeps the line-synced BTB coherent with L1i contents, so
    // fill/eviction events must be recorded for this system.
    fn observes_line_events(&self) -> bool {
        true
    }

    fn lookup(&mut self, pc: Addr, ctx: &mut FrontendCtx<'_>) -> LookupOutcome {
        let line = pc.line();
        let Some(entries) = self.lines.get_mut(&line) else {
            return LookupOutcome::Miss;
        };
        let Some((_, entry)) = entries.iter_mut().find(|(p, _)| *p == pc) else {
            return LookupOutcome::Miss;
        };
        if entry.ready_at > ctx.cycle {
            return LookupOutcome::Miss;
        }
        let covered = entry.prefetched_unused;
        if covered {
            entry.prefetched_unused = false;
            self.stats.used += 1;
        }
        let (target, kind) = (entry.target, entry.kind);
        if covered {
            LookupOutcome::CoveredMiss { target, kind }
        } else {
            LookupOutcome::Hit { target, kind }
        }
    }

    fn resolve_taken(&mut self, rec: &BranchRecord, _block: BlockId, ctx: &mut FrontendCtx<'_>) {
        // The AirBTB is filled by predecode, not by resolution; but a
        // resolved branch whose line is resident (e.g. filled before this
        // system was attached, or an indirect needing a target) refreshes
        // its entry.
        let line = rec.pc.line();
        if let Some(entries) = self.lines.get_mut(&line) {
            if let Some((_, entry)) = entries.iter_mut().find(|(p, _)| *p == rec.pc) {
                if let Some(target) = rec.outcome.target() {
                    entry.target = target;
                }
                return;
            }
        }
        // Line not resident: predecode it now (the fetch of this branch is
        // bringing the line in anyway).
        let ready = ctx.cycle;
        self.predecode_line(line, ready, false, ctx);
    }

    fn line_filled(&mut self, line: CacheLineAddr, ready_at: u64, ctx: &mut FrontendCtx<'_>) {
        let from_prefetch = self.inflight_prefetches.remove(&line).is_some();
        // Predecode begins when the bytes arrive, one cycle after that the
        // entries are usable. This is the runahead limitation the paper
        // calls out: the AirBTB cannot identify branches in lines the
        // frontend has not yet received.
        self.predecode_line(line, ready_at + 1, from_prefetch, ctx);
    }

    fn line_evicted(&mut self, line: CacheLineAddr, _ctx: &mut FrontendCtx<'_>) {
        if let Some(entries) = self.lines.remove(&line) {
            for (_, e) in entries {
                if e.prefetched_unused {
                    self.stats.evicted_unused += 1;
                }
            }
        }
    }

    fn line_demand_miss(&mut self, line: CacheLineAddr, ctx: &mut FrontendCtx<'_>) {
        // SHIFT trigger: replay the recorded stream after this miss.
        let replay = self.streams.record_and_lookup(line);
        for next in replay {
            if ctx.mem.l1i_contains(next) {
                continue;
            }
            let fill = ctx.mem.prefetch(next, ctx.cycle);
            self.inflight_prefetches.insert(next, fill.ready_at);
        }
    }

    fn prefetch_stats(&self) -> PrefetchBufferStats {
        self.stats
    }

    fn validators(&self) -> Vec<&dyn Validator> {
        vec![self]
    }

    fn register_metrics(&self, registry: &mut twig_sim::MetricsRegistry) {
        registry.set_by_name("system.confluence.resident_lines", self.lines.len() as u64);
        registry.set_by_name(
            "system.confluence.resident_entries",
            self.lines.values().map(Vec::len).sum::<usize>() as u64,
        );
        registry.set_by_name("system.confluence.stream_history", self.streams.len() as u64);
    }
}

/// Integrity checks for the line-synchronized AirBTB.
///
/// Exact insert/use/evict conservation does not hold here: `resolve_taken`
/// may re-predecode a resident line (dropping its unused-prefetch flags),
/// so the cheap check uses the one-sided bound each entry guarantees —
/// an entry is counted used or evicted-unused at most once per insertion.
impl Validator for Confluence {
    fn component(&self) -> &'static str {
        "airbtb"
    }

    fn check(&self, deep: bool) -> Result<(), Fault> {
        let s = &self.stats;
        if s.used + s.evicted_unused > s.inserted {
            return Err(Fault::new(
                ViolationKind::PrefetchBuffer,
                format!(
                    "airbtb accounting: used {} + evicted-unused {} exceeds inserted {}",
                    s.used, s.evicted_unused, s.inserted
                ),
            ));
        }
        if deep {
            for (line, entries) in &self.lines {
                for (i, (pc, _)) in entries.iter().enumerate() {
                    if pc.line() != *line {
                        return Err(Fault::new(
                            ViolationKind::PrefetchBuffer,
                            format!("airbtb entry at {pc:?} filed under wrong line {line:?}"),
                        ));
                    }
                    if entries[..i].iter().any(|(p, _)| p == pc) {
                        return Err(Fault::new(
                            ViolationKind::PrefetchBuffer,
                            format!("airbtb line {line:?} holds duplicate entry for {pc:?}"),
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    fn snapshot(&self) -> String {
        format!(
            "airbtb: {} resident lines, {} entries, stats {:?}",
            self.lines.len(),
            self.lines.values().map(Vec::len).sum::<usize>(),
            self.stats
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_sim::MemoryHierarchy;
    use twig_workload::{Program, ProgramGenerator, WorkloadSpec};

    fn setup() -> (Program, SimConfig, MemoryHierarchy) {
        let program = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
        let config = SimConfig::default();
        let mem = MemoryHierarchy::new(&config);
        (program, config, mem)
    }

    fn a_branch_line(program: &Program) -> (CacheLineAddr, Addr) {
        let (id, block) = program
            .blocks()
            .find(|(_, b)| {
                b.branch_kind()
                    .is_some_and(|k| k.is_direct())
            })
            .unwrap();
        let _ = id;
        (block.branch_pc().line(), block.branch_pc())
    }

    #[test]
    fn fill_predecodes_and_eviction_invalidates() {
        let (program, config, mut mem) = setup();
        let mut c = Confluence::new(&config);
        let (line, pc) = a_branch_line(&program);
        let mut ctx = FrontendCtx {
            cycle: 0,
            program: &program,
            mem: &mut mem,
        };
        assert_eq!(c.lookup(pc, &mut ctx), LookupOutcome::Miss);
        c.line_filled(line, 5, &mut ctx);
        ctx.cycle = 10;
        assert!(matches!(c.lookup(pc, &mut ctx), LookupOutcome::Hit { .. }));
        c.line_evicted(line, &mut ctx);
        assert_eq!(c.lookup(pc, &mut ctx), LookupOutcome::Miss);
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn prefetched_fill_counts_as_covered_once() {
        let (program, config, mut mem) = setup();
        let mut c = Confluence::new(&config);
        let (line, pc) = a_branch_line(&program);
        // Teach the stream table: miss A (trigger), then miss `line`.
        let trigger = CacheLineAddr::from_line_number(line.line_number() + 1000);
        {
            let mut ctx = FrontendCtx {
                cycle: 0,
                program: &program,
                mem: &mut mem,
            };
            c.line_demand_miss(trigger, &mut ctx);
            c.line_demand_miss(line, &mut ctx);
        }
        // The stream recurs: the trigger miss replays `line` as a prefetch.
        {
            let mut ctx = FrontendCtx {
                cycle: 100_000,
                program: &program,
                mem: &mut mem,
            };
            c.line_demand_miss(trigger, &mut ctx);
            assert!(c.inflight_prefetches.contains_key(&line));
            c.line_filled(line, ctx.cycle + 40, &mut ctx);
        }
        {
            let mut ctx = FrontendCtx {
                cycle: 200_000,
                program: &program,
                mem: &mut mem,
            };
            assert!(matches!(
                c.lookup(pc, &mut ctx),
                LookupOutcome::CoveredMiss { .. }
            ));
            // Second use: plain hit, counted used exactly once.
            assert!(matches!(c.lookup(pc, &mut ctx), LookupOutcome::Hit { .. }));
            assert_eq!(c.prefetch_stats().used, 1);
        }
    }

    #[test]
    fn entries_not_ready_do_not_hit() {
        let (program, config, mut mem) = setup();
        let mut c = Confluence::new(&config);
        let (line, pc) = a_branch_line(&program);
        let mut ctx = FrontendCtx {
            cycle: 50,
            program: &program,
            mem: &mut mem,
        };
        c.line_filled(line, 51, &mut ctx);
        // Bytes arrive at 51, predecode completes at 52: a lookup in the
        // fill cycle misses.
        assert_eq!(c.lookup(pc, &mut ctx), LookupOutcome::Miss);
        ctx.cycle = 52;
        assert!(c.lookup(pc, &mut ctx).is_hit());
    }

    #[test]
    fn unused_prefetches_count_on_eviction() {
        let (program, config, mut mem) = setup();
        let mut c = Confluence::new(&config);
        let (line, _pc) = a_branch_line(&program);
        let trigger = CacheLineAddr::from_line_number(line.line_number() + 500);
        let mut ctx = FrontendCtx {
            cycle: 0,
            program: &program,
            mem: &mut mem,
        };
        c.line_demand_miss(trigger, &mut ctx);
        c.line_demand_miss(line, &mut ctx);
        ctx.cycle = 1000;
        c.line_demand_miss(trigger, &mut ctx);
        c.line_filled(line, ctx.cycle + 40, &mut ctx);
        let inserted = c.prefetch_stats().inserted;
        assert!(inserted > 0);
        c.line_evicted(line, &mut ctx);
        assert_eq!(c.prefetch_stats().evicted_unused, inserted);
    }
}
