//! SHIFT-style temporal stream machinery (Ferdman et al.; used by
//! Confluence, MICRO 2015).
//!
//! Temporal streaming records the sequence of L1i miss addresses in a
//! circular *history buffer* and keeps an *index table* mapping each line to
//! its most recent position in the history. When a miss hits the index, the
//! lines that followed it last time are replayed as prefetches.
//!
//! This is the "record and replay" mechanism whose fundamental limitation
//! the paper quantifies (Fig. 10): only *recurring* miss streams can be
//! covered, and replaying the most recent occurrence trades accuracy for
//! metadata cost (§4.2's prefetch-accuracy discussion).


use twig_sim::{
    Btb, BtbSystem, FrontendCtx, LookupOutcome, MutationKind, PrefetchBufferStats, SimConfig,
    Validator,
};
use twig_types::{Addr, BlockId, BranchRecord, CacheLineAddr, FxHashMap};

/// Default history capacity (entries). SHIFT virtualizes ~32K history
/// entries into the LLC; we keep them in a plain circular buffer.
pub const DEFAULT_HISTORY_ENTRIES: usize = 32 * 1024;

/// Default number of successor lines replayed per index hit.
pub const DEFAULT_REPLAY_DEPTH: usize = 12;

/// A temporal stream recorder/replayer over cache-line addresses.
///
/// # Examples
///
/// ```
/// use twig_prefetchers::StreamTable;
/// use twig_types::CacheLineAddr;
///
/// let mut st = StreamTable::new(1024, 4);
/// let line = |n| CacheLineAddr::from_line_number(n);
/// // Record a stream: 1, 2, 3, 4, 5.
/// for n in 1..=5 {
///     assert!(st.record_and_lookup(line(n)).is_empty());
/// }
/// // The stream recurs: the successors of 1 are replayed.
/// assert_eq!(st.record_and_lookup(line(1)), vec![line(2), line(3), line(4), line(5)]);
/// ```
#[derive(Debug)]
pub struct StreamTable {
    history: Vec<CacheLineAddr>,
    head: usize,
    filled: bool,
    index: FxHashMap<CacheLineAddr, usize>,
    replay_depth: usize,
}

impl StreamTable {
    /// Creates a stream table with the given history capacity and replay
    /// depth.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(history_entries: usize, replay_depth: usize) -> Self {
        assert!(history_entries > 0 && replay_depth > 0);
        StreamTable {
            history: Vec::with_capacity(history_entries),
            head: 0,
            filled: false,
            index: FxHashMap::default(),
            replay_depth,
        }
    }

    /// Creates the table with SHIFT-like defaults.
    pub fn with_defaults() -> Self {
        StreamTable::new(DEFAULT_HISTORY_ENTRIES, DEFAULT_REPLAY_DEPTH)
    }

    /// Records a miss and returns the lines to replay (empty when the miss
    /// does not continue a recorded stream).
    pub fn record_and_lookup(&mut self, line: CacheLineAddr) -> Vec<CacheLineAddr> {
        let replay = match self.index.get(&line) {
            Some(&pos) => self.successors(pos),
            None => Vec::new(),
        };
        self.push(line);
        replay
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        if self.filled {
            self.history.capacity()
        } else {
            self.history.len()
        }
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push(&mut self, line: CacheLineAddr) {
        if self.history.len() < self.history.capacity() {
            self.index.insert(line, self.history.len());
            self.history.push(line);
        } else {
            self.filled = true;
            let evicted = self.history[self.head];
            // Only clear the index if it still points at the slot being
            // overwritten (the line may have a fresher occurrence).
            if self.index.get(&evicted) == Some(&self.head) {
                self.index.remove(&evicted);
            }
            self.history[self.head] = line;
            self.index.insert(line, self.head);
            self.head = (self.head + 1) % self.history.capacity();
        }
    }

    fn successors(&self, pos: usize) -> Vec<CacheLineAddr> {
        let cap = self.history.capacity();
        let len = self.history.len();
        let mut out = Vec::with_capacity(self.replay_depth);
        let mut p = pos;
        for _ in 0..self.replay_depth {
            p = (p + 1) % cap.max(1);
            if !self.filled && p >= len {
                break;
            }
            if self.filled && p == self.head {
                break;
            }
            out.push(self.history[p]);
        }
        out
    }
}

/// A standalone SHIFT-style system: the baseline BTB plus temporal-stream
/// instruction prefetching, with no AirBTB line synchronization.
///
/// This isolates the record-and-replay mechanism itself — the ablation the
/// paper's Fig. 10 discussion implies: how much of Confluence's benefit
/// comes from the stream engine alone when the BTB is left conventional.
///
/// # Examples
///
/// ```
/// use twig_prefetchers::TemporalStream;
/// use twig_sim::{BtbSystem, SimConfig};
///
/// let stream = TemporalStream::new(&SimConfig::default());
/// assert_eq!(stream.name(), "stream");
/// ```
#[derive(Debug)]
pub struct TemporalStream {
    btb: Btb,
    streams: StreamTable,
    issued_prefetches: u64,
}

impl TemporalStream {
    /// Builds the system with the baseline BTB geometry and SHIFT-default
    /// stream-table sizing.
    pub fn new(config: &SimConfig) -> Self {
        TemporalStream {
            btb: Btb::new(config.btb),
            streams: StreamTable::with_defaults(),
            issued_prefetches: 0,
        }
    }

    /// Number of L1i line prefetches issued by stream replay.
    pub fn issued_prefetches(&self) -> u64 {
        self.issued_prefetches
    }
}

impl BtbSystem for TemporalStream {
    fn name(&self) -> &str {
        "stream"
    }

    fn lookup(&mut self, pc: Addr, _ctx: &mut FrontendCtx<'_>) -> LookupOutcome {
        match self.btb.lookup(pc) {
            Some(entry) => LookupOutcome::Hit {
                target: entry.target,
                kind: entry.kind,
            },
            None => LookupOutcome::Miss,
        }
    }

    fn resolve_taken(&mut self, rec: &BranchRecord, _block: BlockId, _ctx: &mut FrontendCtx<'_>) {
        if let Some(target) = rec.outcome.target() {
            self.btb.insert(rec.pc, target, rec.kind);
        }
    }

    fn line_demand_miss(&mut self, line: CacheLineAddr, ctx: &mut FrontendCtx<'_>) {
        for next in self.streams.record_and_lookup(line) {
            if ctx.mem.l1i_contains(next) {
                continue;
            }
            ctx.mem.prefetch(next, ctx.cycle);
            self.issued_prefetches += 1;
        }
    }

    fn prefetch_stats(&self) -> PrefetchBufferStats {
        // Stream replay fills the I-cache, not the BTB: no buffer traffic.
        PrefetchBufferStats::default()
    }

    fn enable_differential(&mut self) {
        self.btb.enable_shadow();
    }

    fn validators(&self) -> Vec<&dyn Validator> {
        vec![&self.btb]
    }

    fn inject_corruption(&mut self, kind: MutationKind) -> bool {
        match kind {
            MutationKind::BtbOccupancy => {
                self.btb.corrupt_occupancy();
                true
            }
            MutationKind::RasDepth => false,
        }
    }

    fn register_metrics(&self, registry: &mut twig_sim::MetricsRegistry) {
        registry.set_by_name("system.stream.btb_occupancy", self.btb.occupancy() as u64);
        registry.set_by_name("system.stream.history_len", self.streams.len() as u64);
        registry.set_by_name("system.stream.issued_prefetches", self.issued_prefetches);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> CacheLineAddr {
        CacheLineAddr::from_line_number(n)
    }

    #[test]
    fn cold_misses_replay_nothing() {
        let mut st = StreamTable::new(64, 4);
        for n in 0..20 {
            assert!(st.record_and_lookup(line(n)).is_empty());
        }
        assert_eq!(st.len(), 20);
    }

    #[test]
    fn recurring_stream_is_replayed() {
        let mut st = StreamTable::new(64, 3);
        for n in [10, 11, 12, 13, 14] {
            st.record_and_lookup(line(n));
        }
        let replay = st.record_and_lookup(line(11));
        assert_eq!(replay, vec![line(12), line(13), line(14)]);
    }

    #[test]
    fn replay_uses_most_recent_occurrence() {
        let mut st = StreamTable::new(64, 2);
        // First occurrence of 5 followed by 6,7; second followed by 8,9.
        for n in [5, 6, 7, 5, 8, 9] {
            st.record_and_lookup(line(n));
        }
        let replay = st.record_and_lookup(line(5));
        assert_eq!(replay, vec![line(8), line(9)]);
    }

    #[test]
    fn replay_stops_at_write_head() {
        let mut st = StreamTable::new(64, 8);
        for n in [1, 2] {
            st.record_and_lookup(line(n));
        }
        // Only one successor exists.
        assert_eq!(st.record_and_lookup(line(1)), vec![line(2)]);
    }

    #[test]
    fn wraparound_keeps_index_consistent() {
        let mut st = StreamTable::new(8, 2);
        for n in 0..100 {
            st.record_and_lookup(line(n));
        }
        assert_eq!(st.len(), 8);
        // Old entries are gone from the index.
        assert!(st.record_and_lookup(line(0)).is_empty());
        // Wait: recording 0 again placed it in history; its successor is
        // whatever follows in the ring next time around.
        for n in 95..100 {
            // Recent entries may still replay.
            let _ = st.record_and_lookup(line(n));
        }
    }

    #[test]
    fn eviction_does_not_clobber_fresher_index() {
        let mut st = StreamTable::new(4, 2);
        // Fill: a b c d; then re-record a (index updated to new slot), then
        // push more to evict the original slot of a.
        for n in [1, 2, 3, 4] {
            st.record_and_lookup(line(n));
        }
        st.record_and_lookup(line(1)); // overwrites slot 0 (oldest is 1 itself)
        st.record_and_lookup(line(5));
        st.record_and_lookup(line(6));
        // `1` must still be indexed (its fresh occurrence).
        let replay = st.record_and_lookup(line(1));
        assert_eq!(replay, vec![line(5), line(6)]);
    }
}
