//! Shotgun (Kumar et al., ASPLOS 2018): a partitioned BTB with
//! unconditional-branch-driven spatial-footprint prefetching.
//!
//! Shotgun statically splits the BTB into a large U-BTB for unconditional
//! branches (whose entries carry the spatial I-cache footprint observed
//! around their target the last time they executed) and a small C-BTB for
//! conditional branches. On a U-BTB hit, the recorded footprint lines are
//! prefetched into the L1i, and the branches found in those lines are
//! *predecoded* into the C-BTB's prefetch buffer.
//!
//! The paper's §2.3 identifies two structural limitations this
//! implementation reproduces faithfully:
//!
//! 1. the fixed partition sizes fit some applications and waste storage on
//!    others (Fig. 11), and
//! 2. only conditional branches within [`SPATIAL_RANGE_LINES`] of the last
//!    unconditional target can be prefetched (Fig. 12).

use twig_sim::{
    Btb, BtbGeometry, BtbSystem, FrontendCtx, LookupOutcome, MutationKind, PrefetchBuffer,
    PrefetchBufferStats, SimConfig, Validator,
};
use twig_types::{Addr, BlockId, BranchKind, BranchRecord, CacheLineAddr};

/// Entries in the unconditional BTB (the paper evaluates 5120 ≈ 63.1 KB).
pub const UBTB_ENTRIES: usize = 5120;
/// U-BTB associativity (5 ways × 1024 sets).
pub const UBTB_WAYS: usize = 5;
/// Entries in the conditional BTB (1536 ≈ 12.2 KB).
pub const CBTB_ENTRIES: usize = 1536;
/// C-BTB associativity (6 ways × 256 sets).
pub const CBTB_WAYS: usize = 6;
/// Spatial range of the recorded footprint: up to 8 cache lines from the
/// unconditional branch target (§2.3).
pub const SPATIAL_RANGE_LINES: u64 = 8;

/// Footprint metadata attached to each U-BTB entry: one bit per line in
/// `[target_line, target_line + SPATIAL_RANGE_LINES)`.
type Footprint = u8;

/// The Shotgun BTB organization.
///
/// # Examples
///
/// ```
/// use twig_prefetchers::Shotgun;
/// use twig_sim::{BtbSystem, SimConfig};
///
/// let shotgun = Shotgun::new(&SimConfig::default());
/// assert_eq!(shotgun.name(), "shotgun");
/// ```
#[derive(Debug)]
pub struct Shotgun {
    ubtb: Btb,
    cbtb: Btb,
    /// Footprints, parallel-keyed by unconditional branch PC. Kept in a
    /// side table the same size as the U-BTB (a real implementation stores
    /// the bits in the entry).
    footprints: twig_types::FxHashMap<Addr, Footprint>,
    /// Prefetched conditional entries await their first use here.
    buffer: PrefetchBuffer,
    /// Footprint currently being recorded: the last executed unconditional
    /// branch and its target line.
    recording: Option<(Addr, CacheLineAddr)>,
    accumulated: Footprint,
}

impl Shotgun {
    /// Builds Shotgun with the paper's partition sizes; the prefetch-buffer
    /// size follows the simulator configuration (Fig. 25 sweeps it).
    pub fn new(config: &SimConfig) -> Self {
        Shotgun {
            ubtb: Btb::named(BtbGeometry::new(UBTB_ENTRIES, UBTB_WAYS), "ubtb"),
            cbtb: Btb::named(BtbGeometry::new(CBTB_ENTRIES, CBTB_WAYS), "cbtb"),
            footprints: twig_types::FxHashMap::default(),
            buffer: PrefetchBuffer::new(config.prefetch_buffer_entries),
            recording: None,
            accumulated: 0,
        }
    }

    /// Occupancies `(u_btb, c_btb)`, for partition-utilization analyses.
    pub fn occupancy(&self) -> (usize, usize) {
        (self.ubtb.occupancy(), self.cbtb.occupancy())
    }

    /// Finishes the footprint being recorded and stores it on the previous
    /// unconditional branch's entry.
    fn commit_recording(&mut self) {
        if let Some((pc, _)) = self.recording.take() {
            let fp = self.accumulated;
            if fp != 0 {
                self.footprints.insert(pc, fp);
                // Bound the side table at the U-BTB's reach.
                if self.footprints.len() > UBTB_ENTRIES * 4 {
                    self.footprints.clear();
                }
            }
        }
        self.accumulated = 0;
    }

    /// Replays a stored footprint: prefetches the lines and predecodes their
    /// conditional branches into the prefetch buffer.
    fn replay(&mut self, target: Addr, footprint: Footprint, ctx: &mut FrontendCtx<'_>) {
        let base = target.line();
        for bit in 0..SPATIAL_RANGE_LINES {
            if footprint & (1 << bit) == 0 {
                continue;
            }
            let line = CacheLineAddr::from_line_number(base.line_number() + bit);
            let fill = ctx.mem.prefetch(line, ctx.cycle);
            // Predecode: conditional branches in the fetched line become
            // C-BTB prefetch-buffer entries, usable once the line arrives.
            for (block, kind, target_addr) in ctx.program.branches_in_line(line) {
                if kind != BranchKind::Conditional {
                    continue;
                }
                let Some(target_addr) = target_addr else { continue };
                let pc = ctx.program.block(block).branch_pc();
                self.buffer.insert(pc, target_addr, kind, fill.ready_at);
            }
        }
    }
}

impl BtbSystem for Shotgun {
    fn name(&self) -> &str {
        "shotgun"
    }

    fn lookup(&mut self, pc: Addr, ctx: &mut FrontendCtx<'_>) -> LookupOutcome {
        // Conditional path: C-BTB, then the prefetch buffer.
        if let Some(entry) = self.cbtb.lookup(pc) {
            return LookupOutcome::Hit {
                target: entry.target,
                kind: entry.kind,
            };
        }
        if let Some(buffered) = self.buffer.take(pc, ctx.cycle) {
            self.cbtb.insert(pc, buffered.target, buffered.kind);
            return LookupOutcome::CoveredMiss {
                target: buffered.target,
                kind: buffered.kind,
            };
        }
        // Unconditional path: U-BTB hit triggers footprint replay.
        if let Some(entry) = self.ubtb.lookup(pc) {
            if let Some(fp) = self.footprints.get(&pc).copied() {
                self.replay(entry.target, fp, ctx);
            }
            return LookupOutcome::Hit {
                target: entry.target,
                kind: entry.kind,
            };
        }
        LookupOutcome::Miss
    }

    fn resolve_taken(&mut self, rec: &BranchRecord, _block: BlockId, _ctx: &mut FrontendCtx<'_>) {
        let Some(target) = rec.outcome.target() else {
            return;
        };
        if rec.kind == BranchKind::Conditional {
            self.cbtb.insert(rec.pc, target, rec.kind);
        } else {
            if let Some(evicted) = self.ubtb.insert(rec.pc, target, rec.kind) {
                self.footprints.remove(&evicted);
            }
            // A new unconditional branch: the previous footprint recording
            // window closes and a new one opens at this branch's target.
            self.commit_recording();
            self.recording = Some((rec.pc, target.line()));
        }
    }

    fn lines_accessed(
        &mut self,
        first_line: CacheLineAddr,
        last_line: CacheLineAddr,
        _ctx: &mut FrontendCtx<'_>,
    ) {
        let Some((_, base)) = self.recording else {
            return;
        };
        for line in first_line.line_number()..=last_line.line_number() {
            let delta = line.wrapping_sub(base.line_number());
            if delta < SPATIAL_RANGE_LINES {
                self.accumulated |= 1 << delta;
            }
        }
    }

    fn prefetch_stats(&self) -> PrefetchBufferStats {
        self.buffer.stats()
    }

    fn enable_differential(&mut self) {
        self.ubtb.enable_shadow();
        self.cbtb.enable_shadow();
    }

    fn validators(&self) -> Vec<&dyn Validator> {
        vec![&self.ubtb, &self.cbtb, &self.buffer]
    }

    fn inject_corruption(&mut self, kind: MutationKind) -> bool {
        match kind {
            MutationKind::BtbOccupancy => {
                self.ubtb.corrupt_occupancy();
                true
            }
            MutationKind::RasDepth => false,
        }
    }

    fn register_metrics(&self, registry: &mut twig_sim::MetricsRegistry) {
        registry.set_by_name("system.shotgun.ubtb_occupancy", self.ubtb.occupancy() as u64);
        registry.set_by_name("system.shotgun.cbtb_occupancy", self.cbtb.occupancy() as u64);
        registry.set_by_name("system.shotgun.footprints", self.footprints.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_sim::MemoryHierarchy;
    use twig_workload::{ProgramGenerator, Program, Terminator, WorkloadSpec};

    fn setup() -> (Program, SimConfig, MemoryHierarchy) {
        let program = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
        let config = SimConfig::default();
        let mem = MemoryHierarchy::new(&config);
        (program, config, mem)
    }

    /// Finds a direct call whose target function contains a conditional
    /// branch within the spatial range.
    fn call_with_nearby_conditional(program: &Program) -> Option<(BlockId, BlockId)> {
        for (id, block) in program.blocks() {
            let Terminator::Call { callee, .. } = &block.term else {
                continue;
            };
            let entry = program.function(*callee).entry;
            let target_line = program.block(entry).addr.line();
            for bid in program.function(*callee).block_ids() {
                let b = program.block(bid);
                if b.branch_kind() == Some(BranchKind::Conditional)
                    && b.branch_pc().line().line_number()
                        >= target_line.line_number()
                    && b.branch_pc().line().line_number()
                        < target_line.line_number() + SPATIAL_RANGE_LINES
                {
                    return Some((id, bid));
                }
            }
        }
        None
    }

    #[test]
    fn partition_sizes_match_paper() {
        let (_, config, _) = setup();
        let s = Shotgun::new(&config);
        assert_eq!(s.ubtb.capacity(), 5120);
        assert_eq!(s.cbtb.capacity(), 1536);
    }

    #[test]
    fn conditionals_go_to_cbtb_unconditionals_to_ubtb() {
        let (program, config, mut mem) = setup();
        let mut s = Shotgun::new(&config);
        let mut ctx = FrontendCtx {
            cycle: 0,
            program: &program,
            mem: &mut mem,
        };
        let cond = program
            .blocks()
            .find(|(_, b)| b.branch_kind() == Some(BranchKind::Conditional))
            .unwrap()
            .0;
        let uncond = program
            .blocks()
            .find(|(_, b)| b.branch_kind() == Some(BranchKind::DirectJump))
            .unwrap()
            .0;
        let crec = program
            .resolve_branch(cond, true, direct_target(&program, cond))
            .unwrap();
        let urec = program
            .resolve_branch(uncond, true, direct_target(&program, uncond))
            .unwrap();
        s.resolve_taken(&crec, cond, &mut ctx);
        s.resolve_taken(&urec, uncond, &mut ctx);
        let (u, c) = s.occupancy();
        assert_eq!((u, c), (1, 1));
    }

    fn direct_target(program: &Program, block: BlockId) -> Option<BlockId> {
        match &program.block(block).term {
            Terminator::Conditional { taken, .. } => Some(*taken),
            Terminator::Jump { target } => Some(*target),
            Terminator::Call { callee, .. } => Some(program.function(*callee).entry),
            _ => None,
        }
    }

    #[test]
    fn footprint_replay_prefetches_conditionals() {
        let (program, config, mut mem) = setup();
        let Some((call_block, cond_block)) = call_with_nearby_conditional(&program) else {
            panic!("tiny program should contain a call with a nearby conditional");
        };
        let mut s = Shotgun::new(&config);
        let call_rec = program
            .resolve_branch(call_block, true, direct_target(&program, call_block))
            .unwrap();
        let cond_pc = program.block(cond_block).branch_pc();

        // First execution: install the U-BTB entry and record the footprint
        // (the callee's lines are accessed while the window is open).
        {
            let mut ctx = FrontendCtx {
                cycle: 0,
                program: &program,
                mem: &mut mem,
            };
            s.resolve_taken(&call_rec, call_block, &mut ctx);
            let target_line = call_rec.outcome.target().unwrap().line();
            s.lines_accessed(target_line, target_line.next(), &mut ctx);
            let cond_line = cond_pc.line();
            s.lines_accessed(cond_line, cond_line, &mut ctx);
            // A later unconditional branch closes the recording window.
            let next_uncond = BranchRecord {
                pc: Addr::new(0x9999_0000),
                kind: BranchKind::DirectJump,
                outcome: twig_types::BranchOutcome::Taken(Addr::new(0x9999_1000)),
                fallthrough: Addr::new(0x9999_0005),
            };
            s.resolve_taken(&next_uncond, BlockId::new(0), &mut ctx);
        }

        // Second execution: the U-BTB hit replays the footprint and the
        // conditional is covered.
        {
            let mut ctx = FrontendCtx {
                cycle: 10_000,
                program: &program,
                mem: &mut mem,
            };
            let outcome = s.lookup(call_rec.pc, &mut ctx);
            assert!(matches!(outcome, LookupOutcome::Hit { .. }));
            assert!(s.buffer.contains(cond_pc), "conditional not predecoded");
            // Once the line arrives the entry covers a C-BTB miss.
            ctx.cycle = 20_000;
            assert!(matches!(
                s.lookup(cond_pc, &mut ctx),
                LookupOutcome::CoveredMiss { .. }
            ));
        }
    }

    #[test]
    fn out_of_range_conditionals_are_not_prefetched() {
        // A conditional branch more than 8 lines past the last unconditional
        // target is never recorded (Fig. 12's limitation).
        let (program, config, mut mem) = setup();
        let mut s = Shotgun::new(&config);
        let mut ctx = FrontendCtx {
            cycle: 0,
            program: &program,
            mem: &mut mem,
        };
        let jump = program
            .blocks()
            .find(|(_, b)| b.branch_kind() == Some(BranchKind::DirectJump))
            .unwrap()
            .0;
        let rec = program
            .resolve_branch(jump, true, direct_target(&program, jump))
            .unwrap();
        s.resolve_taken(&rec, jump, &mut ctx);
        let base = rec.outcome.target().unwrap().line();
        let far = CacheLineAddr::from_line_number(base.line_number() + SPATIAL_RANGE_LINES + 2);
        s.lines_accessed(far, far, &mut ctx);
        assert_eq!(s.accumulated, 0, "out-of-range line must not be recorded");
    }

    #[test]
    fn eviction_drops_footprint() {
        let (program, config, mut mem) = setup();
        let mut s = Shotgun::new(&config);
        let mut ctx = FrontendCtx {
            cycle: 0,
            program: &program,
            mem: &mut mem,
        };
        // Force U-BTB set conflicts: 5 ways per set, insert 6 aliasing PCs.
        let sets = UBTB_ENTRIES / UBTB_WAYS;
        for i in 0..=UBTB_WAYS as u64 {
            let pc = Addr::new(0x1_0000 + i * (sets as u64) * 2 * 64);
            let rec = BranchRecord {
                pc,
                kind: BranchKind::DirectJump,
                outcome: twig_types::BranchOutcome::Taken(Addr::new(0x7000_0000)),
                fallthrough: pc + 5,
            };
            s.resolve_taken(&rec, BlockId::new(0), &mut ctx);
            let tl = Addr::new(0x7000_0000).line();
            s.lines_accessed(tl, tl, &mut ctx);
        }
        // The first PC was evicted; its footprint must be gone.
        let first = Addr::new(0x1_0000);
        assert!(s.ubtb.probe(first).is_none());
        assert!(!s.footprints.contains_key(&first));
    }
}
