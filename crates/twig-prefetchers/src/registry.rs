//! Runtime prefetcher construction: one registry mapping names to
//! [`BtbSystem`] implementations.
//!
//! Harnesses that select a BTB organization at runtime (`twig-cli
//! simulate --system`, the extension/sensitivity experiment sweeps) go
//! through [`by_name`] instead of hand-rolled match statements, so the
//! set of valid names and their error message live in exactly one place.
//! Hot experiment loops that monomorphize the simulator over a concrete
//! system type (the `run_mono` path in `twig-bench`) intentionally do
//! not — boxing there would undo the devirtualized hot loop.

use std::fmt;

use twig_sim::{BtbSystem, PlainBtb, SimConfig};

use crate::{CompressedBtb, Confluence, PhantomBtb, Shotgun, TemporalStream, TwoLevelBtb};

/// Canonical system names accepted by [`by_name`], in menu order.
pub const VALID_NAMES: [&str; 7] = [
    "twig",
    "shotgun",
    "confluence",
    "phantom",
    "btbx",
    "bulk",
    "stream",
];

/// Accepted aliases (legacy CLI spellings and reporting names), each
/// mapping to the same system as its canonical name.
pub const ALIASES: [(&str, &str); 6] = [
    ("plain", "twig"),
    ("baseline", "twig"),
    ("ideal", "twig"),
    ("btb-x", "btbx"),
    ("phantom-btb", "phantom"),
    ("two-level-bulk", "bulk"),
];

/// A prefetcher name [`by_name`] does not recognize.
///
/// The `Display` form lists every valid option so callers can surface it
/// directly:
///
/// ```
/// use twig_prefetchers::registry;
/// use twig_sim::SimConfig;
///
/// let err = registry::by_name("nope", &SimConfig::default()).err().unwrap();
/// assert!(err.to_string().contains("shotgun"));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownPrefetcherError {
    /// The rejected name.
    pub name: String,
}

impl fmt::Display for UnknownPrefetcherError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let aliases: Vec<String> = ALIASES
            .iter()
            .map(|(alias, canon)| format!("{alias} (= {canon})"))
            .collect();
        write!(
            f,
            "unknown prefetcher {:?}; valid names: {}; aliases: {}",
            self.name,
            VALID_NAMES.join(", "),
            aliases.join(", "),
        )
    }
}

impl std::error::Error for UnknownPrefetcherError {}

/// Resolves an alias to its canonical name (identity for canonical and
/// unknown names).
pub fn canonical_name(name: &str) -> &str {
    ALIASES
        .iter()
        .find(|(alias, _)| *alias == name)
        .map(|(_, canon)| *canon)
        .unwrap_or(name)
}

/// Constructs the named BTB system from the simulator configuration.
///
/// `"twig"` (aliases `plain`, `baseline`, `ideal`) is the conventional
/// BTB with Twig's software-prefetch execution support — what it models
/// depends on the program (rewritten or not) and on `config.ideal_btb`,
/// which the caller sets; the other names select the hardware-prefetcher
/// baselines. Unknown names return an [`UnknownPrefetcherError`] listing
/// the valid options.
pub fn by_name(
    name: &str,
    config: &SimConfig,
) -> Result<Box<dyn BtbSystem>, UnknownPrefetcherError> {
    Ok(match canonical_name(name) {
        "twig" => Box::new(PlainBtb::new(config)),
        "shotgun" => Box::new(Shotgun::new(config)),
        "confluence" => Box::new(Confluence::new(config)),
        "phantom" => Box::new(PhantomBtb::new(config)),
        "btbx" => Box::new(CompressedBtb::new(config)),
        "bulk" => Box::new(TwoLevelBtb::new(config)),
        "stream" => Box::new(TemporalStream::new(config)),
        other => {
            return Err(UnknownPrefetcherError {
                name: other.to_string(),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_canonical_name_constructs() {
        let config = SimConfig::default();
        for name in VALID_NAMES {
            let system = by_name(name, &config).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!system.name().is_empty(), "{name}");
        }
    }

    #[test]
    fn aliases_reach_the_same_system_as_their_canonical_name() {
        let config = SimConfig::default();
        for (alias, canon) in ALIASES {
            let a = by_name(alias, &config).unwrap();
            let c = by_name(canon, &config).unwrap();
            assert_eq!(a.name(), c.name(), "{alias} vs {canon}");
        }
    }

    #[test]
    fn unknown_name_error_lists_options() {
        let err = by_name("frobnicate", &SimConfig::default()).err().unwrap();
        let msg = err.to_string();
        assert!(msg.contains("frobnicate"), "{msg}");
        for name in VALID_NAMES {
            assert!(msg.contains(name), "missing {name} in {msg}");
        }
        assert!(msg.contains("two-level-bulk"), "{msg}");
    }

    #[test]
    fn registered_metrics_are_namespaced_per_system() {
        let config = SimConfig::default();
        for name in VALID_NAMES {
            let system = by_name(name, &config).unwrap();
            let mut registry = twig_sim::MetricsRegistry::new();
            system.register_metrics(&mut registry);
            let snap = registry.snapshot();
            for counter in &snap.counters {
                assert!(
                    counter.name.starts_with(&format!("system.{}.", system.name())),
                    "{name}: counter {} not namespaced",
                    counter.name
                );
            }
        }
    }
}
