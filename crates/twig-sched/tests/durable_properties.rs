//! Property tests for the durability layer's journal replay: whatever a
//! crash (random truncation), bad sector (random bit-flip), or replayed
//! writer (duplicated frames) leaves in the journal, recovery must yield
//! exactly the pre-append or the post-append document — never a byte mix
//! of the two, and never a panic.

use std::sync::atomic::{AtomicUsize, Ordering};

use twig_proptest::prelude::*;
use twig_sched::durable::{encode_journal_frame, journal_path, replay_journal, Journaled};

/// Unique temp dir per proptest case (cases run within one test thread,
/// but distinct tests share the process).
fn case_dir() -> std::path::PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "twig-durable-prop-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A truncated journal yields the appended document if its frame
    /// survived whole, otherwise nothing — never a partial payload.
    #[test]
    fn truncated_journal_is_all_or_nothing(
        payload in prop::collection::vec(any::<u8>(), 0..200),
        keep_num in 0u32..=1000,
    ) {
        let frame = encode_journal_frame(&payload);
        let keep = (frame.len() as u64 * u64::from(keep_num) / 1000) as usize;
        let replayed = replay_journal(&frame[..keep]);
        if keep == frame.len() {
            prop_assert_eq!(replayed, Some(payload));
        } else {
            prop_assert_eq!(replayed, None);
        }
    }

    /// A single bit-flip anywhere in the frame either leaves the payload
    /// bit-exact or invalidates the frame entirely.
    #[test]
    fn bit_flipped_journal_never_yields_a_mix(
        payload in prop::collection::vec(any::<u8>(), 0..200),
        byte_sel in any::<u32>(),
        bit in 0u8..8,
    ) {
        let mut frame = encode_journal_frame(&payload);
        let index = byte_sel as usize % frame.len();
        frame[index] ^= 1 << bit;
        if let Some(recovered) = replay_journal(&frame) {
            prop_assert_eq!(recovered, payload, "flip at byte {} bit {}", index, bit);
        }
    }

    /// Duplicated / repeated frames (a writer replaying its append after
    /// a partial crash) resolve to the *last* intact document; a torn
    /// tail falls back to the previous intact one.
    #[test]
    fn duplicated_frames_resolve_to_the_last_intact_document(
        old in prop::collection::vec(any::<u8>(), 0..100),
        new in prop::collection::vec(any::<u8>(), 0..100),
        repeats in 1usize..4,
        tail_keep_num in 0u32..=1000,
    ) {
        let mut journal = Vec::new();
        for _ in 0..repeats {
            journal.extend_from_slice(&encode_journal_frame(&old));
        }
        let tail = encode_journal_frame(&new);
        let keep = (tail.len() as u64 * u64::from(tail_keep_num) / 1000) as usize;
        journal.extend_from_slice(&tail[..keep]);
        let expected = if keep == tail.len() { &new } else { &old };
        prop_assert_eq!(replay_journal(&journal), Some(expected.clone()));
    }

    /// Replay of arbitrary garbage never panics and never fabricates a
    /// document out of bytes that were not framed.
    #[test]
    fn arbitrary_bytes_never_panic_replay(
        bytes in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let _ = replay_journal(&bytes);
    }

    /// End to end through the filesystem: base document A on disk, a
    /// randomly truncated journal holding B — opening the journaled file
    /// always recovers to exactly A or exactly B.
    #[test]
    fn open_recovers_to_exactly_pre_or_post_document(
        doc_a in prop::collection::vec(any::<u8>(), 1..100),
        doc_b in prop::collection::vec(any::<u8>(), 1..100),
        keep_num in 0u32..=1000,
    ) {
        let dir = case_dir();
        let path = dir.join("doc.json");
        std::fs::write(&path, &doc_a).unwrap();
        let frame = encode_journal_frame(&doc_b);
        let keep = (frame.len() as u64 * u64::from(keep_num) / 1000) as usize;
        std::fs::write(journal_path(&path), &frame[..keep]).unwrap();

        let (file, healed) = Journaled::open(&path).unwrap();
        prop_assert_eq!(healed.len(), 1, "journal residue must be healed");
        let recovered = file.read().unwrap().expect("document exists");
        if keep == frame.len() {
            prop_assert_eq!(recovered, doc_b, "complete journal rolls forward");
        } else {
            prop_assert_eq!(recovered, doc_a, "torn journal is discarded");
        }
        prop_assert!(!journal_path(&path).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
