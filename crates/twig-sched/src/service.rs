//! Long-running supervised service workers over a bounded queue.
//!
//! [`crate::parallel_map`] and [`crate::supervised_map`] are batch-shaped:
//! they spawn for one matrix, join, and return. A continuous-PGO service
//! is not a batch — profile chunks stream in for as long as the tenants
//! run, and the loop must apply *backpressure* when aggregation falls
//! behind instead of buffering unboundedly. This module generalizes the
//! scheduler to that shape:
//!
//! * [`BoundedQueue`] — a blocking MPMC queue with a hard capacity.
//!   `push` on a full queue blocks (and counts the wait), which is the
//!   backpressure signal: a producer that outruns the workers slows to
//!   their pace rather than growing the heap.
//! * [`ServicePool`] — `N` long-running OS worker threads draining the
//!   queue for the lifetime of the pool. Workers sit *outside* the
//!   process-wide `parallel_map` spawn budget on purpose: they are the
//!   service, not a transient batch, and must not starve (or be starved
//!   by) batch work sharing the process. Every job body runs under
//!   [`run_supervised`] — panic isolation, watchdog, retry with jittered
//!   backoff — so one poisoned profile chunk cannot take a worker down.
//!
//! Determinism: results are returned in submission order by
//! [`ServicePool::drain`], and job bodies receive nothing except their
//! payload, so a pool with 1 worker and a pool with 8 produce identical
//! results. (The fleet manifest tests pin exactly this property.)

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::supervise::{run_supervised, CancelToken, TaskError, TaskPolicy, TaskReport};

/// A blocking MPMC queue with a hard capacity bound.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
    backpressure_waits: AtomicU64,
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (floored at 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
            backpressure_waits: AtomicU64::new(0),
        }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues `item`, blocking while the queue is full (each blocked
    /// push counts one backpressure wait).
    ///
    /// # Errors
    ///
    /// Returns the item back when the queue is closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if state.items.len() >= self.capacity && !state.closed {
            self.backpressure_waits.fetch_add(1, Ordering::Relaxed);
            while state.items.len() >= self.capacity && !state.closed {
                state = self
                    .not_full
                    .wait(state)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        }
        if state.closed {
            return Err(item);
        }
        state.items.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the next item, blocking while the queue is empty.
    /// Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        loop {
            if let Some(item) = state.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Closes the queue: pending items still drain, new pushes fail, and
    /// blocked poppers wake up.
    pub fn close(&self) {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        state.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// How many pushes found the queue full and had to wait — the
    /// backpressure signal. Timing-dependent by nature, so it is reported
    /// to operators (stderr, `ServiceStats`) but never serialized into
    /// deterministic artifacts.
    pub fn backpressure_waits(&self) -> u64 {
        self.backpressure_waits.load(Ordering::Relaxed)
    }
}

/// Cumulative counters for one [`ServicePool`].
#[derive(Clone, Copy, Default, Debug)]
pub struct ServiceStats {
    /// Jobs submitted over the pool's lifetime.
    pub submitted: u64,
    /// Jobs completed (successfully or not).
    pub completed: u64,
    /// Completed jobs whose final result was an error.
    pub failed: u64,
    /// Pushes that blocked on a full queue (see
    /// [`BoundedQueue::backpressure_waits`]).
    pub backpressure_waits: u64,
}

struct Shared<T, R> {
    queue: BoundedQueue<(u64, String, T)>,
    results: Mutex<Vec<(u64, TaskReport<R>)>>,
    inflight: Mutex<u64>,
    idle: Condvar,
    completed: AtomicU64,
    failed: AtomicU64,
    policy: TaskPolicy,
    #[allow(clippy::type_complexity)]
    handler: Box<dyn Fn(&T, &CancelToken) -> Result<R, TaskError> + Send + Sync>,
}

/// A pool of long-running supervised workers consuming a bounded queue.
///
/// # Examples
///
/// ```
/// use twig_sched::service::ServicePool;
/// use twig_sched::TaskPolicy;
///
/// let policy = TaskPolicy { attempts: 1, backoff_ms: 0, timeout_ms: None };
/// let mut pool = ServicePool::new(2, 4, policy, |job: &u64, _token| Ok(job * job));
/// for v in 0..8u64 {
///     pool.submit(format!("square-{v}"), v);
/// }
/// let results: Vec<u64> = pool
///     .drain()
///     .into_iter()
///     .map(|report| report.result.unwrap())
///     .collect();
/// assert_eq!(results, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// pool.shutdown();
/// ```
pub struct ServicePool<T, R> {
    shared: Arc<Shared<T, R>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    submitted: u64,
}

impl<T: Send + 'static, R: Send + 'static> ServicePool<T, R> {
    /// Starts `workers` threads (floored at 1) over a queue of
    /// `queue_depth` slots. Every job runs under [`run_supervised`] with
    /// `policy`.
    pub fn new<F>(workers: usize, queue_depth: usize, policy: TaskPolicy, handler: F) -> Self
    where
        F: Fn(&T, &CancelToken) -> Result<R, TaskError> + Send + Sync + 'static,
    {
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(queue_depth),
            results: Mutex::new(Vec::new()),
            inflight: Mutex::new(0),
            idle: Condvar::new(),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            policy,
            handler: Box::new(handler),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("twig-service-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn service worker")
            })
            .collect();
        ServicePool {
            shared,
            workers,
            submitted: 0,
        }
    }

    /// Submits one job, blocking when the queue is full (backpressure).
    /// `label` names the job for fault matching and reports.
    pub fn submit(&mut self, label: String, job: T) {
        {
            let mut inflight = self
                .shared
                .inflight
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            *inflight += 1;
        }
        self.submitted += 1;
        let index = self.submitted - 1;
        if self.shared.queue.push((index, label, job)).is_err() {
            // Closed pool: roll the accounting back so drain() still
            // terminates (shutdown() is the only closer, so this is a
            // use-after-shutdown programming error surfaced loudly).
            let mut inflight = self
                .shared
                .inflight
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            *inflight -= 1;
            panic!("submit on a shut-down ServicePool");
        }
    }

    /// Generation barrier: blocks until every submitted job has completed,
    /// then returns their reports **in submission order** and resets the
    /// result buffer for the next round.
    pub fn drain(&mut self) -> Vec<TaskReport<R>> {
        let mut inflight = self
            .shared
            .inflight
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        while *inflight > 0 {
            inflight = self
                .shared
                .idle
                .wait(inflight)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        drop(inflight);
        let mut results = self
            .shared
            .results
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let mut batch: Vec<(u64, TaskReport<R>)> = results.drain(..).collect();
        drop(results);
        batch.sort_by_key(|(index, _)| *index);
        batch.into_iter().map(|(_, report)| report).collect()
    }

    /// Lifetime counters (backpressure waits are timing-dependent; see
    /// [`BoundedQueue::backpressure_waits`]).
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            submitted: self.submitted,
            completed: self.shared.completed.load(Ordering::Relaxed),
            failed: self.shared.failed.load(Ordering::Relaxed),
            backpressure_waits: self.shared.queue.backpressure_waits(),
        }
    }

    /// Stops the workers: the queue closes, pending jobs finish, threads
    /// join.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.shared.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<T, R> Drop for ServicePool<T, R> {
    fn drop(&mut self) {
        self.shared.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop<T, R>(shared: &Shared<T, R>) {
    while let Some((index, label, job)) = shared.queue.pop() {
        let report = run_supervised(&label, index as usize, &shared.policy, |token| {
            (shared.handler)(&job, token)
        });
        shared.completed.fetch_add(1, Ordering::Relaxed);
        if report.result.is_err() {
            shared.failed.fetch_add(1, Ordering::Relaxed);
        }
        {
            let mut results = shared
                .results
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            results.push((index, report));
        }
        let mut inflight = shared
            .inflight
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *inflight -= 1;
        if *inflight == 0 {
            shared.idle.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::time::{Duration, Instant};

    fn policy() -> TaskPolicy {
        TaskPolicy {
            attempts: 1,
            backoff_ms: 0,
            timeout_ms: None,
        }
    }

    #[test]
    fn results_come_back_in_submission_order_across_rounds() {
        let mut pool = ServicePool::new(4, 2, policy(), |job: &u64, _| Ok(*job * 10));
        for round in 0..3u64 {
            for v in 0..16u64 {
                pool.submit(format!("r{round}-j{v}"), round * 100 + v);
            }
            let out: Vec<u64> = pool
                .drain()
                .into_iter()
                .map(|r| r.result.unwrap())
                .collect();
            let expected: Vec<u64> = (0..16).map(|v| (round * 100 + v) * 10).collect();
            assert_eq!(out, expected);
        }
        let stats = pool.stats();
        assert_eq!(stats.submitted, 48);
        assert_eq!(stats.completed, 48);
        assert_eq!(stats.failed, 0);
        pool.shutdown();
    }

    #[test]
    fn one_worker_and_many_workers_agree() {
        let run = |workers: usize| -> Vec<u64> {
            let mut pool = ServicePool::new(workers, 2, policy(), |job: &u64, _| Ok(job ^ 0xF0));
            for v in 0..32u64 {
                pool.submit(format!("j{v}"), v);
            }
            pool.drain().into_iter().map(|r| r.result.unwrap()).collect()
        };
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn a_panicking_job_is_quarantined_not_fatal() {
        let mut pool = ServicePool::new(2, 2, policy(), |job: &u32, _| {
            if *job == 3 {
                panic!("poisoned chunk");
            }
            Ok(*job)
        });
        for v in 0..6u32 {
            pool.submit(format!("chunk-{v}"), v);
        }
        let reports = pool.drain();
        for (i, report) in reports.iter().enumerate() {
            if i == 3 {
                assert!(matches!(report.result, Err(TaskError::Panicked(_))));
            } else {
                assert_eq!(*report.result.as_ref().unwrap(), i as u32);
            }
        }
        assert_eq!(pool.stats().failed, 1);
        // The pool keeps serving after the failure.
        pool.submit("after".to_string(), 7);
        assert_eq!(pool.drain()[0].result.as_ref().unwrap(), &7);
    }

    #[test]
    fn full_queue_applies_backpressure() {
        let gate = Arc::new(AtomicBool::new(false));
        let handler_gate = Arc::clone(&gate);
        // One worker that holds its first job until released: queue depth
        // 1 means the third submit must block (1 in flight + 1 queued).
        let mut pool = ServicePool::new(1, 1, policy(), move |_: &u64, _| {
            while !handler_gate.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(1));
            }
            Ok(())
        });
        pool.submit("a".into(), 0);
        pool.submit("b".into(), 1);
        let waits_before = pool.stats().backpressure_waits;
        // Submit "c" from this thread after arming an unblocker: the
        // push blocks until the gate opens and the worker drains a slot.
        let unblock_gate = Arc::clone(&gate);
        let unblocker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            unblock_gate.store(true, Ordering::Release);
        });
        let blocked_at = Instant::now();
        pool.submit("c".into(), 2);
        assert!(
            blocked_at.elapsed() >= Duration::from_millis(20),
            "third submit should have blocked on the full queue"
        );
        assert_eq!(pool.stats().backpressure_waits, waits_before + 1);
        unblocker.join().unwrap();
        assert_eq!(pool.drain().len(), 3);
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let pool: ServicePool<u64, u64> = ServicePool::new(3, 2, policy(), |job, _| Ok(*job));
        drop(pool); // must not hang or leak threads
    }
}
