//! Crash-only durability layer: atomic artifact publication, journaled
//! read-modify-write, startup recovery, deterministic crashpoint
//! injection, and the concurrent-run lock.
//!
//! The harness's fault kinds (`TWIG_FAULT_SPEC`) model failures *inside*
//! a live process — panics, hangs, torn buffers. This module models the
//! one failure class they cannot: the process dying between two
//! instructions. Every published artifact goes through one of two
//! protocols, each leaving only recoverable residue at every instant:
//!
//! * **Atomic publish** ([`publish_atomic`]): write `<file>.twig-tmp`,
//!   `fsync`, rename over the destination, `fsync` the directory. A crash
//!   before the rename leaves a `.twig-tmp` file (rolled *back* — deleted
//!   — on recovery); a crash after it leaves a complete artifact.
//! * **Journaled write** ([`Journaled`]): for read-modify-write files
//!   (`BENCH_trajectory.json`), first append the *new* document as a
//!   CRC-framed record to `<file>.twig-journal` and `fsync` it, then
//!   publish atomically, then remove the journal. A crash with a complete
//!   journal frame rolls *forward* (the publish is replayed); a torn
//!   frame is discarded (the pre-append document stands). At no instant
//!   can recovery observe a mix of old and new.
//!
//! Deterministic crashpoints (`TWIG_CRASH_SPEC=<point>[@<n>]`, parsed
//! from [`twig_types::HarnessConfig`] like `TWIG_FAULT_SPEC`) are
//! instrumented at every durability boundary; a matching point kills the
//! process with exit code [`CRASH_EXIT_CODE`] on its nth hit. The
//! `crash_drill` binary enumerates [`CRASHPOINTS`] and proves recovered
//! outputs byte-identical to uncrashed runs (see `docs/ROBUSTNESS.md`).

use std::fmt;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;

/// Exit code of a fired crashpoint — distinct from every CLI and harness
/// exit code (0–6), so drills can tell "the injected crash fired" from
/// any organic failure.
pub const CRASH_EXIT_CODE: i32 = 86;

/// Suffix of unpublished temp files ([`publish_atomic`] residue; rolled
/// back — deleted — on recovery).
pub const TMP_SUFFIX: &str = ".twig-tmp";

/// Suffix of write-ahead journals ([`Journaled`] residue; rolled forward
/// on recovery when the last frame is complete, discarded when torn).
pub const JOURNAL_SUFFIX: &str = ".twig-journal";

/// Name of the concurrent-run lock file inside a results directory.
pub const LOCK_FILE_NAME: &str = ".lock";

/// Every registered crashpoint, `(name, durability boundary it sits on)`.
/// `TWIG_CRASH_SPEC` validates against this list, and the `crash_drill`
/// binary refuses to pass unless it exercised every entry — adding a
/// crashpoint without drilling it is a test failure, not drift.
pub const CRASHPOINTS: &[(&str, &str)] = &[
    ("ckpt-tmp", "checkpoint record: temp written+synced, before rename"),
    ("ckpt-published", "checkpoint record: renamed, before directory sync"),
    ("figure-tmp", "figure report: temp written+synced, before rename"),
    ("manifest-tmp", "run manifest: temp written+synced, before rename"),
    ("manifest-published", "run manifest: renamed, before directory sync"),
    ("bench-tmp", "bench timing report: temp written+synced, before rename"),
    ("metrics-tmp", "telemetry export: temp written+synced, before rename"),
    ("fleet-lastgood-pre", "fleet LastGood commit: before the store write"),
    ("fleet-lastgood-post", "fleet LastGood commit: after the store write"),
    ("fleet-manifest-tmp", "fleet manifest: temp written+synced, before rename"),
    ("fleet-manifest-published", "fleet manifest: renamed, before directory sync"),
    ("traj-journal", "trajectory append: journal frame synced, before publish"),
    ("traj-published", "trajectory append: published, before journal removal"),
];

/// Whether `name` is a registered crashpoint.
pub fn is_crashpoint(name: &str) -> bool {
    CRASHPOINTS.iter().any(|(p, _)| *p == name)
}

/// A parsed `TWIG_CRASH_SPEC`: one crashpoint name, optionally `@<n>`
/// (1-based; default 1) selecting which hit kills the process.
#[derive(Debug, Default)]
pub struct CrashSpec {
    point: Option<String>,
    nth: u32,
    hits: AtomicU32,
    /// The raw spec text, echoed into manifests.
    pub raw: Option<String>,
}

impl CrashSpec {
    /// Parses `<point>[@<n>]`, validating the point name against
    /// [`CRASHPOINTS`].
    ///
    /// # Errors
    ///
    /// Returns a description naming the unknown point or malformed count.
    pub fn parse(raw: &str) -> Result<CrashSpec, String> {
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            return Ok(CrashSpec::none());
        }
        let (point, nth) = match trimmed.split_once('@') {
            Some((p, n)) => {
                let nth: u32 = n
                    .trim()
                    .parse()
                    .map_err(|_| format!("crash count {n:?} is not a number in {trimmed:?}"))?;
                if nth == 0 {
                    return Err(format!("crash count must be >= 1 in {trimmed:?}"));
                }
                (p.trim(), nth)
            }
            None => (trimmed, 1),
        };
        if !is_crashpoint(point) {
            let known: Vec<&str> = CRASHPOINTS.iter().map(|(p, _)| *p).collect();
            return Err(format!(
                "unknown crashpoint {point:?}; registered points: {}",
                known.join(", ")
            ));
        }
        Ok(CrashSpec {
            point: Some(point.to_string()),
            nth,
            hits: AtomicU32::new(0),
            raw: Some(trimmed.to_string()),
        })
    }

    /// A spec that never fires.
    pub fn none() -> CrashSpec {
        CrashSpec {
            nth: 1,
            ..CrashSpec::default()
        }
    }

    /// Whether any crashpoint is armed.
    pub fn is_armed(&self) -> bool {
        self.point.is_some()
    }

    /// Records one hit of `point`; kills the process with
    /// [`CRASH_EXIT_CODE`] when this is the armed point's nth hit.
    pub fn check(&self, point: &str) {
        let Some(armed) = self.point.as_deref() else {
            return;
        };
        if armed != point {
            return;
        }
        let count = self.hits.fetch_add(1, Ordering::Relaxed) + 1;
        if count == self.nth {
            // stderr is unbuffered; the marker survives the hard exit.
            eprintln!("twig-crash: injected crash at crashpoint {point:?} (hit {count})");
            std::process::exit(CRASH_EXIT_CODE);
        }
    }
}

/// Records one hit of a registered crashpoint against the process-wide
/// spec. Call exactly at the durability boundary the point names; with no
/// `TWIG_CRASH_SPEC` armed this is two loads and a compare.
pub fn hit(point: &str) {
    debug_assert!(is_crashpoint(point), "unregistered crashpoint {point:?}");
    global().check(point);
}

/// The process-wide spec parsed from `TWIG_CRASH_SPEC` (inert when the
/// variable is unset). A malformed spec aborts: silently ignoring an
/// operator's injection request would make a crash-drill CI job pass
/// vacuously.
pub fn global() -> &'static CrashSpec {
    static SPEC: OnceLock<CrashSpec> = OnceLock::new();
    SPEC.get_or_init(
        || match &twig_types::HarnessConfig::global().crash_spec.value {
            Some(raw) => CrashSpec::parse(raw)
                .unwrap_or_else(|e| panic!("malformed TWIG_CRASH_SPEC: {e}")),
            None => CrashSpec::none(),
        },
    )
}

/// CRC-32 (ISO-HDLC, the zlib polynomial), bitwise — small inputs only.
/// Shared by checkpoint records and journal frames.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &byte in bytes {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// The temp-file path [`publish_atomic`] stages `path` under.
pub fn tmp_path(path: &Path) -> PathBuf {
    sibling_with_suffix(path, TMP_SUFFIX)
}

/// The write-ahead journal path for a [`Journaled`] file.
pub fn journal_path(path: &Path) -> PathBuf {
    sibling_with_suffix(path, JOURNAL_SUFFIX)
}

fn sibling_with_suffix(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(suffix);
    path.with_file_name(name)
}

/// Best-effort fsync of `path`'s parent directory, so the rename itself
/// is durable. Failures are ignored: not every platform lets a directory
/// be opened, and the rename has already happened.
fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Ok(dir) = std::fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
    }
}

/// Publishes `bytes` at `path` atomically: write `<path>.twig-tmp`,
/// `fsync`, rename over `path`, `fsync` the directory. Readers observe
/// either the previous document or the new one, never a prefix.
///
/// `pre_rename` / `post_rename` name the crashpoints hit at the two
/// boundaries (pass `None` for writers without registered points). On
/// error the temp file is removed — a failed publish leaves no residue.
///
/// # Errors
///
/// Any I/O failure creating, writing, syncing, or renaming the temp file.
pub fn publish_atomic(
    path: &Path,
    bytes: &[u8],
    pre_rename: Option<&str>,
    post_rename: Option<&str>,
) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let tmp = tmp_path(path);
    let publish = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        drop(file);
        if let Some(point) = pre_rename {
            hit(point);
        }
        std::fs::rename(&tmp, path)?;
        if let Some(point) = post_rename {
            hit(point);
        }
        sync_parent_dir(path);
        Ok(())
    })();
    if publish.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    publish
}

/// Streaming variant of [`publish_atomic`]: instead of a complete
/// in-memory byte buffer, the caller writes the document through a
/// buffered handle to the staged temp file. The atomicity protocol is
/// identical (temp write, `fsync`, rename, directory `fsync`), so large
/// artifacts — columnar traces, spilled caches — publish without ever
/// being resident in RAM. If `write` returns an error (or any I/O step
/// fails) the temp file is removed and `path` is untouched.
///
/// # Errors
///
/// Any error from `write` itself, or any I/O failure creating, flushing,
/// syncing, or renaming the temp file.
pub fn publish_atomic_with<T>(
    path: &Path,
    pre_rename: Option<&str>,
    post_rename: Option<&str>,
    write: impl FnOnce(&mut io::BufWriter<std::fs::File>) -> io::Result<T>,
) -> io::Result<T> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let tmp = tmp_path(path);
    let publish = (|| {
        let file = std::fs::File::create(&tmp)?;
        let mut out = io::BufWriter::new(file);
        let value = write(&mut out)?;
        out.flush()?;
        let file = out.into_inner().map_err(|e| e.into_error())?;
        file.sync_all()?;
        drop(file);
        if let Some(point) = pre_rename {
            hit(point);
        }
        std::fs::rename(&tmp, path)?;
        if let Some(point) = post_rename {
            hit(point);
        }
        sync_parent_dir(path);
        Ok(value)
    })();
    if publish.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    publish
}

/// Journal frame magic; layout (little-endian):
///
/// ```text
/// magic   "TWJL"        4 bytes
/// version u8            currently 1
/// paylen  u32           payload length
/// payload paylen bytes  the complete post-write document
/// crc     u32           CRC-32/ISO-HDLC over the payload
/// ```
const JOURNAL_MAGIC: &[u8; 4] = b"TWJL";

/// Journal frame format version; bump on any layout change.
pub const JOURNAL_VERSION: u8 = 1;

/// Serializes one journal frame holding the complete new document.
pub fn encode_journal_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 1 + 4 + payload.len() + 4);
    out.extend_from_slice(JOURNAL_MAGIC);
    out.push(JOURNAL_VERSION);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out
}

/// Replays journal bytes: scans frames front to back and returns the
/// payload of the last fully-valid one. Torn tails, truncations,
/// bit-flips, and garbage suffixes invalidate only the frames they touch;
/// duplicated frames resolve to the last valid copy. `None` when no
/// complete valid frame exists (the journal is then discarded and the
/// pre-write document stands).
pub fn replay_journal(bytes: &[u8]) -> Option<Vec<u8>> {
    let mut rest = bytes;
    let mut last_valid: Option<Vec<u8>> = None;
    while let Some(after_magic) = rest.strip_prefix(JOURNAL_MAGIC) {
        let Some((&version, after_version)) = after_magic.split_first() else {
            break;
        };
        if version != JOURNAL_VERSION || after_version.len() < 4 {
            break;
        }
        let (len_bytes, after_len) = after_version.split_at(4);
        let paylen = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
        if after_len.len() < paylen + 4 {
            break;
        }
        let (payload, after_payload) = after_len.split_at(paylen);
        let (crc_bytes, after_crc) = after_payload.split_at(4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if crc32(payload) != stored {
            break;
        }
        last_valid = Some(payload.to_vec());
        rest = after_crc;
    }
    last_valid
}

/// One healed crash residue, surfaced in run manifests.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Healed {
    /// The residue file that was acted on.
    pub path: String,
    /// What recovery did: `rolled-back-temp` (unpublished temp deleted),
    /// `rolled-forward-journal` (journaled write replayed to completion),
    /// or `discarded-torn-journal` (incomplete journal dropped; the
    /// pre-write document stands).
    pub action: &'static str,
}

impl fmt::Display for Healed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path, self.action)
    }
}

/// Recovers one journaled file from whatever residue a crash left:
/// replays a valid journal frame into an atomic publish (roll forward),
/// discards a torn journal (roll back), and removes any unpublished temp.
///
/// # Errors
///
/// I/O failures reading the journal or re-publishing the document.
fn recover_journaled(path: &Path) -> io::Result<Vec<Healed>> {
    let mut healed = Vec::new();
    let tmp = tmp_path(path);
    if tmp.exists() {
        std::fs::remove_file(&tmp)?;
        healed.push(Healed {
            path: tmp.display().to_string(),
            action: "rolled-back-temp",
        });
    }
    let journal = journal_path(path);
    if journal.exists() {
        let bytes = std::fs::read(&journal)?;
        match replay_journal(&bytes) {
            Some(payload) => {
                // Roll forward: the write reached its journal, so it
                // committed; finishing the publish is idempotent even if
                // the crash happened after the rename.
                publish_atomic(path, &payload, None, None)?;
                std::fs::remove_file(&journal)?;
                sync_parent_dir(&journal);
                healed.push(Healed {
                    path: journal.display().to_string(),
                    action: "rolled-forward-journal",
                });
            }
            None => {
                std::fs::remove_file(&journal)?;
                sync_parent_dir(&journal);
                healed.push(Healed {
                    path: journal.display().to_string(),
                    action: "discarded-torn-journal",
                });
            }
        }
    }
    Ok(healed)
}

/// Scans `dir` recursively for crash residue (`*.twig-tmp`,
/// `*.twig-journal`) and heals it: temps roll back, journals roll forward
/// or are discarded. Returns what was healed, sorted by path, for the run
/// manifest. Residues that fail to heal are reported on stderr and
/// skipped — recovery itself must not crash the run.
pub fn recover_dir(dir: &Path) -> Vec<Healed> {
    let mut residues: Vec<PathBuf> = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&current) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let name = entry.file_name().to_string_lossy().into_owned();
                if name.ends_with(TMP_SUFFIX) || name.ends_with(JOURNAL_SUFFIX) {
                    residues.push(path);
                }
            }
        }
    }
    // Heal per base file so a temp + journal pair is resolved coherently
    // (journal wins; the temp is just a discarded stage).
    let mut bases: Vec<PathBuf> = residues
        .iter()
        .map(|p| {
            let name = p.file_name().map(|n| n.to_string_lossy().into_owned());
            let base = name
                .as_deref()
                .map(|n| {
                    n.trim_end_matches(TMP_SUFFIX)
                        .trim_end_matches(JOURNAL_SUFFIX)
                        .to_string()
                })
                .unwrap_or_default();
            p.with_file_name(base)
        })
        .collect();
    bases.sort();
    bases.dedup();
    let mut healed = Vec::new();
    for base in bases {
        match recover_journaled(&base) {
            Ok(mut acts) => healed.append(&mut acts),
            Err(e) => eprintln!(
                "warning: cannot heal crash residue of {}: {e}",
                base.display()
            ),
        }
    }
    healed.sort_by(|a, b| a.path.cmp(&b.path));
    healed
}

/// A journaled read-modify-write file (e.g. `BENCH_trajectory.json`).
/// Opening heals any crash residue; writing journals the complete new
/// document before publishing it, so a kill at any instant recovers to
/// exactly the pre- or post-write document.
#[derive(Debug)]
pub struct Journaled {
    path: PathBuf,
}

impl Journaled {
    /// Opens `path`, healing journal/temp residue first. Returns what was
    /// healed (at most a roll-forward and a temp roll-back) for reporting.
    ///
    /// # Errors
    ///
    /// I/O failures during recovery.
    pub fn open(path: &Path) -> io::Result<(Journaled, Vec<Healed>)> {
        let healed = recover_journaled(path)?;
        Ok((
            Journaled {
                path: path.to_path_buf(),
            },
            healed,
        ))
    }

    /// The current document, or `None` when the file does not exist yet.
    ///
    /// # Errors
    ///
    /// Any read failure other than the file being absent.
    pub fn read(&self) -> io::Result<Option<Vec<u8>>> {
        match std::fs::read(&self.path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Replaces the document with `bytes` crash-safely: journal frame +
    /// `fsync`, atomic publish, journal removal. `after_journal` /
    /// `after_publish` name the crashpoints hit at the two commit
    /// boundaries.
    ///
    /// # Errors
    ///
    /// Any I/O failure along the way; the journal is left for the next
    /// open to roll forward if the publish already committed.
    pub fn write(
        &self,
        bytes: &[u8],
        after_journal: Option<&str>,
        after_publish: Option<&str>,
    ) -> io::Result<()> {
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let journal = journal_path(&self.path);
        let mut file = std::fs::File::create(&journal)?;
        file.write_all(&encode_journal_frame(bytes))?;
        file.sync_all()?;
        drop(file);
        if let Some(point) = after_journal {
            hit(point);
        }
        publish_atomic(&self.path, bytes, None, None)?;
        if let Some(point) = after_publish {
            hit(point);
        }
        std::fs::remove_file(&journal)?;
        sync_parent_dir(&journal);
        Ok(())
    }
}

/// Failure to acquire the concurrent-run lock.
#[derive(Debug)]
pub enum LockError {
    /// Another live process holds the lock.
    Held {
        /// The lock file path.
        path: PathBuf,
        /// The holding process id.
        pid: u32,
    },
    /// A filesystem failure while probing or creating the lock.
    Io(io::Error),
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::Held { path, pid } => write!(
                f,
                "another run holds {} (pid {pid}); wait for it or remove the lock if stale",
                path.display()
            ),
            LockError::Io(e) => write!(f, "cannot acquire run lock: {e}"),
        }
    }
}

impl std::error::Error for LockError {}

/// Whether a process id is alive. On Linux this probes `/proc/<pid>`;
/// elsewhere it conservatively assumes alive (a stale lock then needs
/// manual removal, but a live run is never clobbered).
pub fn pid_alive(pid: u32) -> bool {
    if pid == std::process::id() {
        return true;
    }
    let proc_root = Path::new("/proc");
    if proc_root.is_dir() {
        proc_root.join(pid.to_string()).is_dir()
    } else {
        true
    }
}

/// The concurrent-run guard: a `.lock` file holding the owner's pid,
/// created with `O_EXCL` inside the results directory. A second run
/// fails typed ([`LockError::Held`]) naming the holder; a lock whose pid
/// is dead (a killed run's residue) is stolen with a stderr notice.
/// Dropping the guard removes the lock.
#[derive(Debug)]
pub struct RunLock {
    path: PathBuf,
}

impl RunLock {
    /// Acquires the lock for `dir` (created if missing).
    ///
    /// # Errors
    ///
    /// [`LockError::Held`] when a live process owns it; [`LockError::Io`]
    /// on filesystem failures.
    pub fn acquire(dir: &Path) -> Result<RunLock, LockError> {
        std::fs::create_dir_all(dir).map_err(LockError::Io)?;
        let path = dir.join(LOCK_FILE_NAME);
        // Bounded steal loop: each iteration either creates the lock,
        // returns Held, or removes one dead holder's file.
        for _ in 0..16 {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut file) => {
                    file.write_all(std::process::id().to_string().as_bytes())
                        .and_then(|()| file.sync_all())
                        .map_err(LockError::Io)?;
                    return Ok(RunLock { path });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    match Self::holder(&path) {
                        Some(pid) if pid_alive(pid) => {
                            return Err(LockError::Held { path, pid });
                        }
                        Some(pid) => {
                            eprintln!(
                                "stealing stale run lock {} (pid {pid} is dead)",
                                path.display()
                            );
                            let _ = std::fs::remove_file(&path);
                        }
                        // Unreadable/empty pid: either a racing creator
                        // mid-write (re-read after a pause) or a crash
                        // between create and write (then it never becomes
                        // readable and the remove below clears it).
                        None => {
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            if Self::holder(&path).is_none() {
                                eprintln!(
                                    "removing pid-less run lock {} (crash residue)",
                                    path.display()
                                );
                                let _ = std::fs::remove_file(&path);
                            }
                        }
                    }
                }
                Err(e) => return Err(LockError::Io(e)),
            }
        }
        Err(LockError::Io(io::Error::other(
            "run lock contended past retry budget",
        )))
    }

    /// The pid recorded in a lock file, if readable.
    fn holder(path: &Path) -> Option<u32> {
        std::fs::read_to_string(path).ok()?.trim().parse().ok()
    }

    /// The lock file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for RunLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("twig-durable-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crash_spec_parses_points_and_counts() {
        let spec = CrashSpec::parse("ckpt-tmp").unwrap();
        assert!(spec.is_armed());
        assert_eq!(spec.point.as_deref(), Some("ckpt-tmp"));
        assert_eq!(spec.nth, 1);
        let spec = CrashSpec::parse(" traj-journal@3 ").unwrap();
        assert_eq!(spec.point.as_deref(), Some("traj-journal"));
        assert_eq!(spec.nth, 3);
        assert!(!CrashSpec::parse("").unwrap().is_armed());
    }

    #[test]
    fn crash_spec_rejects_unknown_points_and_bad_counts() {
        let err = CrashSpec::parse("no-such-point").unwrap_err();
        assert!(err.contains("no-such-point"), "{err}");
        assert!(err.contains("ckpt-tmp"), "error lists registered points: {err}");
        assert!(CrashSpec::parse("ckpt-tmp@x").is_err());
        assert!(CrashSpec::parse("ckpt-tmp@0").is_err());
    }

    #[test]
    fn unarmed_and_unmatched_checks_never_fire() {
        // A firing check would exit the test process; surviving IS the
        // assertion. Count bookkeeping stays observable via later hits.
        CrashSpec::none().check("ckpt-tmp");
        let spec = CrashSpec::parse("manifest-tmp@1000000").unwrap();
        spec.check("ckpt-tmp");
        spec.check("manifest-tmp");
        assert_eq!(spec.hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn registry_names_are_unique() {
        let mut names: Vec<&str> = CRASHPOINTS.iter().map(|(p, _)| *p).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate crashpoint names");
        assert!(before >= 10, "the drill promises >= 10 points");
    }

    #[test]
    fn publish_atomic_roundtrips_and_leaves_no_residue() {
        let dir = temp_dir("publish");
        let path = dir.join("doc.json");
        publish_atomic(&path, b"{\"v\":1}", None, None).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"v\":1}");
        publish_atomic(&path, b"{\"v\":2}", None, None).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"v\":2}");
        assert!(!tmp_path(&path).exists());
        // Missing parent directories are created.
        let nested = dir.join("a/b/doc.txt");
        publish_atomic(&nested, b"x", None, None).unwrap();
        assert_eq!(std::fs::read(&nested).unwrap(), b"x");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_frames_roundtrip_and_reject_corruption() {
        let frame = encode_journal_frame(b"payload");
        assert_eq!(replay_journal(&frame).unwrap(), b"payload");
        // Torn tail: any strict prefix yields no frame.
        for cut in 0..frame.len() {
            assert_eq!(replay_journal(&frame[..cut]), None, "cut at {cut}");
        }
        // Bit-flips anywhere invalidate the frame.
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x40;
            if let Some(payload) = replay_journal(&bad) {
                assert_eq!(payload, b"payload", "flip at {i} yielded wrong payload");
            }
        }
        // Duplicated frames: the last valid one wins.
        let mut two = encode_journal_frame(b"old");
        two.extend_from_slice(&encode_journal_frame(b"new"));
        assert_eq!(replay_journal(&two).unwrap(), b"new");
        // A torn second frame falls back to the first.
        let mut torn = encode_journal_frame(b"old");
        let second = encode_journal_frame(b"new");
        torn.extend_from_slice(&second[..second.len() - 2]);
        assert_eq!(replay_journal(&torn).unwrap(), b"old");
    }

    #[test]
    fn journaled_write_commits_and_recovers_forward() {
        let dir = temp_dir("journaled");
        let path = dir.join("traj.json");
        let (file, healed) = Journaled::open(&path).unwrap();
        assert!(healed.is_empty());
        assert_eq!(file.read().unwrap(), None);
        file.write(b"doc-1", None, None).unwrap();
        assert_eq!(file.read().unwrap().unwrap(), b"doc-1");
        assert!(!journal_path(&path).exists(), "journal removed after commit");

        // Simulate a crash between journal sync and publish: the journal
        // holds doc-2, the file still holds doc-1. Open must roll forward.
        std::fs::write(journal_path(&path), encode_journal_frame(b"doc-2")).unwrap();
        let (file, healed) = Journaled::open(&path).unwrap();
        assert_eq!(healed.len(), 1);
        assert_eq!(healed[0].action, "rolled-forward-journal");
        assert_eq!(file.read().unwrap().unwrap(), b"doc-2");
        assert!(!journal_path(&path).exists());

        // A torn journal is discarded; doc-2 stands.
        let frame = encode_journal_frame(b"doc-3");
        std::fs::write(journal_path(&path), &frame[..frame.len() / 2]).unwrap();
        let (file, healed) = Journaled::open(&path).unwrap();
        assert_eq!(healed[0].action, "discarded-torn-journal");
        assert_eq!(file.read().unwrap().unwrap(), b"doc-2");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_dir_heals_temps_and_journals_recursively() {
        let dir = temp_dir("recover");
        std::fs::create_dir_all(dir.join("metrics")).unwrap();
        std::fs::write(dir.join("metrics/kafka.json.twig-tmp"), b"partial").unwrap();
        std::fs::write(dir.join("report.txt"), b"old").unwrap();
        std::fs::write(
            dir.join("report.txt.twig-journal"),
            encode_journal_frame(b"new"),
        )
        .unwrap();
        let healed = recover_dir(&dir);
        let actions: Vec<&str> = healed.iter().map(|h| h.action).collect();
        assert_eq!(actions, vec!["rolled-back-temp", "rolled-forward-journal"]);
        assert!(!dir.join("metrics/kafka.json.twig-tmp").exists());
        assert_eq!(std::fs::read(dir.join("report.txt")).unwrap(), b"new");
        assert!(recover_dir(&dir).is_empty(), "recovery is idempotent");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_lock_excludes_live_holders_and_steals_dead_ones() {
        let dir = temp_dir("lock");
        let lock = RunLock::acquire(&dir).unwrap();
        // Second acquisition in the same (live) process: held.
        match RunLock::acquire(&dir) {
            Err(LockError::Held { pid, .. }) => assert_eq!(pid, std::process::id()),
            other => panic!("expected Held, got {other:?}"),
        }
        drop(lock);
        assert!(!dir.join(LOCK_FILE_NAME).exists(), "drop releases the lock");
        // A dead holder's lock is stolen.
        std::fs::write(dir.join(LOCK_FILE_NAME), u32::MAX.to_string()).unwrap();
        let lock = RunLock::acquire(&dir).expect("stale lock stolen");
        drop(lock);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pid_liveness_probe_sees_self() {
        assert!(pid_alive(std::process::id()));
        // u32::MAX exceeds Linux's pid_max; nothing can hold it.
        if Path::new("/proc").is_dir() {
            assert!(!pid_alive(u32::MAX));
        }
    }
}
