//! Deterministic fault injection, driven by the `TWIG_FAULT_SPEC`
//! environment variable.
//!
//! The harness's fault-tolerance machinery (panic isolation, watchdogs,
//! retry, cache integrity checks) is only trustworthy if it can be
//! exercised on demand; this module provides the lever. A spec is a
//! `;`-separated list of clauses, each `kind[:sel,sel,...]`:
//!
//! ```text
//! panic:task=3                     panic before the 4th task of a batch
//! abort:task=3                     abort the whole process at the 4th task
//! panic:cell=sim:kafka/twig        panic in tasks whose label contains the text
//! delay:app=tomcat,ms=60000        sleep 60s (cooperatively) in matching tasks
//! corrupt-cache:app=kafka,times=1  poison the first matching cache populate
//! stall-stream:tenant=t1           tenant t1's profile stream never arrives
//! corrupt-profile:tenant=t2,gen=1  flip t2's profile fingerprint at generation 1
//! tenant-churn:tenant=t0,gen=2     t0 churns (resets) at generation 2
//! disk-full:label=ckpt             tear matching harness writes mid-record
//! ```
//!
//! Selectors (all present selectors must match):
//!
//! * `task=N`  — the task's index within its batch equals `N`;
//! * `cell=S` / `app=S` / `label=S` / `tenant=S` — the task label (or
//!   tenant name, for service faults) contains `S`;
//! * `gen=N`   — the fleet layout generation equals `N` (service faults
//!   and torn writes only; batch-task matching ignores it);
//! * `ms=N`    — delay duration (only meaningful for `delay`);
//! * `times=N` — fire at most `N` times (default: unlimited for
//!   `panic`/`delay`, once for `corrupt-cache` so the evicted entry can
//!   repopulate cleanly). Service-level kinds ignore `times`: their
//!   firing is a pure predicate of `(tenant, generation)`, which keeps
//!   fleet runs byte-identical across worker counts.
//!
//! Matching is purely a function of the spec and the task's
//! `(label, index)` — or, for the service-level kinds, the tenant's
//! `(name, generation)` — so injected failures land on the same cells on
//! every run; the property the resume tests and fleet chaos drills rely
//! on.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;

use crate::supervise::CancelToken;

/// The kind of fault a clause injects.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// Panic (with a recognizable payload) before the task body runs.
    Panic,
    /// Abort the entire process (no unwinding, no cleanup) before the
    /// task body runs — a deterministic stand-in for `kill -9` on a
    /// matrix worker, which the multi-process sharding tests use to
    /// verify that a dead worker degrades to `FAILED` cells and
    /// `--resume` completes them.
    Abort,
    /// Sleep cooperatively for `ms`, polling the cancellation token.
    Delay,
    /// Corrupt the integrity fingerprint of a matching cache populate.
    CorruptCache,
    /// Service: a tenant's profile stream stalls — no samples arrive for
    /// the matching generation, so the fleet loop must degrade instead
    /// of wedging.
    StallStream,
    /// Service: a tenant's profile arrives bit-rotted — its fingerprint
    /// is flipped before verification, so the loop must detect and
    /// discard it.
    CorruptProfile,
    /// Service: the tenant binary churns (redeploy/restart) — its
    /// in-flight generation is lost and it must re-onboard from its
    /// last-good record.
    TenantChurn,
    /// Tear a matching harness write mid-record (checkpoint, manifest,
    /// metrics export) — the deterministic stand-in for `ENOSPC` or a
    /// crash between `write` and `fsync`.
    DiskFull,
    /// Service: a tenant's request latencies spike for the matching
    /// generation (a noisy neighbor, a GC storm) — the fleet's SLO
    /// burn-rate gauge must catch the sustained breach and degrade the
    /// tenant instead of letting the regression ship silently.
    LatencySpike,
}

impl FaultKind {
    fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "panic" => Some(FaultKind::Panic),
            "abort" => Some(FaultKind::Abort),
            "delay" => Some(FaultKind::Delay),
            "corrupt-cache" => Some(FaultKind::CorruptCache),
            "stall-stream" => Some(FaultKind::StallStream),
            "corrupt-profile" => Some(FaultKind::CorruptProfile),
            "tenant-churn" => Some(FaultKind::TenantChurn),
            "disk-full" => Some(FaultKind::DiskFull),
            "latency-spike" => Some(FaultKind::LatencySpike),
            _ => None,
        }
    }
}

/// One parsed clause of a fault spec.
#[derive(Debug)]
pub struct FaultClause {
    /// What to inject.
    pub kind: FaultKind,
    /// Required task index (`task=N`), if any.
    pub task: Option<usize>,
    /// Required fleet generation (`gen=N`), if any.
    pub gen: Option<u64>,
    /// Required label substrings (`cell=`/`app=`/`label=`/`tenant=`).
    pub label_contains: Vec<String>,
    /// Delay duration in milliseconds (`ms=N`).
    pub ms: u64,
    /// Maximum number of firings (`times=N`).
    pub times: u32,
    fired: AtomicU32,
}

impl FaultClause {
    /// True when the clause's selectors match `(label, index)`.
    fn matches(&self, label: &str, index: usize) -> bool {
        if let Some(task) = self.task {
            if task != index {
                return false;
            }
        }
        self.label_contains.iter().all(|s| label.contains(s))
    }

    /// True when the clause's selectors match a fleet tenant at a
    /// generation. A **pure predicate** — no firing budget is consumed —
    /// so the outcome is independent of the order worker threads reach
    /// matching tenants, which keeps fleet manifests byte-identical
    /// across `TWIG_FLEET_WORKERS` settings.
    fn matches_service(&self, tenant: &str, generation: u64) -> bool {
        if let Some(gen) = self.gen {
            if gen != generation {
                return false;
            }
        }
        self.label_contains.iter().all(|s| tenant.contains(s))
    }

    /// Consumes one firing if the selectors match and the budget allows.
    fn try_fire(&self, label: &str, index: usize) -> bool {
        if !self.matches(label, index) {
            return false;
        }
        let prev = self.fired.fetch_add(1, Ordering::Relaxed);
        if prev >= self.times {
            // Over budget: undo so the counter cannot wrap.
            self.fired.fetch_sub(1, Ordering::Relaxed);
            return false;
        }
        true
    }
}

/// A parsed `TWIG_FAULT_SPEC`.
#[derive(Debug, Default)]
pub struct FaultSpec {
    clauses: Vec<FaultClause>,
    /// The raw spec text, echoed into the run manifest.
    pub raw: Option<String>,
}

impl FaultSpec {
    /// Parses a spec string.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed clause.
    pub fn parse(raw: &str) -> Result<FaultSpec, String> {
        let mut clauses = Vec::new();
        for part in raw.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (kind_str, sels) = match part.split_once(':') {
                Some((k, s)) => (k, s),
                None => (part, ""),
            };
            let kind = FaultKind::parse(kind_str.trim())
                .ok_or_else(|| format!("unknown fault kind {kind_str:?} in {part:?}"))?;
            let mut clause = FaultClause {
                kind,
                task: None,
                gen: None,
                label_contains: Vec::new(),
                ms: 0,
                times: if kind == FaultKind::CorruptCache {
                    1
                } else {
                    u32::MAX
                },
                fired: AtomicU32::new(0),
            };
            for sel in sels.split(',') {
                let sel = sel.trim();
                if sel.is_empty() {
                    continue;
                }
                let (key, value) = sel
                    .split_once('=')
                    .ok_or_else(|| format!("selector {sel:?} is not key=value in {part:?}"))?;
                match key.trim() {
                    "task" => {
                        clause.task = Some(
                            value
                                .trim()
                                .parse()
                                .map_err(|_| format!("task index {value:?} is not a number"))?,
                        );
                    }
                    "cell" | "app" | "label" | "tenant" => {
                        clause.label_contains.push(value.trim().to_string());
                    }
                    "gen" => {
                        clause.gen = Some(
                            value
                                .trim()
                                .parse()
                                .map_err(|_| format!("generation {value:?} is not a number"))?,
                        );
                    }
                    "ms" => {
                        clause.ms = value
                            .trim()
                            .parse()
                            .map_err(|_| format!("delay ms {value:?} is not a number"))?;
                    }
                    "times" => {
                        clause.times = value
                            .trim()
                            .parse()
                            .map_err(|_| format!("times {value:?} is not a number"))?;
                    }
                    other => return Err(format!("unknown selector key {other:?} in {part:?}")),
                }
            }
            if kind == FaultKind::Delay && clause.ms == 0 {
                return Err(format!("delay clause {part:?} needs ms=N"));
            }
            clauses.push(clause);
        }
        Ok(FaultSpec {
            clauses,
            raw: Some(raw.to_string()),
        })
    }

    /// An empty spec (injects nothing).
    pub fn none() -> FaultSpec {
        FaultSpec::default()
    }

    /// True when no clause is present.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Applies `panic`/`delay` clauses matching `(label, index)`.
    ///
    /// Returns `false` when an injected delay was cut short by the
    /// cancellation token — the caller must treat the task as timed out
    /// without running its body. Panics (on purpose) when a `panic` clause
    /// fires; the supervisor's `catch_unwind` turns that into a typed
    /// task failure.
    pub fn apply_task_faults(&self, label: &str, index: usize, token: &CancelToken) -> bool {
        for clause in &self.clauses {
            match clause.kind {
                FaultKind::Panic => {
                    if clause.try_fire(label, index) {
                        panic!("injected panic (fault spec) in task {label:?}");
                    }
                }
                FaultKind::Abort => {
                    if clause.try_fire(label, index) {
                        eprintln!("injected abort (fault spec) in task {label:?}");
                        std::process::abort();
                    }
                }
                FaultKind::Delay => {
                    if clause.try_fire(label, index) {
                        let deadline = std::time::Instant::now()
                            + std::time::Duration::from_millis(clause.ms);
                        while std::time::Instant::now() < deadline {
                            if token.is_cancelled() {
                                return false;
                            }
                            std::thread::sleep(std::time::Duration::from_millis(10));
                        }
                    }
                }
                // Cache poisoning and the service-level kinds have their
                // own injection points (`corrupt_fingerprint`,
                // `fires_service`, `apply_write_fault`).
                FaultKind::CorruptCache
                | FaultKind::StallStream
                | FaultKind::CorruptProfile
                | FaultKind::TenantChurn
                | FaultKind::DiskFull
                | FaultKind::LatencySpike => {}
            }
        }
        !token.is_cancelled()
    }

    /// True when a service-level clause of `kind` matches `tenant` at
    /// `generation`. Purely functional (no firing budget — see
    /// [`FaultClause::matches_service`]), so fleet chaos drills are
    /// deterministic at any worker count.
    pub fn fires_service(&self, kind: FaultKind, tenant: &str, generation: u64) -> bool {
        self.clauses
            .iter()
            .any(|c| c.kind == kind && c.matches_service(tenant, generation))
    }

    /// Applies a matching `disk-full` clause to a serialized record about
    /// to be written under `label`: returns `Some(torn_prefix)` — the
    /// record truncated mid-payload, what a crash between `write` and
    /// `fsync` (or `ENOSPC`) leaves behind — when a clause fires, `None`
    /// otherwise. Unlike the service predicates this *does* consume the
    /// clause's `times` budget, so a single-shot torn write can be
    /// followed by clean retries.
    pub fn apply_write_fault(&self, label: &str, record: &[u8]) -> Option<Vec<u8>> {
        for clause in &self.clauses {
            if clause.kind == FaultKind::DiskFull && clause.try_fire(label, 0) {
                let keep = record.len() / 2;
                return Some(record[..keep].to_vec());
            }
        }
        None
    }

    /// Corrupts `fingerprint` when a `corrupt-cache` clause matches
    /// `label`; identity otherwise. Cache populates run this over their
    /// freshly computed integrity fingerprint, so a fired clause makes the
    /// stored entry fail its next verification — exactly what a torn or
    /// poisoned populate would look like.
    pub fn corrupt_fingerprint(&self, label: &str, fingerprint: u64) -> u64 {
        for clause in &self.clauses {
            if clause.kind == FaultKind::CorruptCache && clause.try_fire(label, 0) {
                return fingerprint ^ 0xDEAD_BEEF_DEAD_BEEF;
            }
        }
        fingerprint
    }
}

/// The process-wide spec parsed from `TWIG_FAULT_SPEC` (empty when the
/// variable is unset). A malformed spec aborts: silently ignoring an
/// operator's injection request would make a fault-tolerance CI job pass
/// vacuously.
pub fn global() -> &'static FaultSpec {
    static SPEC: OnceLock<FaultSpec> = OnceLock::new();
    SPEC.get_or_init(
        || match &twig_types::HarnessConfig::global().fault_spec.value {
            Some(raw) => FaultSpec::parse(raw)
                .unwrap_or_else(|e| panic!("malformed TWIG_FAULT_SPEC: {e}")),
            None => FaultSpec::none(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_issue_example() {
        let spec =
            FaultSpec::parse("panic:task=3;delay:task=7,ms=500;corrupt-cache:app=kafka").unwrap();
        assert_eq!(spec.clauses.len(), 3);
        assert_eq!(spec.clauses[0].kind, FaultKind::Panic);
        assert_eq!(spec.clauses[0].task, Some(3));
        assert_eq!(spec.clauses[1].kind, FaultKind::Delay);
        assert_eq!(spec.clauses[1].ms, 500);
        assert_eq!(spec.clauses[2].kind, FaultKind::CorruptCache);
        assert_eq!(spec.clauses[2].label_contains, vec!["kafka".to_string()]);
        assert_eq!(spec.clauses[2].times, 1, "corrupt-cache defaults to once");
    }

    #[test]
    fn abort_clause_parses_and_matches_like_panic() {
        let spec = FaultSpec::parse("abort:task=5,cell=sim:kafka").unwrap();
        assert_eq!(spec.clauses.len(), 1);
        assert_eq!(spec.clauses[0].kind, FaultKind::Abort);
        assert!(spec.clauses[0].matches("sim:kafka/twig", 5));
        assert!(!spec.clauses[0].matches("sim:kafka/twig", 4));
        // Never call apply_task_faults on a matching label here: a fired
        // abort clause takes the whole test process down by design.
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(FaultSpec::parse("explode:task=1").is_err());
        assert!(FaultSpec::parse("panic:task=abc").is_err());
        assert!(FaultSpec::parse("panic:notakv").is_err());
        assert!(FaultSpec::parse("panic:zzz=1").is_err());
        assert!(FaultSpec::parse("delay:task=1").is_err(), "delay needs ms");
        assert!(FaultSpec::parse("").unwrap().is_empty());
        assert!(FaultSpec::parse(" ; ").unwrap().is_empty());
    }

    #[test]
    fn matching_is_conjunctive_over_selectors() {
        let spec = FaultSpec::parse("panic:task=2,cell=sim:kafka").unwrap();
        let c = &spec.clauses[0];
        assert!(c.matches("sim:kafka/twig", 2));
        assert!(!c.matches("sim:kafka/twig", 3), "wrong index");
        assert!(!c.matches("sim:tomcat/twig", 2), "wrong label");
    }

    #[test]
    fn injected_panic_fires_and_respects_times() {
        let spec = FaultSpec::parse("panic:cell=victim,times=1").unwrap();
        let token = CancelToken::new();
        let hit = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            spec.apply_task_faults("victim", 0, &token)
        }));
        assert!(hit.is_err(), "first firing panics");
        // Budget exhausted: the same task now passes through.
        assert!(spec.apply_task_faults("victim", 0, &token));
        // Non-matching labels never fire.
        assert!(spec.apply_task_faults("bystander", 0, &token));
    }

    #[test]
    fn delay_is_cut_short_by_cancellation() {
        let spec = FaultSpec::parse("delay:cell=slow,ms=60000").unwrap();
        let token = CancelToken::with_deadline_ms(30);
        let started = std::time::Instant::now();
        let proceed = spec.apply_task_faults("slow", 0, &token);
        assert!(!proceed, "cancelled delay must abort the task");
        assert!(
            started.elapsed() < std::time::Duration::from_secs(10),
            "delay must not run to its full 60s"
        );
    }

    #[test]
    fn service_kinds_parse_and_match_purely() {
        let spec = FaultSpec::parse(
            "stall-stream:tenant=t1;corrupt-profile:tenant=t2,gen=1;tenant-churn:tenant=t0,gen=2",
        )
        .unwrap();
        // stall-stream: every generation of t1, nobody else.
        assert!(spec.fires_service(FaultKind::StallStream, "t1", 0));
        assert!(spec.fires_service(FaultKind::StallStream, "t1", 7));
        assert!(!spec.fires_service(FaultKind::StallStream, "t2", 0));
        // corrupt-profile: only t2 at gen 1.
        assert!(spec.fires_service(FaultKind::CorruptProfile, "t2", 1));
        assert!(!spec.fires_service(FaultKind::CorruptProfile, "t2", 2));
        assert!(!spec.fires_service(FaultKind::CorruptProfile, "t1", 1));
        // Pure predicate: repeated queries never exhaust a budget.
        for _ in 0..10 {
            assert!(spec.fires_service(FaultKind::TenantChurn, "t0", 2));
        }
        // Wrong kind never matches.
        assert!(!spec.fires_service(FaultKind::DiskFull, "t1", 0));
    }

    #[test]
    fn disk_full_tears_the_record_once_per_budget() {
        let spec = FaultSpec::parse("disk-full:label=ckpt:victim,times=1").unwrap();
        let record = vec![0xABu8; 64];
        let torn = spec.apply_write_fault("ckpt:victim-cell", &record).unwrap();
        assert_eq!(torn.len(), 32, "record truncated mid-payload");
        assert_eq!(&torn[..], &record[..32]);
        // Budget spent: the retry goes through clean.
        assert_eq!(spec.apply_write_fault("ckpt:victim-cell", &record), None);
        // Non-matching labels are never torn.
        let spec = FaultSpec::parse("disk-full:label=ckpt:victim").unwrap();
        assert_eq!(spec.apply_write_fault("ckpt:other", &record), None);
    }

    #[test]
    fn gen_selector_rejects_garbage() {
        assert!(FaultSpec::parse("stall-stream:gen=abc").is_err());
        assert!(FaultSpec::parse("disk-full:tenant=t1,gen=3").is_ok());
    }

    #[test]
    fn corrupt_fingerprint_flips_once() {
        let spec = FaultSpec::parse("corrupt-cache:label=events:kafka").unwrap();
        let a = spec.corrupt_fingerprint("events:kafka/1", 42);
        assert_ne!(a, 42, "first populate is corrupted");
        let b = spec.corrupt_fingerprint("events:kafka/1", 42);
        assert_eq!(b, 42, "repopulate after eviction is clean");
        assert_eq!(spec.corrupt_fingerprint("events:tomcat/1", 7), 7);
    }
}
