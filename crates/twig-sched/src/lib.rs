//! Bounded fine-grained task scheduler for the experiment harness.
//!
//! The harness used to spawn one OS thread per application (unbounded in
//! the matrix size). This crate replaces that with a process-wide *spawn
//! budget*: [`parallel_map`] drains a shared queue of individual tasks with
//! at most [`num_threads`] worker threads alive across the whole process,
//! and the calling thread always participates (work-helping), so nested
//! `parallel_map` calls are deadlock-free even when the budget is
//! exhausted — they simply degrade to serial execution on the caller.
//!
//! The thread cap comes from `TWIG_NUM_THREADS`, then `RAYON_NUM_THREADS`
//! (kept for familiarity with rayon-based setups), then the machine's
//! available parallelism.
//!
//! Budget tokens are owned per-worker and returned the moment a worker
//! finds the queue empty — not when the whole `parallel_map` joins — so a
//! concurrent map can scale up while another map's slow last task is
//! still draining.
//!
//! # Examples
//!
//! ```
//! let squares = twig_sched::parallel_map(vec![1u64, 2, 3, 4], |v| v * v);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicIsize, Ordering};
use std::sync::{Mutex, OnceLock};

pub mod durable;
pub mod fault;
pub mod procs;
pub mod service;
pub mod supervise;

pub use durable::{
    publish_atomic, publish_atomic_with, recover_dir, CrashSpec, Healed, Journaled, LockError,
    RunLock,
};
pub use fault::{FaultKind, FaultSpec};
pub use procs::{num_procs, ShardSpec};
pub use service::{BoundedQueue, ServicePool, ServiceStats};
pub use supervise::{
    jittered_backoff_ms, run_supervised, supervised_map, CancelToken, TaskError, TaskPolicy,
    TaskReport,
};

/// Maximum number of concurrently working threads (including callers),
/// resolved once per process from the unified harness configuration
/// (`TWIG_NUM_THREADS`, with `RAYON_NUM_THREADS` as a fallback spelling)
/// or the machine's available parallelism.
pub fn num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        twig_types::HarnessConfig::global()
            .num_threads
            .value
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Process-wide count of *additional* threads that may be spawned
/// (callers always work, so the budget is `num_threads() - 1`).
fn spawn_budget() -> &'static AtomicIsize {
    static BUDGET: OnceLock<AtomicIsize> = OnceLock::new();
    BUDGET.get_or_init(|| AtomicIsize::new(num_threads() as isize - 1))
}

/// One spawn-budget token, owned by one worker thread; returned to the
/// process-wide budget on drop — which happens as soon as that worker
/// finds the queue empty, not when the whole `parallel_map` scope joins.
/// Drop also runs on unwind, so a panicking task never leaks the budget.
struct Token;

impl Drop for Token {
    fn drop(&mut self) {
        spawn_budget().fetch_add(1, Ordering::AcqRel);
    }
}

/// Takes up to `want` tokens from the spawn budget (possibly zero).
fn acquire_tokens(want: usize) -> Vec<Token> {
    let budget = spawn_budget();
    let want = want as isize;
    let mut tokens = Vec::new();
    while (tokens.len() as isize) < want {
        let current = budget.load(Ordering::Relaxed);
        if current <= 0 {
            break;
        }
        let take = current.min(want - tokens.len() as isize);
        if budget
            .compare_exchange(current, current - take, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            tokens.extend((0..take).map(|_| Token));
        }
    }
    tokens
}

/// Applies `f` to every item, in parallel up to the process-wide thread
/// cap, and returns the results **in input order**.
///
/// Individual `(index, item)` tasks are drained from a shared queue, so a
/// long task on one thread never serializes the rest of the batch behind
/// it. Safe to nest: inner calls reuse whatever budget remains and fall
/// back to running on the calling thread.
///
/// # Panics
///
/// If a task panics, the remaining queue is abandoned (fail-fast), the
/// already-running tasks finish, all workers join cleanly, and the *first*
/// panic's payload is re-raised on the calling thread — never on a worker,
/// so a panicking task cannot cross-thread-poison the scope or leak spawn
/// budget. Callers that need per-task quarantine instead of fail-fast
/// should use [`supervised_map`].
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let tokens = acquire_tokens(n - 1);
    if tokens.is_empty() {
        return items.into_iter().map(f).collect();
    }

    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let aborted = AtomicBool::new(false);
    let first_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let work = || loop {
        if aborted.load(Ordering::Acquire) {
            break;
        }
        let job = queue
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .pop_front();
        match job {
            Some((index, item)) => {
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item))) {
                    Ok(output) => {
                        *results[index]
                            .lock()
                            .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(output);
                    }
                    Err(payload) => {
                        aborted.store(true, Ordering::Release);
                        let mut slot = first_panic
                            .lock()
                            .unwrap_or_else(|poisoned| poisoned.into_inner());
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                        break;
                    }
                }
            }
            None => break,
        }
    };

    std::thread::scope(|scope| {
        let work = &work;
        for token in tokens {
            // Each worker owns its token and drops it the moment it runs
            // out of queued work, so a concurrent `parallel_map` can pick
            // the budget up while this scope's slow tail still runs.
            scope.spawn(move || {
                let _token = token;
                work();
            });
        }
        work();
    });

    if let Some(payload) = first_panic
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
    {
        std::panic::resume_unwind(payload);
    }

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .expect("every queued task stores a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_input_order() {
        let out = parallel_map((0..257u64).collect::<Vec<_>>(), |v| v * 3);
        assert_eq!(out, (0..257u64).map(|v| v * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(parallel_map(Vec::<u32>::new(), |v| v), Vec::<u32>::new());
        assert_eq!(parallel_map(vec![9u32], |v| v + 1), vec![10]);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = parallel_map((0..100usize).collect::<Vec<_>>(), |v| {
            counter.fetch_add(1, Ordering::Relaxed);
            v
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(out.iter().copied().collect::<HashSet<_>>().len(), 100);
    }

    #[test]
    fn nested_maps_complete_without_deadlock() {
        let out = parallel_map((0..16u64).collect::<Vec<_>>(), |outer| {
            parallel_map((0..16u64).collect::<Vec<_>>(), move |inner| outer * 16 + inner)
                .into_iter()
                .sum::<u64>()
        });
        let expected: Vec<u64> = (0..16u64)
            .map(|outer| (0..16u64).map(|inner| outer * 16 + inner).sum())
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn idle_workers_return_tokens_before_scope_ends() {
        // Needs at least two spawned workers to observe early release.
        if num_threads() < 3 {
            return;
        }
        let full = num_threads() as isize - 1;
        let observed = std::sync::atomic::AtomicBool::new(false);
        parallel_map((0..64usize).collect::<Vec<_>>(), |i| {
            if i == 0 {
                // Long-tail task: while it still runs, every token except
                // (at most) the one held by its own worker must come back
                // as the other workers drain the queue and go idle.
                let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
                while std::time::Instant::now() < deadline {
                    if spawn_budget().load(Ordering::Relaxed) >= full - 1 {
                        observed.store(true, Ordering::Relaxed);
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        });
        assert!(
            observed.load(Ordering::Relaxed),
            "tokens were held until the scope ended"
        );
    }

    #[test]
    fn panic_propagates_to_caller_after_clean_join() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map((0..64u32).collect::<Vec<_>>(), |v| {
                if v == 17 {
                    panic!("task 17 exploded");
                }
                v
            })
        });
        let payload = caught.expect_err("panic must propagate");
        let text = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(text.contains("task 17 exploded"), "payload was {text:?}");
        // The budget must be fully restored despite the panic.
        let available = spawn_budget().load(Ordering::Relaxed);
        assert_eq!(available, num_threads() as isize - 1);
    }

    #[test]
    fn budget_is_restored_after_use() {
        for _ in 0..3 {
            let _ = parallel_map((0..64u32).collect::<Vec<_>>(), |v| v);
        }
        let available = spawn_budget().load(Ordering::Relaxed);
        assert_eq!(available, num_threads() as isize - 1);
    }
}
