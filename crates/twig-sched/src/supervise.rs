//! Per-task fault tolerance: panic isolation, cooperative
//! deadline/watchdog cancellation, and bounded retry with backoff.
//!
//! The experiment harness flattens its work onto [`crate::parallel_map`];
//! before this module, one panicking or hung task aborted the whole
//! multi-minute run. [`run_supervised`] quarantines each task instead:
//!
//! * **Panic isolation** — the task body runs under `catch_unwind`; the
//!   panic payload is captured into [`TaskError::Panicked`] and the
//!   default panic hook's backtrace spew is suppressed for supervised
//!   regions (real unexpected panics elsewhere still print normally).
//! * **Watchdog** — each attempt gets a [`CancelToken`] carrying the
//!   policy deadline. A process-wide watchdog thread trips the token's
//!   flag when the deadline passes; cancellation is *cooperative* (Rust
//!   threads cannot be killed), so long-running bodies should poll
//!   [`CancelToken::is_cancelled`] and bail. `is_cancelled` also checks
//!   the clock directly, so correctness never depends on watchdog timing.
//! * **Retry with backoff** — panics and timeouts are retried up to
//!   [`TaskPolicy::attempts`] times with exponential backoff; explicit
//!   cancellation is not retried.
//!
//! Injected faults from [`crate::fault`] (the `TWIG_FAULT_SPEC` layer)
//! are applied inside the isolation boundary, before the task body, so
//! tests and CI can drive every path above deterministically.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::{Duration, Instant};

use crate::fault;

/// Shared state behind a [`CancelToken`].
#[derive(Debug)]
struct TokenInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// Cooperative cancellation token handed to every supervised task.
///
/// Cheap to clone; all clones observe the same cancellation.
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl CancelToken {
    /// A token with no deadline (cancelled only explicitly).
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that auto-cancels `ms` milliseconds from now.
    pub fn with_deadline_ms(ms: u64) -> Self {
        let token = CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + Duration::from_millis(ms)),
            }),
        };
        watchdog_register(&token);
        token
    }

    /// Requests cancellation.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// True once cancelled or past the deadline. Long-running task bodies
    /// should poll this and return early ([`TaskError::Cancelled`]).
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        match self.inner.deadline {
            Some(deadline) if Instant::now() >= deadline => {
                // Latch, so later polls are a plain flag read.
                self.inner.cancelled.store(true, Ordering::Release);
                true
            }
            _ => false,
        }
    }

    /// True when the token has a deadline and it has passed.
    pub fn deadline_exceeded(&self) -> bool {
        matches!(self.inner.deadline, Some(d) if Instant::now() >= d)
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

/// Registry of live deadline tokens, scanned by the watchdog thread.
fn watchdog_registry() -> &'static Mutex<Vec<Weak<TokenInner>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Weak<TokenInner>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Adds a token to the watchdog's scan list, starting the (detached,
/// process-wide) watchdog thread on first use.
fn watchdog_register(token: &CancelToken) {
    static WATCHDOG: OnceLock<()> = OnceLock::new();
    {
        let mut registry = watchdog_registry()
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        registry.push(Arc::downgrade(&token.inner));
    }
    WATCHDOG.get_or_init(|| {
        std::thread::Builder::new()
            .name("twig-watchdog".into())
            .spawn(|| loop {
                std::thread::sleep(Duration::from_millis(25));
                let mut registry = watchdog_registry()
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                registry.retain(|weak| match weak.upgrade() {
                    None => false,
                    Some(inner) => {
                        if let Some(deadline) = inner.deadline {
                            if Instant::now() >= deadline {
                                inner.cancelled.store(true, Ordering::Release);
                                return false;
                            }
                        }
                        true
                    }
                });
            })
            .expect("spawn watchdog thread");
    });
}

/// Why a supervised task failed (after all retries).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TaskError {
    /// The task panicked; the payload (if a string) is captured.
    Panicked(String),
    /// The task exceeded its deadline and observed cancellation.
    TimedOut {
        /// Milliseconds elapsed when the timeout was recorded.
        elapsed_ms: u64,
    },
    /// The task was cancelled explicitly (not retried).
    Cancelled,
    /// The task failed with a domain-specific error it diagnosed itself
    /// (e.g. a simulation integrity violation). Deterministic, so never
    /// retried.
    Domain {
        /// Machine-stable kind tag for `FAILED(<kind>)` cell markers
        /// (e.g. `integrity: btb-occupancy`).
        kind: String,
        /// Full human-readable diagnosis.
        detail: String,
    },
}

impl TaskError {
    /// A short machine-stable kind tag (`panic` / `timeout` / `cancelled`,
    /// or the domain error's own tag), used for `FAILED(<reason>)` markers
    /// in reports.
    pub fn kind(&self) -> &str {
        match self {
            TaskError::Panicked(_) => "panic",
            TaskError::TimedOut { .. } => "timeout",
            TaskError::Cancelled => "cancelled",
            TaskError::Domain { kind, .. } => kind,
        }
    }

    /// Whether the supervisor should retry after this error. Domain errors
    /// are deterministic diagnoses, so retrying cannot help.
    pub fn retryable(&self) -> bool {
        !matches!(self, TaskError::Cancelled | TaskError::Domain { .. })
    }
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::Panicked(payload) => write!(f, "panicked: {payload}"),
            TaskError::TimedOut { elapsed_ms } => {
                write!(f, "timed out after {elapsed_ms} ms")
            }
            TaskError::Cancelled => write!(f, "cancelled"),
            TaskError::Domain { detail, .. } => write!(f, "{detail}"),
        }
    }
}

impl std::error::Error for TaskError {}

/// Retry/deadline policy for supervised tasks.
#[derive(Clone, Copy, Debug)]
pub struct TaskPolicy {
    /// Total attempts (first run + retries); at least 1.
    pub attempts: u32,
    /// Base backoff between attempts, doubled each retry.
    pub backoff_ms: u64,
    /// Per-attempt deadline; `None` disables the watchdog.
    pub timeout_ms: Option<u64>,
}

impl Default for TaskPolicy {
    fn default() -> Self {
        TaskPolicy {
            attempts: 2,
            backoff_ms: 100,
            timeout_ms: Some(600_000),
        }
    }
}

impl TaskPolicy {
    /// The default policy with `TWIG_TASK_ATTEMPTS`, `TWIG_TASK_BACKOFF_MS`
    /// and `TWIG_TASK_TIMEOUT_MS` (0 = no deadline) applied on top, via
    /// the unified harness configuration (malformed values abort there
    /// with the variable named, instead of silently using defaults).
    pub fn from_env() -> Self {
        Self::from_config(twig_types::HarnessConfig::global())
    }

    /// The policy carried by an already-parsed harness configuration.
    pub fn from_config(config: &twig_types::HarnessConfig) -> Self {
        TaskPolicy {
            attempts: config.task_attempts.value,
            backoff_ms: config.task_backoff_ms.value,
            timeout_ms: config.task_timeout_ms.value,
        }
    }

    /// This policy with a different deadline.
    pub fn with_timeout_ms(mut self, ms: Option<u64>) -> Self {
        self.timeout_ms = ms;
        self
    }
}

/// Outcome of one supervised task, with attempt/wall-time accounting for
/// the run manifest.
#[derive(Debug)]
pub struct TaskReport<R> {
    /// The task's label (as matched by fault specs).
    pub label: String,
    /// Attempts actually made (1 = first try succeeded).
    pub attempts: u32,
    /// Wall time across all attempts, milliseconds.
    pub wall_ms: u64,
    /// The task's value, or the last attempt's error.
    pub result: Result<R, TaskError>,
}

thread_local! {
    /// Set while a supervised body runs, so the panic hook stays quiet for
    /// payloads we are about to capture anyway.
    static IN_SUPERVISED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Installs (once) a panic hook that suppresses printing for panics inside
/// supervised regions and defers to the previous hook otherwise.
fn install_quiet_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !IN_SUPERVISED.with(|flag| flag.get()) {
                previous(info);
            }
        }));
    });
}

/// Stringifies a panic payload (`&str` / `String` payloads pass through).
fn payload_to_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The delay before retry number `attempt + 1`: exponential backoff from
/// `base_ms` plus a deterministic, label-seeded jitter in
/// `[0, base_ms / 2]`.
///
/// A fleet of workers that all fail together (say, a shared dependency
/// hiccup) and retry on a fixed schedule re-collides on every retry;
/// jitter spreads them out. Randomized jitter would break the harness's
/// run-to-run determinism, so the offset is a pure function of the task
/// label and attempt number (FxHash): the same task retries on the same
/// schedule every run, but no two labels share one.
pub fn jittered_backoff_ms(base_ms: u64, label: &str, attempt: u32) -> u64 {
    if base_ms == 0 {
        return 0;
    }
    let exponential = base_ms.saturating_mul(1u64 << attempt.saturating_sub(1).min(16));
    let mut hasher = twig_types::fxhash::FxHasher::default();
    std::hash::Hasher::write(&mut hasher, label.as_bytes());
    std::hash::Hasher::write_u32(&mut hasher, attempt);
    let jitter = std::hash::Hasher::finish(&hasher) % (base_ms / 2 + 1);
    exponential.saturating_add(jitter)
}

/// Runs `f` under full supervision: injected faults applied first, panics
/// caught, the deadline watchdog armed, and retryable failures retried
/// per `policy`. `index` is the task's position within its batch (what
/// `task=N` fault selectors match).
pub fn run_supervised<R, F>(label: &str, index: usize, policy: &TaskPolicy, f: F) -> TaskReport<R>
where
    F: Fn(&CancelToken) -> Result<R, TaskError>,
{
    install_quiet_hook();
    let started = Instant::now();
    let attempts_allowed = policy.attempts.max(1);
    let mut attempts = 0;
    let mut last_error = TaskError::Cancelled;
    while attempts < attempts_allowed {
        attempts += 1;
        let token = match policy.timeout_ms {
            Some(ms) => CancelToken::with_deadline_ms(ms),
            None => CancelToken::new(),
        };
        let attempt_started = Instant::now();
        let caught = {
            let token = &token;
            catch_unwind(AssertUnwindSafe(|| {
                IN_SUPERVISED.with(|flag| flag.set(true));
                let result = if fault::global().apply_task_faults(label, index, token) {
                    f(token)
                } else {
                    Err(TaskError::Cancelled)
                };
                IN_SUPERVISED.with(|flag| flag.set(false));
                result
            }))
        };
        IN_SUPERVISED.with(|flag| flag.set(false));
        let error = match caught {
            Ok(Ok(value)) => {
                return TaskReport {
                    label: label.to_string(),
                    attempts,
                    wall_ms: started.elapsed().as_millis() as u64,
                    result: Ok(value),
                }
            }
            Ok(Err(e)) => e,
            Err(payload) => TaskError::Panicked(payload_to_string(payload)),
        };
        // A cancellation caused by the deadline is a watchdog timeout.
        let error = match error {
            TaskError::Cancelled if token.deadline_exceeded() => TaskError::TimedOut {
                elapsed_ms: attempt_started.elapsed().as_millis() as u64,
            },
            other => other,
        };
        let retry = error.retryable() && attempts < attempts_allowed;
        last_error = error;
        if !retry {
            break;
        }
        let backoff = jittered_backoff_ms(policy.backoff_ms, label, attempts);
        if backoff > 0 {
            std::thread::sleep(Duration::from_millis(backoff));
        }
    }
    TaskReport {
        label: label.to_string(),
        attempts,
        wall_ms: started.elapsed().as_millis() as u64,
        result: Err(last_error),
    }
}

/// [`crate::parallel_map`] with every task supervised: the returned
/// reports preserve input order, and one panicking or hung task cannot
/// take down the batch. `label(index, item)` names each task for fault
/// matching and manifests.
pub fn supervised_map<T, R, L, F>(
    items: Vec<T>,
    policy: &TaskPolicy,
    label: L,
    f: F,
) -> Vec<TaskReport<R>>
where
    T: Send,
    R: Send,
    L: Fn(usize, &T) -> String + Sync,
    F: Fn(&T, &CancelToken) -> Result<R, TaskError> + Sync,
{
    let tagged: Vec<(usize, T)> = items.into_iter().enumerate().collect();
    crate::parallel_map(tagged, |(index, item)| {
        let name = label(index, &item);
        run_supervised(&name, index, policy, |token| f(&item, token))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn quick_policy() -> TaskPolicy {
        TaskPolicy {
            attempts: 1,
            backoff_ms: 0,
            timeout_ms: None,
        }
    }

    #[test]
    fn success_reports_one_attempt() {
        let report = run_supervised("ok", 0, &quick_policy(), |_| Ok(41 + 1));
        assert_eq!(report.attempts, 1);
        assert_eq!(report.result.unwrap(), 42);
    }

    #[test]
    fn panic_is_isolated_and_payload_captured() {
        let report: TaskReport<u32> = run_supervised("boom", 0, &quick_policy(), |_| {
            panic!("it broke: {}", 7);
        });
        match report.result {
            Err(TaskError::Panicked(payload)) => assert!(payload.contains("it broke: 7")),
            other => panic!("expected Panicked, got {other:?}"),
        }
        assert_eq!(report.attempts, 1);
    }

    #[test]
    fn one_panicking_task_does_not_poison_the_batch() {
        let policy = quick_policy();
        let reports = supervised_map(
            (0..8u32).collect(),
            &policy,
            |i, _| format!("task-{i}"),
            |&v, _| {
                if v == 3 {
                    panic!("task three always fails");
                }
                Ok(v * 2)
            },
        );
        for (i, report) in reports.iter().enumerate() {
            if i == 3 {
                assert!(matches!(report.result, Err(TaskError::Panicked(_))));
            } else {
                assert_eq!(*report.result.as_ref().unwrap(), i as u32 * 2);
            }
        }
    }

    #[test]
    fn watchdog_cancels_past_deadline() {
        let policy = TaskPolicy {
            attempts: 1,
            backoff_ms: 0,
            timeout_ms: Some(50),
        };
        let started = Instant::now();
        let report: TaskReport<()> = run_supervised("hang", 0, &policy, |token| {
            // A cooperative "hang": spins until the watchdog trips the
            // token, then bails (bounded by the outer assert's deadline).
            let bail_out = Instant::now() + Duration::from_secs(30);
            while !token.is_cancelled() {
                if Instant::now() > bail_out {
                    return Ok(());
                }
                std::thread::yield_now();
            }
            Err(TaskError::Cancelled)
        });
        match report.result {
            Err(TaskError::TimedOut { elapsed_ms }) => {
                assert!(elapsed_ms >= 40, "cancelled too early: {elapsed_ms} ms");
            }
            other => panic!("expected TimedOut, got {other:?}"),
        }
        assert!(
            started.elapsed() < Duration::from_secs(20),
            "watchdog never fired"
        );
    }

    #[test]
    fn retry_recovers_from_transient_panic_deterministically() {
        let failures = AtomicU32::new(0);
        let policy = TaskPolicy {
            attempts: 3,
            backoff_ms: 1,
            timeout_ms: None,
        };
        let report = run_supervised("flaky", 0, &policy, |_| {
            if failures.fetch_add(1, Ordering::Relaxed) < 2 {
                panic!("transient");
            }
            Ok("recovered")
        });
        assert_eq!(report.attempts, 3, "two failures then success");
        assert_eq!(report.result.unwrap(), "recovered");
    }

    #[test]
    fn retries_stop_at_the_attempt_budget() {
        let runs = AtomicU32::new(0);
        let policy = TaskPolicy {
            attempts: 3,
            backoff_ms: 0,
            timeout_ms: None,
        };
        let report: TaskReport<()> = run_supervised("always-bad", 0, &policy, |_| {
            runs.fetch_add(1, Ordering::Relaxed);
            panic!("permanent");
        });
        assert_eq!(report.attempts, 3);
        assert_eq!(runs.load(Ordering::Relaxed), 3);
        assert!(matches!(report.result, Err(TaskError::Panicked(_))));
    }

    #[test]
    fn explicit_cancellation_is_not_retried() {
        let runs = AtomicU32::new(0);
        let policy = TaskPolicy {
            attempts: 5,
            backoff_ms: 0,
            timeout_ms: None,
        };
        let report: TaskReport<()> = run_supervised("cancelled", 0, &policy, |_| {
            runs.fetch_add(1, Ordering::Relaxed);
            Err(TaskError::Cancelled)
        });
        assert_eq!(runs.load(Ordering::Relaxed), 1);
        assert!(matches!(report.result, Err(TaskError::Cancelled)));
    }

    #[test]
    fn backoff_jitter_schedule_is_pinned() {
        // The seeded schedule is part of the determinism contract: any
        // change to the hash, the fold order, or the jitter span shows up
        // here as a literal mismatch.
        assert_eq!(jittered_backoff_ms(100, "fleet:worker-0", 1), 125);
        assert_eq!(jittered_backoff_ms(100, "fleet:worker-0", 2), 215);
        assert_eq!(jittered_backoff_ms(100, "fleet:worker-0", 3), 419);
        assert_eq!(jittered_backoff_ms(100, "fleet:worker-1", 1), 148);
        assert_eq!(jittered_backoff_ms(100, "fleet:worker-1", 2), 238);
        assert_eq!(jittered_backoff_ms(100, "fleet:worker-1", 3), 442);
        // Zero base disables backoff entirely (tests rely on this).
        assert_eq!(jittered_backoff_ms(0, "fleet:worker-0", 1), 0);
    }

    #[test]
    fn backoff_jitter_stays_in_band_and_desynchronizes_labels() {
        for attempt in 1..=6u32 {
            let exp = 100u64 * (1 << (attempt - 1));
            for label in ["a", "b", "c", "fleet:tenant-3/gen4"] {
                let v = jittered_backoff_ms(100, label, attempt);
                assert!(v >= exp && v <= exp + 50, "{label}@{attempt}: {v}");
                // Deterministic: the schedule is a pure function.
                assert_eq!(v, jittered_backoff_ms(100, label, attempt));
            }
        }
        // Lockstep retries are the failure mode this prevents: distinct
        // labels must not all share one offset.
        let offsets: std::collections::HashSet<u64> = (0..16)
            .map(|i| jittered_backoff_ms(1000, &format!("w{i}"), 1))
            .collect();
        assert!(offsets.len() > 8, "jitter collapsed: {offsets:?}");
    }

    #[test]
    fn token_cancel_is_shared_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
    }
}
