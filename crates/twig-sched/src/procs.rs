//! Multi-process sharding helpers (`TWIG_NUM_PROCS`).
//!
//! [`parallel_map`](crate::parallel_map) parallelizes within one address
//! space; this module shards a *fixed, deterministically ordered* task
//! list across worker **processes**. The parent re-executes its own
//! binary once per shard with a `--shard i/N` argument; each worker
//! claims the task indices `i, i+N, i+2N, …` ([`ShardSpec::owns`]),
//! persists every completed cell to the shared checkpoint store, and
//! exits. The parent then assembles the matrix purely from checkpoints —
//! a worker that died (crash, OOM-kill, injected `abort` fault) simply
//! leaves its cells missing, which the caller degrades to failed cells;
//! a later `--resume` run completes them.
//!
//! The protocol deliberately has no IPC beyond the checkpoint files:
//! records are atomic (temp file + rename) and CRC-checked, so a torn
//! write from a dying worker is indistinguishable from a missing cell.
//!
//! # Examples
//!
//! ```
//! use twig_sched::procs::ShardSpec;
//!
//! let shard = ShardSpec::parse("1/4").unwrap();
//! assert!(shard.owns(5));
//! assert!(!shard.owns(6));
//! assert_eq!(shard.to_arg(), "1/4");
//! ```

use std::process::{Command, ExitStatus};

/// This process's slice of the task list: shard `index` of `total`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ShardSpec {
    /// Zero-based shard index, `< total`.
    pub index: usize,
    /// Total number of shards, at least 1.
    pub total: usize,
}

impl ShardSpec {
    /// Parses the `i/N` form used by the hidden `--shard` CLI argument.
    ///
    /// # Errors
    ///
    /// Returns a description when the text is not `i/N` with `i < N`,
    /// `N >= 1`.
    pub fn parse(text: &str) -> Result<ShardSpec, String> {
        let (index, total) = text
            .split_once('/')
            .ok_or_else(|| format!("shard spec {text:?} is not i/N"))?;
        let index: usize = index
            .trim()
            .parse()
            .map_err(|_| format!("shard index {index:?} is not a number"))?;
        let total: usize = total
            .trim()
            .parse()
            .map_err(|_| format!("shard total {total:?} is not a number"))?;
        if total == 0 {
            return Err("shard total must be >= 1".to_string());
        }
        if index >= total {
            return Err(format!("shard index {index} out of range for /{total}"));
        }
        Ok(ShardSpec { index, total })
    }

    /// Renders the spec back into its `i/N` CLI form.
    pub fn to_arg(&self) -> String {
        format!("{}/{}", self.index, self.total)
    }

    /// Whether this shard owns task `index` (round-robin by index, so a
    /// fixed task order gives every run the same assignment).
    pub fn owns(&self, task_index: usize) -> bool {
        task_index % self.total == self.index
    }
}

/// Outcome of one worker process.
#[derive(Debug)]
pub struct WorkerOutcome {
    /// The shard the worker was responsible for.
    pub shard: ShardSpec,
    /// Its exit status, or the spawn error rendered as text.
    pub status: Result<ExitStatus, String>,
}

impl WorkerOutcome {
    /// True when the worker ran and exited 0.
    pub fn success(&self) -> bool {
        matches!(&self.status, Ok(s) if s.success())
    }

    /// A short human-readable description of a failed outcome
    /// (`exit code 101`, `signal`, `spawn failed: …`).
    pub fn describe(&self) -> String {
        match &self.status {
            Ok(status) if status.success() => "ok".to_string(),
            Ok(status) => match status.code() {
                Some(code) => format!("exit code {code}"),
                None => "killed by signal".to_string(),
            },
            Err(e) => format!("spawn failed: {e}"),
        }
    }
}

/// The number of worker processes requested via `TWIG_NUM_PROCS`
/// (default 1 = no subprocess sharding).
pub fn num_procs() -> usize {
    twig_types::HarnessConfig::global().num_procs.value
}

/// Spawns `total` copies of the current executable, one per shard, each
/// with `args(shard)` as its full argument list, and waits for all of
/// them. Workers inherit the parent's environment (so `TWIG_*` knobs,
/// including fault specs, apply inside them) — except `TWIG_NUM_PROCS`,
/// which is reset to 1 as a belt-and-braces guard against recursive
/// spawning should a worker ever miss its `--shard` argument.
///
/// Spawn failures and non-zero exits are *reported*, not propagated as
/// panics: a dead worker must degrade its cells, not the whole run.
pub fn run_sharded(total: usize, args: impl Fn(ShardSpec) -> Vec<String>) -> Vec<WorkerOutcome> {
    let exe = match std::env::current_exe() {
        Ok(path) => path,
        Err(e) => {
            // Without our own path there is nothing to spawn; report
            // every shard as failed so the caller degrades uniformly.
            return (0..total)
                .map(|index| WorkerOutcome {
                    shard: ShardSpec { index, total },
                    status: Err(format!("current_exe: {e}")),
                })
                .collect();
        }
    };
    let children: Vec<(ShardSpec, std::io::Result<std::process::Child>)> = (0..total)
        .map(|index| {
            let shard = ShardSpec { index, total };
            let child = Command::new(&exe)
                .args(args(shard))
                .env("TWIG_NUM_PROCS", "1")
                .spawn();
            (shard, child)
        })
        .collect();
    children
        .into_iter()
        .map(|(shard, child)| {
            let status = match child {
                Ok(mut child) => child.wait().map_err(|e| format!("wait: {e}")),
                Err(e) => Err(format!("{e}")),
            };
            WorkerOutcome {
                shard,
                status: status.map_err(|e| e.to_string()),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_renders_shard_specs() {
        let shard = ShardSpec::parse("2/3").unwrap();
        assert_eq!(shard, ShardSpec { index: 2, total: 3 });
        assert_eq!(shard.to_arg(), "2/3");
        assert!(ShardSpec::parse("3/3").is_err(), "index out of range");
        assert!(ShardSpec::parse("0/0").is_err(), "zero shards");
        assert!(ShardSpec::parse("1").is_err(), "missing slash");
        assert!(ShardSpec::parse("a/b").is_err(), "not numbers");
    }

    #[test]
    fn ownership_partitions_every_index_exactly_once() {
        let total = 3;
        for task in 0..100 {
            let owners: Vec<usize> = (0..total)
                .filter(|&i| ShardSpec { index: i, total }.owns(task))
                .collect();
            assert_eq!(owners.len(), 1, "task {task} must have one owner");
            assert_eq!(owners[0], task % total);
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let shard = ShardSpec { index: 0, total: 1 };
        assert!((0..50).all(|t| shard.owns(t)));
    }
}
