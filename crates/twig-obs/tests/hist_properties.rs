//! Property tests for `Hist64` quantiles against an exact reference.
//!
//! The histogram's documented contract: `percentile(num, den)` returns
//! the upper bound of the log2 bucket the quantile's rank lands in,
//! clamped to the observed `[min, max]` — so it never under-reports the
//! exact quantile and over-reports by at most one bucket width (a factor
//! of 2). The reference below computes the exact rank statistic from the
//! sorted sample list; the properties pin the bracket on adversarial
//! distributions (bimodal tails, constants, powers of two straddling
//! bucket boundaries), with the fleet's tail percentile (p99.9) held to
//! the same contract as the older p50/p90/p99.

use twig_obs::Hist64;
use twig_proptest::prelude::*;

/// The exact `num/den` quantile under the histogram's rank convention:
/// the `ceil(count * num / den)`-th smallest sample (rank floored at 1).
fn exact_quantile(sorted: &[u64], num: u64, den: u64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((sorted.len() as u64 * num).div_ceil(den)).max(1);
    sorted[(rank - 1) as usize]
}

/// Asserts the bracket `exact <= approx <= 2 * exact` (with equality at
/// zero) for one quantile of one sample set.
fn assert_brackets(sorted: &[u64], hist: &Hist64, num: u64, den: u64) -> Result<(), TestCaseError> {
    let exact = exact_quantile(sorted, num, den);
    let approx = hist.percentile(num, den);
    prop_assert!(
        approx >= exact,
        "p{num}/{den} under-reports: approx {approx} < exact {exact}"
    );
    let ceiling = if exact == 0 {
        0
    } else {
        exact.saturating_mul(2).saturating_sub(1)
    };
    prop_assert!(
        approx <= ceiling.max(exact),
        "p{num}/{den} over-reports beyond one bucket: approx {approx}, exact {exact}"
    );
    Ok(())
}

const QUANTILES: [(u64, u64); 4] = [(50, 100), (90, 100), (99, 100), (999, 1000)];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary samples: every reported quantile brackets the exact one
    /// from above, within a factor of two.
    #[test]
    fn quantiles_bracket_the_exact_rank_statistic(
        samples in prop::collection::vec(0u64..u64::MAX, 1..300),
    ) {
        let mut hist = Hist64::new();
        for &v in &samples {
            hist.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for (num, den) in QUANTILES {
            assert_brackets(&sorted, &hist, num, den)?;
        }
    }

    /// Adversarial bimodal tail: a large body of small latencies plus a
    /// sliver of huge outliers — the shape that motivates p99.9. The
    /// bracket must hold, and p99.9 must flip to the outlier mode exactly
    /// when the outliers cross the 1-in-1000 rank.
    #[test]
    fn bimodal_tails_bracket_and_order(
        body in prop::collection::vec(1u64..64, 100..1200),
        outliers in prop::collection::vec((1u64 << 32)..(1u64 << 48), 0..8),
    ) {
        let mut hist = Hist64::new();
        let mut samples: Vec<u64> = body.clone();
        samples.extend(outliers.iter().copied());
        for &v in &samples {
            hist.record(v);
        }
        samples.sort_unstable();
        for (num, den) in QUANTILES {
            assert_brackets(&samples, &hist, num, den)?;
        }
        // Quantiles are monotone in the rank and confined to [min, max].
        let (p50, p90) = (hist.percentile(50, 100), hist.percentile(90, 100));
        let (p99, p999) = (hist.percentile(99, 100), hist.percentile(999, 1000));
        prop_assert!(p50 <= p90 && p90 <= p99 && p99 <= p999);
        prop_assert!(p999 <= *samples.last().unwrap());
        prop_assert!(p50 >= samples[0]);
    }

    /// Powers of two sit exactly on bucket boundaries — the worst case
    /// for an off-by-one in bucket indexing. A constant stream of any
    /// such value must report itself at every quantile.
    #[test]
    fn constant_streams_report_the_constant(
        shift in 0u32..63,
        count in 1usize..2000,
    ) {
        let value = 1u64 << shift;
        let mut hist = Hist64::new();
        for _ in 0..count {
            hist.record(value);
        }
        for (num, den) in QUANTILES {
            prop_assert_eq!(hist.percentile(num, den), value, "2^{} x{}", shift, count);
        }
    }

    /// The serialized snapshot carries the same quantiles the live
    /// histogram reports (p999 included — the additive v1.2 field).
    #[test]
    fn snapshot_quantiles_match_live_histogram(
        samples in prop::collection::vec(0u64..(1u64 << 52), 1..200),
    ) {
        let mut hist = Hist64::new();
        for &v in &samples {
            hist.record(v);
        }
        let snap = hist.snapshot("lat");
        prop_assert_eq!(snap.p50, hist.percentile(50, 100));
        prop_assert_eq!(snap.p90, hist.percentile(90, 100));
        prop_assert_eq!(snap.p99, hist.percentile(99, 100));
        prop_assert_eq!(snap.p999, hist.percentile(999, 1000));
    }
}
