//! The observability layer: structured metrics, stage tracing, and run
//! telemetry for the Twig harness — zero-cost when off.
//!
//! Twig's evaluation hinges on per-component frontend telemetry (BTB
//! MPKI, FTQ occupancy, prefetch timeliness, stall attribution). This
//! crate gives every component one way to expose those numbers:
//!
//! * [`MetricsRegistry`] — typed counters and log2-bucketed fixed-size
//!   histograms. Registration allocates once at construction; the hot
//!   loop records through integer handles ([`CounterId`], [`HistId`])
//!   with no allocation and no hashing. [`MetricsSnapshot`] freezes the
//!   registry into a name-sorted, deterministic form serialized to
//!   `results/metrics/<app>_<config>.json`.
//! * [`TraceRing`] — a sampled bounded ring buffer of span events
//!   ([`TraceEvent`]) over the decoupled-frontend stages, exportable as
//!   chrome://tracing JSON ([`chrome_trace_json`]).
//! * [`diff`] — structural comparison of two metrics snapshots (the
//!   `twig-cli metrics diff` subcommand).
//! * [`schema`] — a minimal JSON-schema-subset validator used by CI to
//!   pin the exported metrics/trace formats.
//!
//! Tiering mirrors the integrity layer and is selected via
//! [`ObsConfig`] or the `TWIG_OBS` environment variable (parsed through
//! the unified `twig_types::HarnessConfig`):
//!
//! * `off` — the default; instrumentation compiles to one never-taken
//!   branch per cycle.
//! * `counters` — counters and histograms; deterministic for a fixed
//!   seed regardless of thread count (each simulation is
//!   single-threaded; the registry holds no clocks and no addresses).
//! * `trace[=N]` — counters plus span events, sampling one event in `N`
//!   (default 1) into the bounded ring.
//!
//! # Examples
//!
//! ```
//! use twig_obs::{MetricsRegistry, ObsLevel};
//!
//! let mut reg = MetricsRegistry::new();
//! let hits = reg.counter("btb.hits");
//! let occ = reg.histogram("ftq.occupancy");
//! reg.inc(hits, 3);
//! reg.record(occ, 17);
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("btb.hits"), Some(3));
//! assert_eq!(ObsLevel::parse("trace=8").unwrap(), ObsLevel::Trace { sample: 8 });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attr;
pub mod diff;
pub mod metrics;
pub mod schema;
pub mod timeseries;
pub mod trace;

pub use attr::{
    folded_stacks, AttrConfig, AttrEntry, AttrKey, AttrTable, AttributionSnapshot, MissKind,
    ATTRIBUTION_VERSION, DEFAULT_ATTR_K,
};
pub use diff::{diff_snapshots, MetricsDiff};
pub use metrics::{
    CounterId, Hist64, HistId, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
    METRICS_VERSION,
};
pub use schema::{validate, SchemaError};
pub use timeseries::{
    detect_phases, diff_timelines, parse_window_spec, window_spec_text, DerivedWindow,
    PhaseSegment, TimeSeriesRing, TimelineDiff, TimelineSnapshot, TrackId, TrackKind,
    TrackSnapshot, WindowSnapshot, DEFAULT_TIMELINE_CAPACITY, TIMELINE_VERSION,
};
pub use trace::{
    chrome_trace_json, trace_pid, Stage, TraceEvent, TraceRing, DEFAULT_TRACE_CAPACITY,
};

use twig_serde::{Deserialize, Serialize};

/// A failed metrics/trace/attribution export or import: the document
/// could not be serialized or parsed.
///
/// Carries *what* was being exported and the serializer's reason, so
/// callers (the CLI, the harness telemetry writer) can surface it as a
/// typed error instead of panicking mid-run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExportError {
    what: &'static str,
    detail: String,
}

impl ExportError {
    /// An export error for document kind `what`.
    pub fn new(what: &'static str, detail: impl Into<String>) -> Self {
        ExportError {
            what,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for ExportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.what, self.detail)
    }
}

impl std::error::Error for ExportError {}

/// How much the observability layer records.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum ObsLevel {
    /// Nothing: the hot loop pays only one never-taken branch per cycle.
    #[default]
    Off,
    /// Counters and histograms (allocation-free in the hot loop).
    Counters,
    /// Counters plus span events sampled one-in-`sample` into the ring.
    Trace {
        /// Record every `sample`-th span event (min 1 = every event).
        sample: u64,
    },
}

impl ObsLevel {
    /// Whether counters/histograms are recorded at this tier.
    pub fn counters(&self) -> bool {
        !matches!(self, ObsLevel::Off)
    }

    /// The trace sampling period; `None` when tracing is off.
    pub fn trace_sample(&self) -> Option<u64> {
        match *self {
            ObsLevel::Trace { sample } => Some(sample.max(1)),
            _ => None,
        }
    }

    /// Parses `off` | `counters` | `trace` | `trace=N`.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text.trim() {
            "off" | "" => Ok(ObsLevel::Off),
            "counters" => Ok(ObsLevel::Counters),
            "trace" => Ok(ObsLevel::Trace { sample: 1 }),
            other => {
                if let Some(n) = other.strip_prefix("trace=") {
                    let sample: u64 = n
                        .parse()
                        .map_err(|_| format!("bad trace sample period {n:?} in {other:?}"))?;
                    if sample == 0 {
                        return Err("trace sample period must be >= 1".into());
                    }
                    Ok(ObsLevel::Trace { sample })
                } else {
                    Err(format!(
                        "unknown observability level {other:?} \
                         (expected off | counters | trace[=N])"
                    ))
                }
            }
        }
    }

    /// Stable textual form (round-trips through [`ObsLevel::parse`]).
    pub fn as_text(&self) -> String {
        match *self {
            ObsLevel::Off => "off".to_string(),
            ObsLevel::Counters => "counters".to_string(),
            ObsLevel::Trace { sample: 1 } => "trace".to_string(),
            ObsLevel::Trace { sample } => format!("trace={sample}"),
        }
    }
}

/// Observability knobs, carried inside the simulator configuration.
///
/// `Copy` on purpose (the owning `SimConfig` is `Copy`); the actual
/// recording state lives behind an `Option<Box<_>>` in the simulator so
/// the `off` tier allocates nothing.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ObsConfig {
    /// Recording tier.
    pub level: ObsLevel,
    /// Trace ring capacity in events (oldest events are overwritten).
    pub trace_capacity: u32,
    /// Per-branch cycle attribution knobs (`TWIG_OBS_ATTR`), orthogonal
    /// to the tier: enabling attribution alone still creates recording
    /// state (and thus a metrics snapshot).
    pub attr: AttrConfig,
    /// Windowed time-series sampling period (`TWIG_OBS_WINDOW`), in
    /// retired instructions per window; `None` = off. Orthogonal to the
    /// tier *and* to [`ObsConfig::recording`]: windowing samples the
    /// live statistics read-only, so it composes with batched idle-cycle
    /// stepping and preserves bit-identical simulation statistics.
    pub window: Option<u64>,
}

impl ObsConfig {
    /// Observability disabled.
    pub fn off() -> Self {
        ObsConfig {
            level: ObsLevel::Off,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
            attr: AttrConfig::off(),
            window: None,
        }
    }

    /// Counters and histograms only.
    pub fn counters() -> Self {
        ObsConfig {
            level: ObsLevel::Counters,
            ..ObsConfig::off()
        }
    }

    /// Counters plus span tracing, sampling one event in `sample`.
    pub fn trace(sample: u64) -> Self {
        ObsConfig {
            level: ObsLevel::Trace {
                sample: sample.max(1),
            },
            ..ObsConfig::off()
        }
    }

    /// Windowed time-series sampling every `window` retired instructions
    /// (floored to 1), leaving the recording tier off.
    pub fn windowed(window: u64) -> Self {
        ObsConfig {
            window: Some(window.max(1)),
            ..ObsConfig::off()
        }
    }

    /// This configuration with the timeline window set per `window`.
    pub fn with_window(self, window: Option<u64>) -> Self {
        ObsConfig { window, ..self }
    }

    /// Stable textual form of the window knob (`TWIG_OBS_WINDOW`
    /// grammar), for the run manifest's effective-configuration dump.
    pub fn window_text(&self) -> String {
        timeseries::window_spec_text(self.window)
    }

    /// Builds from the environment (`TWIG_OBS`) via the unified harness
    /// configuration.
    pub fn from_env() -> Result<Self, String> {
        Self::from_harness(twig_types::HarnessConfig::global())
    }

    /// Builds from an already-parsed harness configuration (the tier
    /// and attribution grammars are owned here, not in `twig-types`).
    pub fn from_harness(harness: &twig_types::HarnessConfig) -> Result<Self, String> {
        let level =
            ObsLevel::parse(&harness.obs.value).map_err(|e| format!("TWIG_OBS: {e}"))?;
        let attr = AttrConfig::parse(&harness.obs_attr.value)
            .map_err(|e| format!("TWIG_OBS_ATTR: {e}"))?;
        let window = timeseries::parse_window_spec(&harness.obs_window.value)
            .map_err(|e| format!("TWIG_OBS_WINDOW: {e}"))?;
        Ok(ObsConfig {
            level,
            attr,
            window,
            ..ObsConfig::off()
        })
    }

    /// This configuration with attribution enabled per `attr`.
    pub fn with_attr(self, attr: AttrConfig) -> Self {
        ObsConfig { attr, ..self }
    }

    /// Whether any recording state exists at all (counters tier or
    /// attribution enabled) — the gate for `Option<Box<ObsState>>`.
    pub fn recording(&self) -> bool {
        self.level.counters() || self.attr.enabled
    }

    /// Validates the knobs (called from the simulator's config validation).
    pub fn validate(&self) -> Result<(), String> {
        if let ObsLevel::Trace { sample } = self.level {
            if sample == 0 {
                return Err("obs trace sample period must be >= 1".into());
            }
        }
        if self.trace_capacity == 0 {
            return Err("obs trace_capacity must be >= 1".into());
        }
        if self.window == Some(0) {
            return Err("obs window size must be >= 1".into());
        }
        self.attr.validate()
    }
}

impl Default for ObsConfig {
    /// The effective process-wide configuration: an explicit override
    /// installed via [`set_global_override`] wins over the environment
    /// (`TWIG_OBS`), which wins over `off` — the harness-wide
    /// *explicit arg > env > default* precedence rule.
    ///
    /// # Panics
    ///
    /// Panics if `TWIG_OBS` is malformed — a misconfigured run must not
    /// silently fall back to `off`.
    fn default() -> Self {
        if let Some(config) = GLOBAL_OVERRIDE.get() {
            return *config;
        }
        ObsConfig::from_env().expect("invalid observability environment")
    }
}

static GLOBAL_OVERRIDE: std::sync::OnceLock<ObsConfig> = std::sync::OnceLock::new();

/// Pins the process-wide observability configuration, overriding
/// `TWIG_OBS` for every subsequent `ObsConfig::default()` (binaries call
/// this when the user passes an explicit `--obs` flag). The first caller
/// wins; later calls are ignored, like the integrity dump-dir override.
pub fn set_global_override(config: ObsConfig) {
    let _ = GLOBAL_OVERRIDE.set(config);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_grammar_round_trips() {
        for (text, level) in [
            ("off", ObsLevel::Off),
            ("counters", ObsLevel::Counters),
            ("trace", ObsLevel::Trace { sample: 1 }),
            ("trace=64", ObsLevel::Trace { sample: 64 }),
        ] {
            assert_eq!(ObsLevel::parse(text).unwrap(), level, "{text}");
            assert_eq!(ObsLevel::parse(&level.as_text()).unwrap(), level);
        }
        assert_eq!(ObsLevel::parse("  counters  ").unwrap(), ObsLevel::Counters);
        assert_eq!(ObsLevel::parse("").unwrap(), ObsLevel::Off);
    }

    #[test]
    fn level_grammar_rejects_garbage() {
        assert!(ObsLevel::parse("verbose").unwrap_err().contains("verbose"));
        assert!(ObsLevel::parse("trace=0").is_err());
        assert!(ObsLevel::parse("trace=lots").is_err());
    }

    #[test]
    fn config_tiers_and_validation() {
        assert_eq!(ObsConfig::off().level, ObsLevel::Off);
        assert!(ObsConfig::counters().level.counters());
        assert_eq!(ObsConfig::trace(0).level.trace_sample(), Some(1));
        assert!(ObsConfig::off().validate().is_ok());
        let bad = ObsConfig {
            trace_capacity: 0,
            ..ObsConfig::counters()
        };
        assert!(bad.validate().is_err());
        // Windowing is orthogonal: it neither creates recording state
        // nor requires a tier.
        let windowed = ObsConfig::windowed(4096);
        assert_eq!(windowed.window, Some(4096));
        assert!(!windowed.recording());
        assert_eq!(windowed.window_text(), "window=4096");
        assert_eq!(ObsConfig::off().window_text(), "off");
        assert!(windowed.validate().is_ok());
        let bad = ObsConfig::off().with_window(Some(0));
        assert!(bad.validate().is_err());
    }

    #[test]
    fn recording_gate_covers_attr_only_runs() {
        assert!(!ObsConfig::off().recording());
        assert!(ObsConfig::counters().recording());
        assert!(ObsConfig::off().with_attr(AttrConfig::on()).recording());
        let bad = ObsConfig::counters().with_attr(AttrConfig {
            sample: 0,
            ..AttrConfig::on()
        });
        assert!(bad.validate().is_err());
    }

    #[test]
    fn from_harness_parses_the_tier() {
        let harness = twig_types::HarnessConfig::from_lookup(|var| match var {
            "TWIG_OBS" => Some("trace=4".to_string()),
            "TWIG_OBS_ATTR" => Some("k=32,sample=2".to_string()),
            "TWIG_OBS_WINDOW" => Some("window=8192".to_string()),
            _ => None,
        })
        .unwrap();
        let obs = ObsConfig::from_harness(&harness).unwrap();
        assert_eq!(obs.level, ObsLevel::Trace { sample: 4 });
        assert!(obs.attr.enabled);
        assert_eq!((obs.attr.k, obs.attr.sample), (32, 2));
        assert_eq!(obs.window, Some(8192));

        let harness = twig_types::HarnessConfig::from_lookup(|var| match var {
            "TWIG_OBS_WINDOW" => Some("window=0".to_string()),
            _ => None,
        })
        .unwrap();
        let err = ObsConfig::from_harness(&harness).unwrap_err();
        assert!(err.contains("TWIG_OBS_WINDOW"), "{err}");

        let harness = twig_types::HarnessConfig::from_lookup(|var| match var {
            "TWIG_OBS_ATTR" => Some("k=zero".to_string()),
            _ => None,
        })
        .unwrap();
        let err = ObsConfig::from_harness(&harness).unwrap_err();
        assert!(err.contains("TWIG_OBS_ATTR"), "{err}");

        let harness = twig_types::HarnessConfig::from_lookup(|var| match var {
            "TWIG_OBS" => Some("loud".to_string()),
            _ => None,
        })
        .unwrap();
        let err = ObsConfig::from_harness(&harness).unwrap_err();
        assert!(err.contains("TWIG_OBS"), "{err}");
    }
}
