//! Span-style stage tracing: a sampled, bounded ring buffer of frontend
//! events exportable as chrome://tracing JSON.
//!
//! The simulator emits one [`TraceEvent`] per interesting stage span
//! (a fetch-block's life in the FTQ, a prefetch burst, a resteer
//! penalty). The ring keeps the **last** `capacity` sampled events, so a
//! long run's trace shows its tail — the steady state — rather than its
//! warm-up. Sampling (`trace=N`) keeps one event in `N` per ring, making
//! the cost of the trace tier tunable independently of its window.
//!
//! The export format is the Trace Event Format's complete-event (`ph:
//! "X"`) flavor, with the simulated cycle standing in for microseconds,
//! so `chrome://tracing` / Perfetto render the frontend pipeline
//! directly.

use twig_serde::Value;

use crate::ExportError;

/// Default ring capacity, in events.
pub const DEFAULT_TRACE_CAPACITY: u32 = 65_536;

/// Pipeline stage a span belongs to; becomes the trace's thread lane.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Stage {
    /// Branch-prediction unit walking basic blocks into the FTQ.
    Predict,
    /// Instruction fetch draining the FTQ.
    Fetch,
    /// Decode-stage activity (decode-time resteers).
    Decode,
    /// BTB/cache prefetch activity.
    Prefetch,
    /// Retirement.
    Commit,
}

impl Stage {
    /// Every stage, in pipeline (lane) order.
    pub const ALL: [Stage; 5] = [
        Stage::Predict,
        Stage::Fetch,
        Stage::Decode,
        Stage::Prefetch,
        Stage::Commit,
    ];

    /// Stable lower-case name (the trace's `cat` field).
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Predict => "predict",
            Stage::Fetch => "fetch",
            Stage::Decode => "decode",
            Stage::Prefetch => "prefetch",
            Stage::Commit => "commit",
        }
    }

    /// The lane (trace `tid`) this stage renders on, in pipeline order.
    pub fn lane(&self) -> u32 {
        match self {
            Stage::Predict => 0,
            Stage::Fetch => 1,
            Stage::Decode => 2,
            Stage::Prefetch => 3,
            Stage::Commit => 4,
        }
    }
}

/// One complete span: a named interval of simulated cycles on a stage.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// The pipeline stage (render lane).
    pub stage: Stage,
    /// Event name (static so recording never allocates).
    pub name: &'static str,
    /// First cycle of the span.
    pub start_cycle: u64,
    /// Span length in cycles (0 renders as an instant).
    pub duration: u64,
}

/// A sampled bounded ring of [`TraceEvent`]s (keeps the most recent).
#[derive(Clone, Debug)]
pub struct TraceRing {
    events: Vec<TraceEvent>,
    /// Next slot to overwrite once the ring is full.
    head: usize,
    capacity: usize,
    /// Keep one event in `sample`.
    sample: u64,
    /// Events offered to the ring (sampled or not).
    seen: u64,
}

impl TraceRing {
    /// An empty ring keeping the last `capacity` of every `sample`-th
    /// event (both floored to 1).
    pub fn new(capacity: u32, sample: u64) -> Self {
        let capacity = capacity.max(1) as usize;
        TraceRing {
            events: Vec::with_capacity(capacity),
            head: 0,
            capacity,
            sample: sample.max(1),
            seen: 0,
        }
    }

    /// Offers one span to the ring (hot-path: integer math plus at most
    /// one slot write; the only allocation is the ring filling up to
    /// capacity the first time).
    #[inline]
    pub fn record(&mut self, stage: Stage, name: &'static str, start_cycle: u64, duration: u64) {
        let index = self.seen;
        self.seen += 1;
        if !index.is_multiple_of(self.sample) {
            return;
        }
        let event = TraceEvent {
            stage,
            name,
            start_cycle,
            duration,
        };
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.events[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Events offered to the ring over its lifetime.
    pub fn total_seen(&self) -> u64 {
        self.seen
    }

    /// Spans offered but *not* in the ring — sampled out or overwritten
    /// after the ring filled. A truncated trace is no longer silent:
    /// this surfaces as the `obs.trace.dropped_spans` counter in the
    /// metrics snapshot and as `droppedSpans` in the chrome-trace
    /// export's `otherData`.
    pub fn dropped_spans(&self) -> u64 {
        self.seen - self.events.len() as u64
    }

    /// Sampled events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The held events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[self.head..]);
        out.extend_from_slice(&self.events[..self.head]);
        out
    }
}

/// Deterministic per-cell process id for chrome-trace exports: a pure
/// FNV-1a fold of the cell label, so traces from different cells (or
/// `TWIG_NUM_PROCS` shards) merge into distinct process rows in
/// chrome://tracing while staying byte-identical run-to-run.
pub fn trace_pid(label: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in label.as_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    // Folded into a readable range; chrome://tracing treats pid as an
    // opaque row key, only collisions between cells would matter.
    hash % 1_000_000
}

/// One `ph: "M"` metadata event (Trace Event Format §Metadata Events).
fn metadata_event(kind: &str, pid: u64, tid: u64, name: &str) -> Value {
    Value::Object(vec![
        ("name".to_string(), Value::Str(kind.to_string())),
        ("ph".to_string(), Value::Str("M".to_string())),
        ("pid".to_string(), Value::UInt(pid)),
        ("tid".to_string(), Value::UInt(tid)),
        (
            "args".to_string(),
            Value::Object(vec![("name".to_string(), Value::Str(name.to_string()))]),
        ),
    ])
}

/// Renders events as chrome://tracing JSON (Trace Event Format,
/// complete-event flavor; `ts`/`dur` carry simulated cycles).
/// `dropped_spans` ([`TraceRing::dropped_spans`]) is recorded in the
/// export's `otherData` so truncated traces announce themselves.
///
/// The export opens with `ph: "M"` metadata events — one `process_name`
/// carrying the cell label and one `thread_name` per stage lane — so
/// merged multi-cell / multi-process traces stay legible: every row is
/// named after its cell and pipeline stage instead of bare integers.
/// All events share a deterministic [`trace_pid`] derived from the label.
///
/// # Errors
///
/// Returns an [`ExportError`] if the document cannot be serialized.
pub fn chrome_trace_json(
    label: &str,
    events: &[TraceEvent],
    dropped_spans: u64,
) -> Result<String, ExportError> {
    let pid = trace_pid(label);
    let mut trace_events: Vec<Value> = Vec::with_capacity(events.len() + 1 + Stage::ALL.len());
    trace_events.push(metadata_event("process_name", pid, 0, label));
    for stage in Stage::ALL {
        trace_events.push(metadata_event(
            "thread_name",
            pid,
            stage.lane() as u64,
            stage.name(),
        ));
    }
    trace_events.extend(events.iter().map(|e| {
        Value::Object(vec![
            ("name".to_string(), Value::Str(e.name.to_string())),
            ("cat".to_string(), Value::Str(e.stage.name().to_string())),
            ("ph".to_string(), Value::Str("X".to_string())),
            ("ts".to_string(), Value::UInt(e.start_cycle)),
            ("dur".to_string(), Value::UInt(e.duration)),
            ("pid".to_string(), Value::UInt(pid)),
            ("tid".to_string(), Value::UInt(e.stage.lane() as u64)),
        ])
    }));
    let doc = Value::Object(vec![
        (
            "otherData".to_string(),
            Value::Object(vec![
                ("label".to_string(), Value::Str(label.to_string())),
                ("droppedSpans".to_string(), Value::UInt(dropped_spans)),
            ]),
        ),
        ("traceEvents".to_string(), Value::Array(trace_events)),
    ]);
    twig_serde_json::to_string_pretty(&doc)
        .map_err(|e| ExportError::new("chrome trace", e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_most_recent_events() {
        let mut ring = TraceRing::new(4, 1);
        for i in 0..10u64 {
            ring.record(Stage::Fetch, "blk", i, 1);
        }
        assert_eq!(ring.total_seen(), 10);
        assert_eq!(ring.len(), 4);
        let starts: Vec<u64> = ring.events().iter().map(|e| e.start_cycle).collect();
        assert_eq!(starts, vec![6, 7, 8, 9]);
    }

    #[test]
    fn sampling_keeps_one_in_n() {
        let mut ring = TraceRing::new(100, 4);
        for i in 0..17u64 {
            ring.record(Stage::Predict, "bb", i, 0);
        }
        let starts: Vec<u64> = ring.events().iter().map(|e| e.start_cycle).collect();
        assert_eq!(starts, vec![0, 4, 8, 12, 16]);
    }

    fn field_of(event: &Value, key: &str) -> Value {
        event
            .as_object()
            .unwrap()
            .iter()
            .find(|(name, _)| name == key)
            .map(|(_, v)| v.clone())
            .unwrap()
    }

    #[test]
    fn chrome_export_is_valid_json_with_one_row_per_event() {
        let mut ring = TraceRing::new(8, 1);
        ring.record(Stage::Fetch, "blk", 5, 3);
        ring.record(Stage::Prefetch, "burst", 6, 1);
        let json = chrome_trace_json("kafka/twig", &ring.events(), ring.dropped_spans()).unwrap();
        let doc: Value = twig_serde_json::from_str(&json).unwrap();
        let events = doc
            .as_object()
            .unwrap()
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .and_then(|(_, v)| v.as_array())
            .unwrap();
        // 1 process_name + 5 thread_name metadata events, then the spans.
        assert_eq!(events.len(), 1 + Stage::ALL.len() + 2);
        let first_span = &events[1 + Stage::ALL.len()];
        assert_eq!(field_of(first_span, "ph").as_str(), Some("X"));
        assert_eq!(field_of(first_span, "ts").as_u64(), Some(5));
        assert_eq!(field_of(first_span, "dur").as_u64(), Some(3));
        assert_eq!(field_of(first_span, "cat").as_str(), Some("fetch"));
        assert_eq!(
            field_of(first_span, "pid").as_u64(),
            Some(trace_pid("kafka/twig"))
        );
    }

    #[test]
    fn chrome_export_opens_with_naming_metadata() {
        let mut ring = TraceRing::new(8, 1);
        ring.record(Stage::Commit, "retire", 9, 0);
        let json = chrome_trace_json("kafka/twig", &ring.events(), 0).unwrap();
        let doc: Value = twig_serde_json::from_str(&json).unwrap();
        let events = doc
            .as_object()
            .unwrap()
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .and_then(|(_, v)| v.as_array())
            .unwrap();
        let pid = trace_pid("kafka/twig");
        let arg_name = |event: &Value| {
            field_of(event, "args")
                .as_object()
                .unwrap()
                .iter()
                .find(|(k, _)| k == "name")
                .and_then(|(_, v)| v.as_str().map(str::to_string))
                .unwrap()
        };
        let process = &events[0];
        assert_eq!(field_of(process, "ph").as_str(), Some("M"));
        assert_eq!(field_of(process, "name").as_str(), Some("process_name"));
        assert_eq!(field_of(process, "pid").as_u64(), Some(pid));
        assert_eq!(arg_name(process), "kafka/twig");
        for (i, stage) in Stage::ALL.iter().enumerate() {
            let thread = &events[1 + i];
            assert_eq!(field_of(thread, "ph").as_str(), Some("M"));
            assert_eq!(field_of(thread, "name").as_str(), Some("thread_name"));
            assert_eq!(field_of(thread, "tid").as_u64(), Some(stage.lane() as u64));
            assert_eq!(arg_name(thread), stage.name());
        }
        // Distinct labels get distinct process rows; the pid is a pure
        // function of the label.
        assert_ne!(trace_pid("kafka/twig"), trace_pid("tomcat/twig"));
        assert_eq!(trace_pid("kafka/twig"), pid);
    }

    #[test]
    fn dropped_spans_count_sampled_out_and_overwritten() {
        // Capacity 2, sample 2: of 10 offers, 5 are sampled in, 3 of
        // those are overwritten, so 8 spans total are dropped.
        let mut ring = TraceRing::new(2, 2);
        for i in 0..10u64 {
            ring.record(Stage::Fetch, "blk", i, 1);
        }
        assert_eq!(ring.total_seen(), 10);
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped_spans(), 8);
        let json = chrome_trace_json("x", &ring.events(), ring.dropped_spans()).unwrap();
        let doc: Value = twig_serde_json::from_str(&json).unwrap();
        let other = doc
            .as_object()
            .unwrap()
            .iter()
            .find(|(k, _)| k == "otherData")
            .and_then(|(_, v)| v.as_object().map(|o| o.to_vec()))
            .unwrap();
        let dropped = other
            .iter()
            .find(|(k, _)| k == "droppedSpans")
            .and_then(|(_, v)| v.as_u64());
        assert_eq!(dropped, Some(8));
    }

    #[test]
    fn zero_capacity_and_sample_are_floored() {
        let mut ring = TraceRing::new(0, 0);
        ring.record(Stage::Commit, "retire", 1, 0);
        ring.record(Stage::Commit, "retire", 2, 0);
        assert_eq!(ring.len(), 1);
    }
}
