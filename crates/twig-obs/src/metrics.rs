//! The typed metrics registry: counters and log2-bucketed histograms.
//!
//! Components register their metrics once at construction time (the only
//! allocations) and record through integer handles in the hot loop — an
//! index into a flat `Vec`, no hashing, no allocation, no locks (each
//! simulation is single-threaded). [`MetricsRegistry::snapshot`] freezes
//! the registry into a deterministic, name-sorted [`MetricsSnapshot`]
//! that serializes to the `results/metrics/*.json` files.
//!
//! Determinism contract: a snapshot contains nothing environmental — no
//! wall-clock times, no addresses, no thread ids — so for a fixed seed
//! the serialized JSON is bit-identical run-to-run and across
//! `TWIG_NUM_THREADS` settings.

use twig_serde::{Deserialize, Serialize};

use crate::ExportError;

/// Metrics snapshot format version; bump when the schema changes.
///
/// Still 1: the v1.1 percentile summaries (`p50`/`p90`/`p99` per
/// histogram) and the v1.2 tail percentile (`p999`) are strictly
/// additive — v1.0/v1.1 snapshots parse and validate unchanged, with
/// absent percentiles reading as 0.
pub const METRICS_VERSION: u32 = 1;

/// Handle to a registered counter (index into the registry; `Copy` so
/// components can store it in hot-loop state).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CounterId(u32);

/// Handle to a registered histogram.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HistId(u32);

/// A fixed-size log2-bucketed histogram of `u64` samples.
///
/// Bucket 0 counts zero-valued samples; bucket `k` (1..=64) counts
/// samples with `2^(k-1) <= v < 2^k`. Recording is branch-light integer
/// arithmetic on a flat array — no allocation ever.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Hist64 {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Hist64 {
    fn default() -> Self {
        Hist64 {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// The bucket index a value lands in (0 for 0, else `floor(log2(v)) + 1`).
#[inline]
pub(crate) fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

impl Hist64 {
    /// An empty histogram.
    pub fn new() -> Self {
        Hist64::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (wrapping).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The approximate `num/den`-quantile: the upper bound of the log2
    /// bucket the quantile's rank lands in, clamped to the observed
    /// `[min, max]` range (0 when empty). Deterministic integer math —
    /// the error is at most one bucket width (a factor of 2).
    pub fn percentile(&self, num: u64, den: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (self.count * num).div_ceil(den).max(1);
        let mut cumulative = 0u64;
        for (i, &count) in self.buckets.iter().enumerate() {
            cumulative += count;
            if cumulative >= rank {
                let hi = if i == 0 {
                    0
                } else if i == 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                return hi.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Freezes into the serializable form (non-empty buckets only).
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(i, &count)| BucketCount {
                lo: if i == 0 { 0 } else { 1u64 << (i - 1) },
                hi: if i == 0 {
                    0
                } else if i == 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                },
                count,
            })
            .collect();
        HistogramSnapshot {
            name: name.to_string(),
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            p50: self.percentile(50, 100),
            p90: self.percentile(90, 100),
            p99: self.percentile(99, 100),
            p999: self.percentile(999, 1000),
            buckets,
        }
    }
}

/// One named counter value in a snapshot.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct CounterEntry {
    /// Dotted metric name (`component.metric`).
    pub name: String,
    /// The counter's value.
    pub value: u64,
}

/// One log2 bucket of a [`HistogramSnapshot`]: `lo <= v <= hi`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct BucketCount {
    /// Smallest value in the bucket.
    pub lo: u64,
    /// Largest value in the bucket (inclusive).
    pub hi: u64,
    /// Samples that landed here.
    pub count: u64,
}

/// A frozen histogram: summary statistics plus non-empty log2 buckets.
#[derive(Clone, PartialEq, Eq, Debug, Serialize)]
pub struct HistogramSnapshot {
    /// Dotted metric name.
    pub name: String,
    /// Number of samples.
    pub count: u64,
    /// Sum of samples (wrapping).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Approximate median ([`Hist64::percentile`]; 0 when empty).
    pub p50: u64,
    /// Approximate 90th percentile.
    pub p90: u64,
    /// Approximate 99th percentile.
    pub p99: u64,
    /// Approximate 99.9th percentile (v1.2; the request-latency tail the
    /// fleet report tracks).
    pub p999: u64,
    /// Non-empty buckets, ascending.
    pub buckets: Vec<BucketCount>,
}

// Hand-written (instead of derived) so v1.0/v1.1 snapshots — written
// before the additive v1.1 percentile fields and the v1.2 `p999` existed
// — still parse: absent percentiles read as 0 rather than erroring.
impl Deserialize for HistogramSnapshot {
    fn from_value(value: &twig_serde::Value) -> Result<Self, String> {
        let obj = value
            .as_object()
            .ok_or_else(|| format!("expected object for HistogramSnapshot, got {value:?}"))?;
        let optional_u64 = |key: &str| -> Result<u64, String> {
            match obj.iter().find(|(k, _)| k == key) {
                Some((_, v)) => {
                    u64::from_value(v).map_err(|e| format!("HistogramSnapshot.{key}: {e}"))
                }
                None => Ok(0),
            }
        };
        Ok(HistogramSnapshot {
            name: twig_serde::__field(obj, "name", "HistogramSnapshot")?,
            count: twig_serde::__field(obj, "count", "HistogramSnapshot")?,
            sum: twig_serde::__field(obj, "sum", "HistogramSnapshot")?,
            min: twig_serde::__field(obj, "min", "HistogramSnapshot")?,
            max: twig_serde::__field(obj, "max", "HistogramSnapshot")?,
            p50: optional_u64("p50")?,
            p90: optional_u64("p90")?,
            p99: optional_u64("p99")?,
            p999: optional_u64("p999")?,
            buckets: twig_serde::__field(obj, "buckets", "HistogramSnapshot")?,
        })
    }
}

impl HistogramSnapshot {
    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The registry components record into.
///
/// Registration (by name) happens at construction; the hot loop only
/// touches flat vectors through [`CounterId`]/[`HistId`]. Registering an
/// existing name returns the existing handle, so independent components
/// may share a metric deliberately.
#[derive(Clone, Default, Debug)]
pub struct MetricsRegistry {
    counters: Vec<(String, u64)>,
    hists: Vec<(String, Hist64)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Registers (or finds) a counter. Not for the hot loop.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| n == name) {
            return CounterId(i as u32);
        }
        self.counters.push((name.to_string(), 0));
        CounterId((self.counters.len() - 1) as u32)
    }

    /// Registers (or finds) a histogram. Not for the hot loop.
    pub fn histogram(&mut self, name: &str) -> HistId {
        if let Some(i) = self.hists.iter().position(|(n, _)| n == name) {
            return HistId(i as u32);
        }
        self.hists.push((name.to_string(), Hist64::new()));
        HistId((self.hists.len() - 1) as u32)
    }

    /// Adds `by` to a counter (hot-loop safe: one indexed add).
    ///
    /// Saturates at `u64::MAX` instead of wrapping: in pathological
    /// billion-instruction runs a pinned counter is a visible ceiling,
    /// while a silently wrapped one reads as a plausible small number.
    #[inline]
    pub fn inc(&mut self, id: CounterId, by: u64) {
        let slot = &mut self.counters[id.0 as usize].1;
        *slot = slot.saturating_add(by);
    }

    /// Overwrites a counter (for end-of-run mirrors of externally
    /// accumulated statistics).
    #[inline]
    pub fn set(&mut self, id: CounterId, value: u64) {
        self.counters[id.0 as usize].1 = value;
    }

    /// Registers `name` if needed and overwrites it with `value` — the
    /// snapshot-time bridge for stats kept in plain struct fields.
    pub fn set_by_name(&mut self, name: &str, value: u64) {
        let id = self.counter(name);
        self.set(id, value);
    }

    /// Records one histogram sample (hot-loop safe).
    #[inline]
    pub fn record(&mut self, id: HistId, value: u64) {
        self.hists[id.0 as usize].1.record(value);
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0 as usize].1
    }

    /// Freezes the registry into its deterministic serialized form:
    /// entries sorted by name, ties impossible (names are unique).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<CounterEntry> = self
            .counters
            .iter()
            .map(|(name, value)| CounterEntry {
                name: name.clone(),
                value: *value,
            })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        let mut histograms: Vec<HistogramSnapshot> = self
            .hists
            .iter()
            .map(|(name, hist)| hist.snapshot(name))
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot {
            version: METRICS_VERSION,
            counters,
            histograms,
        }
    }
}

/// A frozen, deterministic view of a [`MetricsRegistry`] — the payload
/// of `results/metrics/<app>_<config>.json`.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Format version ([`METRICS_VERSION`]).
    pub version: u32,
    /// All counters, name-sorted.
    pub counters: Vec<CounterEntry>,
    /// All histograms, name-sorted.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// An empty snapshot (current version, no metrics).
    pub fn empty() -> Self {
        MetricsSnapshot {
            version: METRICS_VERSION,
            counters: Vec::new(),
            histograms: Vec::new(),
        }
    }

    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|e| e.name.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].value)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .binary_search_by(|e| e.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.histograms[i])
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns an [`ExportError`] if the document cannot be serialized.
    pub fn to_json(&self) -> Result<String, ExportError> {
        twig_serde_json::to_string_pretty(self)
            .map_err(|e| ExportError::new("metrics snapshot", e.to_string()))
    }

    /// Parses a snapshot back from JSON.
    ///
    /// # Errors
    ///
    /// Returns an [`ExportError`] describing the malformed document.
    pub fn from_json(text: &str) -> Result<Self, ExportError> {
        twig_serde_json::from_str(text)
            .map_err(|e| ExportError::new("metrics snapshot", e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn histogram_snapshot_covers_samples() {
        let mut h = Hist64::new();
        for v in [0u64, 1, 3, 3, 100, u64::MAX] {
            h.record(v);
        }
        let snap = h.snapshot("test");
        assert_eq!(snap.count, 6);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, u64::MAX);
        let total: u64 = snap.buckets.iter().map(|b| b.count).sum();
        assert_eq!(total, 6);
        // The two 3s share the [2,3] bucket.
        let b = snap.buckets.iter().find(|b| b.lo == 2).unwrap();
        assert_eq!((b.hi, b.count), (3, 2));
        // The top bucket is closed at u64::MAX.
        assert_eq!(snap.buckets.last().unwrap().hi, u64::MAX);
    }

    #[test]
    fn empty_histogram_has_zero_min() {
        let snap = Hist64::new().snapshot("empty");
        assert_eq!((snap.count, snap.min, snap.max), (0, 0, 0));
        assert!(snap.buckets.is_empty());
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn registration_is_idempotent() {
        let mut reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        assert_eq!(a, b);
        reg.inc(a, 2);
        reg.inc(b, 3);
        assert_eq!(reg.counter_value(a), 5);
        assert_eq!(reg.histogram("h"), reg.histogram("h"));
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("near-max");
        reg.inc(c, u64::MAX - 1);
        reg.inc(c, 5);
        assert_eq!(reg.counter_value(c), u64::MAX, "overflow must pin, not wrap");
        reg.inc(c, 1);
        assert_eq!(reg.counter_value(c), u64::MAX, "saturated counters stay pinned");
    }

    #[test]
    fn snapshot_is_name_sorted_and_round_trips() {
        let mut reg = MetricsRegistry::new();
        let z = reg.counter("zeta");
        let a = reg.counter("alpha");
        let h = reg.histogram("mid");
        reg.inc(z, 9);
        reg.inc(a, 1);
        reg.record(h, 42);
        reg.set_by_name("mu", 7);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "mu", "zeta"]);
        assert_eq!(snap.counter("zeta"), Some(9));
        assert_eq!(snap.counter("missing"), None);
        assert_eq!(snap.histogram("mid").unwrap().count, 1);

        let json = snap.to_json().unwrap();
        let back = MetricsSnapshot::from_json(&json).unwrap();
        assert_eq!(back, snap);
        // Determinism: serialization is a pure function of the content.
        assert_eq!(json, back.to_json().unwrap());
    }

    #[test]
    fn percentiles_track_the_distribution() {
        let mut h = Hist64::new();
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        let snap = h.snapshot("lat");
        // p50/p90 land in the [8,15] bucket of the 10s; p99/p99.9 in the
        // 1000s' bucket, clamped to the observed max.
        assert_eq!(snap.p50, 15);
        assert_eq!(snap.p90, 15);
        assert_eq!(snap.p99, 1000);
        assert_eq!(snap.p999, 1000);
        assert_eq!(snap.count, 100);
        assert_eq!(snap.max, 1000);
        // A constant distribution reports the constant everywhere.
        let mut c = Hist64::new();
        c.record(7);
        let snap = c.snapshot("const");
        assert_eq!((snap.p50, snap.p90, snap.p99, snap.p999), (7, 7, 7, 7));
        // Empty histogram: all zero.
        let snap = Hist64::new().snapshot("empty");
        assert_eq!((snap.p50, snap.p90, snap.p99, snap.p999), (0, 0, 0, 0));
        // p99.9 separates a 1-in-1000 tail that p99 smears over: 999
        // fast samples (7 = its bucket's upper bound, so the report is
        // exact) and huge outliers.
        let mut t = Hist64::new();
        for _ in 0..999 {
            t.record(7);
        }
        t.record(1 << 40);
        let snap = t.snapshot("tail");
        assert_eq!(snap.p99, 7);
        assert_eq!(snap.p999, 7, "one outlier in 1000 sits above the 99.9th rank");
        t.record(1 << 40);
        let snap = t.snapshot("tail2");
        assert_eq!(snap.p999, 1 << 40, "two outliers in 1001 cross the 99.9th rank");
    }

    #[test]
    fn v1_0_snapshots_without_percentiles_still_parse() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("lat");
        reg.record(h, 42);
        let json = reg.snapshot().to_json().unwrap();
        // Strip the v1.1/v1.2 percentile fields to reconstruct a v1.0
        // document.
        let stripped: String = json
            .lines()
            .filter(|l| {
                let t = l.trim_start();
                !(t.starts_with("\"p50\"")
                    || t.starts_with("\"p90\"")
                    || t.starts_with("\"p99\"")
                    || t.starts_with("\"p999\""))
            })
            .collect::<Vec<_>>()
            .join("\n");
        assert_ne!(stripped, json);
        let back = MetricsSnapshot::from_json(&stripped).unwrap();
        assert_eq!(back.histogram("lat").unwrap().count, 1);
        // Absent percentiles read as 0.
        assert_eq!(back.histogram("lat").unwrap().p50, 0);
        assert_eq!(back.histogram("lat").unwrap().p999, 0);
        // A v1.1 document (has p50/p90/p99, lacks only p999) also parses.
        let v1_1: String = json
            .lines()
            .filter(|l| !l.trim_start().starts_with("\"p999\""))
            .collect::<Vec<_>>()
            .join("\n");
        assert_ne!(v1_1, json);
        let back = MetricsSnapshot::from_json(&v1_1).unwrap();
        assert_ne!(back.histogram("lat").unwrap().p50, 0);
        assert_eq!(back.histogram("lat").unwrap().p999, 0);
    }
}
