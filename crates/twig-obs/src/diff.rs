//! Structural diffing of two metrics snapshots — the engine behind
//! `twig-cli metrics diff <a.json> <b.json>`.
//!
//! The diff is **semantic**, not textual: counters are matched by name
//! and compared by value; histograms by their summary statistics. Only
//! differing metrics appear, so a clean diff is the empty report — which
//! is exactly what the determinism tests assert across thread counts.

use std::fmt;

use crate::metrics::MetricsSnapshot;

/// One differing counter (or one present on only one side).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CounterDiff {
    /// Metric name.
    pub name: String,
    /// Value on the left side (`None` = absent).
    pub before: Option<u64>,
    /// Value on the right side (`None` = absent).
    pub after: Option<u64>,
}

impl CounterDiff {
    /// Signed change for two-sided rows.
    pub fn delta(&self) -> Option<i128> {
        Some(self.after? as i128 - self.before? as i128)
    }
}

/// One differing histogram, compared by summary statistics.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HistogramDiff {
    /// Metric name.
    pub name: String,
    /// `(count, sum)` on the left side (`None` = absent).
    pub before: Option<(u64, u64)>,
    /// `(count, sum)` on the right side (`None` = absent).
    pub after: Option<(u64, u64)>,
}

/// The semantic difference between two snapshots.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct MetricsDiff {
    /// Differing counters, name-sorted.
    pub counters: Vec<CounterDiff>,
    /// Differing histograms, name-sorted.
    pub histograms: Vec<HistogramDiff>,
}

impl MetricsDiff {
    /// Whether the two snapshots are semantically identical.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }
}

/// Compares two snapshots; the result lists only what differs.
pub fn diff_snapshots(before: &MetricsSnapshot, after: &MetricsSnapshot) -> MetricsDiff {
    let mut diff = MetricsDiff::default();

    let mut names: Vec<&str> = before
        .counters
        .iter()
        .chain(after.counters.iter())
        .map(|e| e.name.as_str())
        .collect();
    names.sort_unstable();
    names.dedup();
    for name in names {
        let b = before.counter(name);
        let a = after.counter(name);
        if b != a {
            diff.counters.push(CounterDiff {
                name: name.to_string(),
                before: b,
                after: a,
            });
        }
    }

    let mut names: Vec<&str> = before
        .histograms
        .iter()
        .chain(after.histograms.iter())
        .map(|e| e.name.as_str())
        .collect();
    names.sort_unstable();
    names.dedup();
    for name in names {
        let b = before.histogram(name).map(|h| (h.count, h.sum));
        let a = after.histogram(name).map(|h| (h.count, h.sum));
        if b != a {
            diff.histograms.push(HistogramDiff {
                name: name.to_string(),
                before: b,
                after: a,
            });
        }
    }

    diff
}

fn render_opt(v: Option<u64>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "-".to_string(),
    }
}

impl fmt::Display for MetricsDiff {
    /// Human-readable table; "metrics identical" for the empty diff.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return writeln!(f, "metrics identical");
        }
        if !self.counters.is_empty() {
            writeln!(
                f,
                "{:<44} {:>16} {:>16} {:>12}",
                "counter", "before", "after", "delta"
            )?;
            for row in &self.counters {
                let delta = match row.delta() {
                    Some(d) => format!("{d:+}"),
                    None => "-".to_string(),
                };
                writeln!(
                    f,
                    "{:<44} {:>16} {:>16} {:>12}",
                    row.name,
                    render_opt(row.before),
                    render_opt(row.after),
                    delta
                )?;
            }
        }
        if !self.histograms.is_empty() {
            writeln!(
                f,
                "{:<44} {:>16} {:>16}",
                "histogram", "before(count/sum)", "after(count/sum)"
            )?;
            for row in &self.histograms {
                let render = |v: Option<(u64, u64)>| match v {
                    Some((count, sum)) => format!("{count}/{sum}"),
                    None => "-".to_string(),
                };
                writeln!(
                    f,
                    "{:<44} {:>16} {:>16}",
                    row.name,
                    render(row.before),
                    render(row.after)
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn snap(counters: &[(&str, u64)], hist: &[(&str, &[u64])]) -> MetricsSnapshot {
        let mut reg = MetricsRegistry::new();
        for &(name, value) in counters {
            reg.set_by_name(name, value);
        }
        for &(name, samples) in hist {
            let id = reg.histogram(name);
            for &s in samples {
                reg.record(id, s);
            }
        }
        reg.snapshot()
    }

    #[test]
    fn identical_snapshots_diff_empty() {
        let a = snap(&[("x", 1), ("y", 2)], &[("h", &[1, 2, 3])]);
        let b = snap(&[("y", 2), ("x", 1)], &[("h", &[1, 2, 3])]);
        let diff = diff_snapshots(&a, &b);
        assert!(diff.is_empty());
        assert!(diff.to_string().contains("identical"));
    }

    #[test]
    fn reports_changed_added_and_removed() {
        let a = snap(&[("same", 5), ("changed", 10), ("gone", 1)], &[]);
        let b = snap(&[("same", 5), ("changed", 12), ("new", 7)], &[]);
        let diff = diff_snapshots(&a, &b);
        let names: Vec<&str> = diff.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["changed", "gone", "new"]);
        let changed = &diff.counters[0];
        assert_eq!(changed.delta(), Some(2));
        assert_eq!(diff.counters[1].after, None);
        assert_eq!(diff.counters[2].before, None);
        let rendered = diff.to_string();
        assert!(rendered.contains("changed"), "{rendered}");
        assert!(rendered.contains("+2"), "{rendered}");
    }

    #[test]
    fn histogram_changes_surface() {
        let a = snap(&[], &[("h", &[1, 2])]);
        let b = snap(&[], &[("h", &[1, 2, 3])]);
        let diff = diff_snapshots(&a, &b);
        assert_eq!(diff.histograms.len(), 1);
        assert_eq!(diff.histograms[0].before, Some((2, 3)));
        assert_eq!(diff.histograms[0].after, Some((3, 6)));
    }
}
