//! A minimal JSON-Schema-subset validator, enough for CI to pin the
//! exported metrics/trace formats against checked-in schema files.
//!
//! Supported keywords: `type` (a string or an array of strings, with
//! JSON Schema's names — `integer` matches whole numbers, `number`
//! matches any numeric), `required`, `properties`, `items`, and
//! `minItems`. Unknown keywords are ignored (like real JSON Schema),
//! so the checked-in schemas stay forward-portable to a full validator.
//!
//! # Examples
//!
//! ```
//! let schema = twig_serde_json::from_str(
//!     r#"{"type": "object", "required": ["version"],
//!         "properties": {"version": {"type": "integer"}}}"#,
//! ).unwrap();
//! let doc = twig_serde_json::from_str(r#"{"version": 1}"#).unwrap();
//! assert!(twig_obs::validate(&doc, &schema).is_ok());
//! let bad = twig_serde_json::from_str(r#"{"version": "one"}"#).unwrap();
//! assert!(twig_obs::validate(&bad, &schema).is_err());
//! ```

use twig_serde::Value;

/// A validation failure: where in the document, and what was expected.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SchemaError {
    /// JSON-pointer-style path to the offending value (`$` is the root).
    pub path: String,
    /// What the schema required there.
    pub message: String,
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path, self.message)
    }
}

impl std::error::Error for SchemaError {}

/// Validates `value` against `schema`, reporting the first failure.
///
/// # Errors
///
/// Returns a [`SchemaError`] naming the offending path; also fails if
/// the schema itself is not an object.
pub fn validate(value: &Value, schema: &Value) -> Result<(), SchemaError> {
    validate_at(value, schema, "$")
}

fn type_name(value: &Value) -> &'static str {
    match value {
        Value::Null => "null",
        Value::Bool(_) => "boolean",
        Value::Int(_) | Value::UInt(_) => "integer",
        Value::Float(_) => "number",
        Value::Str(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

fn matches_type(value: &Value, wanted: &str) -> bool {
    match wanted {
        // Every integer is also a number.
        "number" => matches!(value, Value::Int(_) | Value::UInt(_) | Value::Float(_)),
        other => type_name(value) == other,
    }
}

fn lookup<'a>(object: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    object.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn validate_at(value: &Value, schema: &Value, path: &str) -> Result<(), SchemaError> {
    let schema = schema.as_object().ok_or_else(|| SchemaError {
        path: path.to_string(),
        message: "schema node is not an object".to_string(),
    })?;

    if let Some(wanted) = lookup(schema, "type") {
        let allowed: Vec<&str> = match wanted {
            Value::Str(one) => vec![one.as_str()],
            Value::Array(list) => list.iter().filter_map(|v| v.as_str()).collect(),
            _ => Vec::new(),
        };
        if !allowed.iter().any(|t| matches_type(value, t)) {
            return Err(SchemaError {
                path: path.to_string(),
                message: format!(
                    "expected type {}, found {}",
                    allowed.join(" | "),
                    type_name(value)
                ),
            });
        }
    }

    if let Some(required) = lookup(schema, "required").and_then(|v| v.as_array()) {
        if let Some(entries) = value.as_object() {
            for key in required.iter().filter_map(|v| v.as_str()) {
                if lookup(entries, key).is_none() {
                    return Err(SchemaError {
                        path: path.to_string(),
                        message: format!("missing required property {key:?}"),
                    });
                }
            }
        }
    }

    if let Some(properties) = lookup(schema, "properties").and_then(|v| v.as_object()) {
        if let Some(entries) = value.as_object() {
            for (key, subschema) in properties {
                if let Some(subvalue) = lookup(entries, key) {
                    validate_at(subvalue, subschema, &format!("{path}.{key}"))?;
                }
            }
        }
    }

    if let Some(min_items) = lookup(schema, "minItems").and_then(|v| v.as_u64()) {
        if let Some(items) = value.as_array() {
            if (items.len() as u64) < min_items {
                return Err(SchemaError {
                    path: path.to_string(),
                    message: format!(
                        "expected at least {min_items} item(s), found {}",
                        items.len()
                    ),
                });
            }
        }
    }

    if let Some(item_schema) = lookup(schema, "items") {
        if let Some(items) = value.as_array() {
            for (i, item) in items.iter().enumerate() {
                validate_at(item, item_schema, &format!("{path}[{i}]"))?;
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(text: &str) -> Value {
        twig_serde_json::from_str(text).unwrap()
    }

    #[test]
    fn accepts_a_conforming_document() {
        let schema = v(r#"{
            "type": "object",
            "required": ["version", "counters"],
            "properties": {
                "version": {"type": "integer"},
                "counters": {
                    "type": "array",
                    "items": {
                        "type": "object",
                        "required": ["name", "value"],
                        "properties": {
                            "name": {"type": "string"},
                            "value": {"type": "integer"}
                        }
                    }
                }
            }
        }"#);
        let doc = v(r#"{"version": 1, "counters": [{"name": "a", "value": 2}]}"#);
        validate(&doc, &schema).unwrap();
    }

    #[test]
    fn reports_path_of_nested_failure() {
        let schema = v(r#"{
            "type": "object",
            "properties": {
                "counters": {"type": "array", "items": {
                    "type": "object", "required": ["value"]
                }}
            }
        }"#);
        let doc = v(r#"{"counters": [{"value": 1}, {"name": "b"}]}"#);
        let err = validate(&doc, &schema).unwrap_err();
        assert_eq!(err.path, "$.counters[1]");
        assert!(err.message.contains("value"), "{err}");
    }

    #[test]
    fn integer_is_a_number_but_not_vice_versa() {
        let number = v(r#"{"type": "number"}"#);
        let integer = v(r#"{"type": "integer"}"#);
        validate(&v("3"), &number).unwrap();
        validate(&v("3.5"), &number).unwrap();
        validate(&v("3"), &integer).unwrap();
        assert!(validate(&v("3.5"), &integer).is_err());
    }

    #[test]
    fn type_unions_and_min_items() {
        let schema = v(r#"{"type": ["string", "null"]}"#);
        validate(&v(r#""hi""#), &schema).unwrap();
        validate(&v("null"), &schema).unwrap();
        assert!(validate(&v("4"), &schema).is_err());

        let schema = v(r#"{"type": "array", "minItems": 1}"#);
        assert!(validate(&v("[]"), &schema).is_err());
        validate(&v("[1]"), &schema).unwrap();
    }

    #[test]
    fn unknown_keywords_are_ignored() {
        let schema = v(r#"{"type": "string", "format": "uuid", "$comment": "x"}"#);
        validate(&v(r#""anything""#), &schema).unwrap();
    }
}
