//! Windowed time-series telemetry: the layer that turns end-of-run
//! scalar snapshots into metric *trajectories*.
//!
//! Every export the harness produced before this module — metrics
//! snapshots, attribution profiles, the fleet manifest — averages a
//! run's phases away: a 50M-instruction run whose IPC sags for one phase
//! is indistinguishable from a uniformly mediocre one. [`TimeSeriesRing`]
//! fixes that: registered tracks are sampled once per window boundary
//! (every `TWIG_OBS_WINDOW` retired instructions in the simulator; once
//! per layout generation in the fleet), counters are delta-encoded so a
//! window is self-describing, and the ring is bounded with explicit
//! dropped-window accounting — never an unbounded allocation.
//!
//! Steady-state recording is allocation-free: registration (the only
//! allocations) happens before the first window is pushed, after which
//! [`TimeSeriesRing::push_window`] writes into preallocated flat storage.
//!
//! [`TimeSeriesRing::snapshot`] freezes the ring into a
//! [`TimelineSnapshot`] — the payload of `results/metrics/
//! <app>_<config>.timeline.json` — and runs the derived-metric pass
//! (per-window IPC / BTB MPKI / miss coverage / resteer rate, in
//! integer fixed-point so exports are bit-identical across platforms)
//! plus a change-point phase detector over the windowed IPC, exported as
//! labeled phase segments.
//!
//! Determinism contract: identical to the metrics snapshot — no
//! wall-clock times, no addresses, no thread ids; for a fixed seed the
//! serialized JSON is byte-identical run-to-run and across
//! `TWIG_NUM_THREADS` / `TWIG_NUM_PROCS` settings.

use std::fmt;

use twig_serde::{Deserialize, Serialize};

use crate::ExportError;

/// Timeline snapshot format version; bump when the schema changes.
pub const TIMELINE_VERSION: u32 = 1;

/// Default bound on retained windows. Generous: at the default
/// `window=65536` this covers ~268M instructions before anything drops.
pub const DEFAULT_TIMELINE_CAPACITY: usize = 4096;

/// Relative change-point threshold for the phase detector, as a
/// denominator: a window opens a new phase when its IPC deviates from
/// the running phase mean by more than `mean / PHASE_THRESHOLD_DIV`
/// (12.5%).
pub const PHASE_THRESHOLD_DIV: u64 = 8;

/// Parses the `TWIG_OBS_WINDOW` grammar: `off` (or empty) disables
/// windowing; `window=N` samples every `N` retired instructions.
///
/// # Errors
///
/// Returns a human-readable message naming the offending token.
pub fn parse_window_spec(text: &str) -> Result<Option<u64>, String> {
    match text.trim() {
        "off" | "" => Ok(None),
        other => {
            if let Some(n) = other.strip_prefix("window=") {
                let window: u64 = n
                    .parse()
                    .map_err(|_| format!("bad window size {n:?} in {other:?}"))?;
                if window == 0 {
                    return Err("window size must be >= 1".into());
                }
                Ok(Some(window))
            } else {
                Err(format!(
                    "unknown timeline spec {other:?} (expected off | window=N)"
                ))
            }
        }
    }
}

/// Stable textual form (round-trips through [`parse_window_spec`]).
pub fn window_spec_text(window: Option<u64>) -> String {
    match window {
        None => "off".to_string(),
        Some(n) => format!("window={n}"),
    }
}

/// How a track's per-window value relates to the sampled cumulative.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TrackKind {
    /// Monotone cumulative counter; windows store the delta since the
    /// previous boundary, so per-window deltas sum back to the total.
    Counter,
    /// Instantaneous gauge (an occupancy, a percentile); windows store
    /// the sampled value as-is.
    Gauge,
}

impl TrackKind {
    /// Stable lower-case name used in the serialized snapshot.
    pub fn as_str(self) -> &'static str {
        match self {
            TrackKind::Counter => "counter",
            TrackKind::Gauge => "gauge",
        }
    }

    /// Parses the serialized form back.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "counter" => Ok(TrackKind::Counter),
            "gauge" => Ok(TrackKind::Gauge),
            other => Err(format!("unknown track kind {other:?}")),
        }
    }
}

/// Handle to a registered track (index into the ring's flat storage).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TrackId(u32);

/// A bounded windowed time series over a fixed set of tracks.
///
/// Registration ([`TimeSeriesRing::track`]) happens up front; the first
/// [`TimeSeriesRing::push_window`] seals the track set and all later
/// recording is index arithmetic into preallocated storage. Once
/// `capacity` windows are held, the oldest window is overwritten (the
/// tail of a long run is its steady state) and the loss is surfaced via
/// [`TimeSeriesRing::dropped_windows`].
#[derive(Clone, Debug)]
pub struct TimeSeriesRing {
    tracks: Vec<(String, TrackKind)>,
    /// Previous cumulative sample per track (delta basis for counters).
    last: Vec<u64>,
    /// `(end_instr, end_cycle)` per held window, oldest at `head`.
    ends: Vec<(u64, u64)>,
    /// Flat `window-major` value storage: window `w` track `t` lives at
    /// `w * tracks.len() + t`.
    values: Vec<u64>,
    /// Next slot to overwrite once the ring is full.
    head: usize,
    capacity: usize,
    dropped: u64,
    sealed: bool,
}

impl TimeSeriesRing {
    /// An empty ring holding at most `capacity` windows (floored to 1).
    pub fn new(capacity: usize) -> Self {
        TimeSeriesRing {
            tracks: Vec::new(),
            last: Vec::new(),
            ends: Vec::new(),
            values: Vec::new(),
            head: 0,
            capacity: capacity.max(1),
            dropped: 0,
            sealed: false,
        }
    }

    /// Registers a track. Not for the hot loop; panics after the first
    /// window has been pushed (the set is sealed so storage stays flat).
    pub fn track(&mut self, name: &str, kind: TrackKind) -> TrackId {
        assert!(
            !self.sealed,
            "track registration after the first window (timeline track set is sealed)"
        );
        if let Some(i) = self.tracks.iter().position(|(n, _)| n == name) {
            return TrackId(i as u32);
        }
        self.tracks.push((name.to_string(), kind));
        self.last.push(0);
        TrackId((self.tracks.len() - 1) as u32)
    }

    /// Number of registered tracks.
    pub fn track_count(&self) -> usize {
        self.tracks.len()
    }

    /// Windows currently held.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// Whether no window has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Windows overwritten after the ring filled.
    pub fn dropped_windows(&self) -> u64 {
        self.dropped
    }

    /// Closes one window ending at `end_instr` retired instructions /
    /// `end_cycle` elapsed cycles. `sample[t]` is track `t`'s *current
    /// cumulative* value (counters are delta-encoded here; gauges are
    /// stored as-is). Allocation-free once the ring has filled; before
    /// that the only allocations grow the preallocated flat storage to
    /// capacity.
    ///
    /// # Panics
    ///
    /// Panics if `sample.len()` disagrees with the registered track set.
    pub fn push_window(&mut self, end_instr: u64, end_cycle: u64, sample: &[u64]) {
        assert_eq!(
            sample.len(),
            self.tracks.len(),
            "timeline sample width disagrees with the registered track set"
        );
        if !self.sealed {
            self.sealed = true;
            self.ends.reserve_exact(self.capacity);
            self.values.reserve_exact(self.capacity * self.tracks.len());
        }
        let width = self.tracks.len();
        let slot = if self.ends.len() < self.capacity {
            self.ends.push((end_instr, end_cycle));
            self.values.resize(self.ends.len() * width, 0);
            self.ends.len() - 1
        } else {
            let slot = self.head;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
            self.ends[slot] = (end_instr, end_cycle);
            slot
        };
        for (t, (&cumulative, (_, kind))) in sample.iter().zip(&self.tracks).enumerate() {
            self.values[slot * width + t] = match kind {
                TrackKind::Counter => cumulative.saturating_sub(self.last[t]),
                TrackKind::Gauge => cumulative,
            };
        }
        for (t, &cumulative) in sample.iter().enumerate() {
            self.last[t] = cumulative;
        }
    }

    /// Verifies the conservation invariant: with no dropped windows, the
    /// per-window deltas of every counter track sum exactly to that
    /// track's cumulative total (`totals[t]`). Gauges are skipped.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first non-conserving track.
    pub fn check_conservation(&self, totals: &[u64]) -> Result<(), String> {
        if self.dropped > 0 {
            return Ok(()); // lost windows make the sum legitimately short
        }
        let width = self.tracks.len();
        for (t, (name, kind)) in self.tracks.iter().enumerate() {
            if *kind != TrackKind::Counter {
                continue;
            }
            let sum: u64 = (0..self.ends.len())
                .map(|w| self.values[w * width + t])
                .sum();
            if sum != totals[t] {
                return Err(format!(
                    "track {name}: window deltas sum to {sum}, end-of-run total is {}",
                    totals[t]
                ));
            }
        }
        Ok(())
    }

    /// Freezes the ring into its serializable form, windows oldest
    /// first, and runs the derived-metric and phase-detection passes.
    /// `window` records the boundary period (instructions per window;
    /// the final window of a run may be shorter).
    pub fn snapshot(&self, window: u64) -> TimelineSnapshot {
        let width = self.tracks.len();
        let order: Vec<usize> = (self.head..self.ends.len()).chain(0..self.head).collect();
        let windows: Vec<WindowSnapshot> = order
            .iter()
            .map(|&w| WindowSnapshot {
                end_instr: self.ends[w].0,
                end_cycle: self.ends[w].1,
                values: self.values[w * width..(w + 1) * width].to_vec(),
            })
            .collect();
        let tracks: Vec<TrackSnapshot> = self
            .tracks
            .iter()
            .map(|(name, kind)| TrackSnapshot {
                name: name.clone(),
                kind: kind.as_str().to_string(),
            })
            .collect();
        let derived = derive_windows(&tracks, &windows);
        let phases = detect_phases(&derived);
        TimelineSnapshot {
            version: TIMELINE_VERSION,
            window,
            dropped_windows: self.dropped,
            tracks,
            windows,
            derived,
            phases,
        }
    }
}

/// One registered track in a serialized timeline.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct TrackSnapshot {
    /// Dotted metric name.
    pub name: String,
    /// `counter` (delta-encoded) or `gauge` (raw samples).
    pub kind: String,
}

/// One closed window: its boundary plus one value per track.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct WindowSnapshot {
    /// Cumulative retired instructions at the window's close (the fleet
    /// reuses this axis for layout generations).
    pub end_instr: u64,
    /// Elapsed cycles at the window's close.
    pub end_cycle: u64,
    /// Per-track values, in track-registration order.
    pub values: Vec<u64>,
}

/// Per-window derived metrics, in deterministic integer fixed-point.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct DerivedWindow {
    /// IPC × 10⁶ over the window.
    pub ipc_micros: u64,
    /// BTB misses per kilo-instruction × 10³ over the window.
    pub btb_mpki_milli: u64,
    /// Covered fraction of would-be BTB misses × 10³ over the window.
    pub coverage_permille: u64,
    /// Frontend resteers (decode + execute) per kilo-instruction × 10³
    /// over the window — the per-window cost proxy the paper's resteer
    /// analysis uses.
    pub resteer_pki_milli: u64,
}

/// One detected phase: a maximal run of windows whose IPC stays within
/// the change-point threshold of the phase's running mean.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct PhaseSegment {
    /// Stable label (`phase-0`, `phase-1`, …).
    pub label: String,
    /// First window index (into `windows`) of the segment.
    pub start_window: u64,
    /// Last window index of the segment, inclusive.
    pub end_window: u64,
    /// Mean IPC × 10⁶ across the segment.
    pub mean_ipc_micros: u64,
}

/// A frozen, deterministic timeline — the payload of
/// `results/metrics/<app>_<config>.timeline.json`
/// (`docs/schema/timeline-v1.json`).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct TimelineSnapshot {
    /// Format version ([`TIMELINE_VERSION`]).
    pub version: u32,
    /// Window boundary period, in retired instructions per window (the
    /// fleet's per-generation series uses 1: one window per generation).
    pub window: u64,
    /// Windows overwritten after the ring filled (0 = complete record).
    pub dropped_windows: u64,
    /// Registered tracks, in registration order.
    pub tracks: Vec<TrackSnapshot>,
    /// Closed windows, oldest first.
    pub windows: Vec<WindowSnapshot>,
    /// Derived per-window metrics (empty when the standard sim tracks
    /// are absent — e.g. fleet generation series).
    pub derived: Vec<DerivedWindow>,
    /// Detected phase segments over the windowed IPC.
    pub phases: Vec<PhaseSegment>,
}

impl TimelineSnapshot {
    /// An empty timeline (current version, no tracks or windows).
    pub fn empty(window: u64) -> Self {
        TimelineSnapshot {
            version: TIMELINE_VERSION,
            window,
            dropped_windows: 0,
            tracks: Vec::new(),
            windows: Vec::new(),
            derived: Vec::new(),
            phases: Vec::new(),
        }
    }

    /// Index of a track by name.
    pub fn track_index(&self, name: &str) -> Option<usize> {
        self.tracks.iter().position(|t| t.name == name)
    }

    /// One track's per-window values, oldest first.
    pub fn track_values(&self, name: &str) -> Option<Vec<u64>> {
        let index = self.track_index(name)?;
        Some(self.windows.iter().map(|w| w.values[index]).collect())
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns an [`ExportError`] if the document cannot be serialized.
    pub fn to_json(&self) -> Result<String, ExportError> {
        twig_serde_json::to_string_pretty(self)
            .map_err(|e| ExportError::new("timeline snapshot", e.to_string()))
    }

    /// Parses a timeline back from JSON, rejecting unknown versions.
    ///
    /// # Errors
    ///
    /// Returns an [`ExportError`] describing the malformed document.
    pub fn from_json(text: &str) -> Result<Self, ExportError> {
        let snapshot: TimelineSnapshot = twig_serde_json::from_str(text)
            .map_err(|e| ExportError::new("timeline snapshot", e.to_string()))?;
        if snapshot.version != TIMELINE_VERSION {
            return Err(ExportError::new(
                "timeline snapshot",
                format!(
                    "unsupported version {} (expected {TIMELINE_VERSION})",
                    snapshot.version
                ),
            ));
        }
        Ok(snapshot)
    }
}

/// The names the derived-metric pass keys on (registered by the
/// simulator's timeline state; other producers may omit them).
pub mod track_names {
    /// Elapsed cycles (counter).
    pub const CYCLES: &str = "sim.cycles";
    /// Retired program instructions (counter).
    pub const INSTRUCTIONS: &str = "sim.retired_instructions";
    /// Real BTB misses, all kinds (counter).
    pub const BTB_MISSES: &str = "btb.misses.total";
    /// Would-be BTB misses covered by prefetching (counter).
    pub const BTB_COVERED: &str = "btb.covered.total";
    /// Decode-time resteers (counter).
    pub const DECODE_RESTEERS: &str = "frontend.decode_resteers";
    /// Execute-time resteers (counter).
    pub const EXEC_RESTEERS: &str = "frontend.exec_resteers";
}

/// The derived-metric pass: per-window IPC, BTB MPKI, miss coverage,
/// and resteer rate in integer fixed-point. Returns an empty vector
/// when the cycle/instruction tracks are missing.
pub fn derive_windows(tracks: &[TrackSnapshot], windows: &[WindowSnapshot]) -> Vec<DerivedWindow> {
    let index = |name: &str| tracks.iter().position(|t| t.name == name);
    let (Some(cycles), Some(instrs)) =
        (index(track_names::CYCLES), index(track_names::INSTRUCTIONS))
    else {
        return Vec::new();
    };
    let misses = index(track_names::BTB_MISSES);
    let covered = index(track_names::BTB_COVERED);
    let decode = index(track_names::DECODE_RESTEERS);
    let exec = index(track_names::EXEC_RESTEERS);
    windows
        .iter()
        .map(|w| {
            let at = |i: Option<usize>| i.map_or(0, |i| w.values[i]);
            let cycles = w.values[cycles];
            let instrs = w.values[instrs];
            let misses = at(misses);
            let covered = at(covered);
            let resteers = at(decode) + at(exec);
            let would_be = misses + covered;
            DerivedWindow {
                ipc_micros: if cycles == 0 {
                    0
                } else {
                    instrs.saturating_mul(1_000_000) / cycles
                },
                btb_mpki_milli: if instrs == 0 {
                    0
                } else {
                    misses.saturating_mul(1_000_000) / instrs
                },
                coverage_permille: if would_be == 0 {
                    0
                } else {
                    covered.saturating_mul(1_000) / would_be
                },
                resteer_pki_milli: if instrs == 0 {
                    0
                } else {
                    resteers.saturating_mul(1_000_000) / instrs
                },
            }
        })
        .collect()
}

/// The change-point phase detector: windows join the current phase
/// while their IPC stays within `mean ± mean/PHASE_THRESHOLD_DIV` of
/// the phase's running mean; a window outside that band closes the
/// phase and opens the next. Pure integer arithmetic — deterministic
/// across platforms.
pub fn detect_phases(derived: &[DerivedWindow]) -> Vec<PhaseSegment> {
    let mut phases: Vec<PhaseSegment> = Vec::new();
    let mut start = 0usize;
    let mut sum: u64 = 0;
    for (i, d) in derived.iter().enumerate() {
        let count = (i - start) as u64;
        if count > 0 {
            let mean = sum / count;
            let deviation = d.ipc_micros.abs_diff(mean);
            if deviation > mean / PHASE_THRESHOLD_DIV {
                phases.push(PhaseSegment {
                    label: format!("phase-{}", phases.len()),
                    start_window: start as u64,
                    end_window: (i - 1) as u64,
                    mean_ipc_micros: mean,
                });
                start = i;
                sum = 0;
            }
        }
        sum += d.ipc_micros;
    }
    if start < derived.len() {
        let count = (derived.len() - start) as u64;
        phases.push(PhaseSegment {
            label: format!("phase-{}", phases.len()),
            start_window: start as u64,
            end_window: (derived.len() - 1) as u64,
            mean_ipc_micros: sum / count,
        });
    }
    phases
}

/// One differing per-window value in a timeline diff.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WindowValueDiff {
    /// Index of the window (into the oldest-first window list).
    pub window: usize,
    /// Track name.
    pub track: String,
    /// Value on the left side (`None` = track absent there).
    pub before: Option<u64>,
    /// Value on the right side.
    pub after: Option<u64>,
}

/// The semantic difference between two timelines: structural mismatches
/// (window period, window count, dropped windows) plus per-window
/// per-track value differences — matched by track *name*, so reordered
/// registration does not read as a diff.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TimelineDiff {
    /// `(before, after)` when the window periods disagree.
    pub window_mismatch: Option<(u64, u64)>,
    /// `(before, after)` when the held window counts disagree.
    pub count_mismatch: Option<(usize, usize)>,
    /// `(before, after)` when the dropped-window counts disagree.
    pub dropped_mismatch: Option<(u64, u64)>,
    /// Differing window boundaries: `(index, before (end_instr,
    /// end_cycle), after)`.
    pub boundaries: Vec<(usize, (u64, u64), (u64, u64))>,
    /// Differing values over the common window prefix.
    pub values: Vec<WindowValueDiff>,
}

impl TimelineDiff {
    /// Whether the two timelines are semantically identical.
    pub fn is_empty(&self) -> bool {
        self.window_mismatch.is_none()
            && self.count_mismatch.is_none()
            && self.dropped_mismatch.is_none()
            && self.boundaries.is_empty()
            && self.values.is_empty()
    }
}

/// Compares two timelines; the result lists only what differs.
pub fn diff_timelines(before: &TimelineSnapshot, after: &TimelineSnapshot) -> TimelineDiff {
    let mut diff = TimelineDiff::default();
    if before.window != after.window {
        diff.window_mismatch = Some((before.window, after.window));
    }
    if before.windows.len() != after.windows.len() {
        diff.count_mismatch = Some((before.windows.len(), after.windows.len()));
    }
    if before.dropped_windows != after.dropped_windows {
        diff.dropped_mismatch = Some((before.dropped_windows, after.dropped_windows));
    }

    let mut names: Vec<&str> = before
        .tracks
        .iter()
        .chain(after.tracks.iter())
        .map(|t| t.name.as_str())
        .collect();
    names.sort_unstable();
    names.dedup();

    let common = before.windows.len().min(after.windows.len());
    for w in 0..common {
        let (b, a) = (&before.windows[w], &after.windows[w]);
        if (b.end_instr, b.end_cycle) != (a.end_instr, a.end_cycle) {
            diff.boundaries
                .push((w, (b.end_instr, b.end_cycle), (a.end_instr, a.end_cycle)));
        }
        for name in &names {
            let bv = before.track_index(name).map(|i| b.values[i]);
            let av = after.track_index(name).map(|i| a.values[i]);
            if bv != av {
                diff.values.push(WindowValueDiff {
                    window: w,
                    track: name.to_string(),
                    before: bv,
                    after: av,
                });
            }
        }
    }
    diff
}

impl fmt::Display for TimelineDiff {
    /// Human-readable report; "timelines identical" for the empty diff.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return writeln!(f, "timelines identical");
        }
        if let Some((b, a)) = self.window_mismatch {
            writeln!(f, "window period differs: {b} vs {a}")?;
        }
        if let Some((b, a)) = self.count_mismatch {
            writeln!(f, "window count differs: {b} vs {a}")?;
        }
        if let Some((b, a)) = self.dropped_mismatch {
            writeln!(f, "dropped windows differ: {b} vs {a}")?;
        }
        for (w, b, a) in &self.boundaries {
            writeln!(
                f,
                "window {w} boundary differs: instr {}/cycle {} vs instr {}/cycle {}",
                b.0, b.1, a.0, a.1
            )?;
        }
        if !self.values.is_empty() {
            writeln!(
                f,
                "{:<8} {:<36} {:>16} {:>16}",
                "window", "track", "before", "after"
            )?;
            for row in &self.values {
                let render = |v: Option<u64>| match v {
                    Some(v) => v.to_string(),
                    None => "-".to_string(),
                };
                writeln!(
                    f,
                    "{:<8} {:<36} {:>16} {:>16}",
                    row.window,
                    row.track,
                    render(row.before),
                    render(row.after)
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_track_ring() -> TimeSeriesRing {
        let mut ring = TimeSeriesRing::new(16);
        ring.track(track_names::CYCLES, TrackKind::Counter);
        ring.track(track_names::INSTRUCTIONS, TrackKind::Counter);
        ring
    }

    #[test]
    fn window_grammar_round_trips() {
        assert_eq!(parse_window_spec("off").unwrap(), None);
        assert_eq!(parse_window_spec("").unwrap(), None);
        assert_eq!(parse_window_spec("  window=4096  ").unwrap(), Some(4096));
        assert_eq!(parse_window_spec(&window_spec_text(Some(7))).unwrap(), Some(7));
        assert_eq!(parse_window_spec(&window_spec_text(None)).unwrap(), None);
        assert!(parse_window_spec("window=0").is_err());
        assert!(parse_window_spec("window=lots").is_err());
        assert!(parse_window_spec("hourly").unwrap_err().contains("hourly"));
    }

    #[test]
    fn counters_delta_encode_and_gauges_pass_through() {
        let mut ring = TimeSeriesRing::new(8);
        let c = ring.track("c", TrackKind::Counter);
        let g = ring.track("g", TrackKind::Gauge);
        assert_eq!((c, g), (TrackId(0), TrackId(1)));
        ring.push_window(100, 400, &[10, 7]);
        ring.push_window(200, 900, &[25, 3]);
        let snap = ring.snapshot(100);
        assert_eq!(snap.track_values("c").unwrap(), vec![10, 15]);
        assert_eq!(snap.track_values("g").unwrap(), vec![7, 3]);
        assert_eq!(snap.windows[1].end_instr, 200);
        assert_eq!(snap.windows[1].end_cycle, 900);
    }

    #[test]
    fn ring_overwrites_oldest_and_accounts_drops() {
        let mut ring = TimeSeriesRing::new(2);
        ring.track("c", TrackKind::Counter);
        for i in 1..=5u64 {
            ring.push_window(i * 10, i * 100, &[i]);
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped_windows(), 3);
        let snap = ring.snapshot(10);
        let ends: Vec<u64> = snap.windows.iter().map(|w| w.end_instr).collect();
        assert_eq!(ends, vec![40, 50]);
        // Deltas stay correct across the overwrite.
        assert_eq!(snap.track_values("c").unwrap(), vec![1, 1]);
    }

    #[test]
    fn conservation_holds_without_drops_and_flags_mismatch() {
        let mut ring = two_track_ring();
        ring.push_window(100, 250, &[250, 100]);
        ring.push_window(200, 600, &[600, 200]);
        assert!(ring.check_conservation(&[600, 200]).is_ok());
        let err = ring.check_conservation(&[600, 199]).unwrap_err();
        assert!(err.contains(track_names::INSTRUCTIONS), "{err}");
        // Dropped windows make short sums legitimate.
        let mut tiny = TimeSeriesRing::new(1);
        tiny.track("c", TrackKind::Counter);
        tiny.push_window(1, 1, &[1]);
        tiny.push_window(2, 2, &[2]);
        assert!(tiny.check_conservation(&[2]).is_ok());
    }

    #[test]
    fn registration_seals_at_first_window() {
        let mut ring = two_track_ring();
        ring.push_window(1, 1, &[1, 1]);
        let result = std::panic::catch_unwind(move || {
            ring.track("late", TrackKind::Gauge);
        });
        assert!(result.is_err(), "late registration must panic");
    }

    #[test]
    fn derived_metrics_use_fixed_point_integers() {
        let tracks = vec![
            TrackSnapshot {
                name: track_names::CYCLES.into(),
                kind: "counter".into(),
            },
            TrackSnapshot {
                name: track_names::INSTRUCTIONS.into(),
                kind: "counter".into(),
            },
            TrackSnapshot {
                name: track_names::BTB_MISSES.into(),
                kind: "counter".into(),
            },
            TrackSnapshot {
                name: track_names::BTB_COVERED.into(),
                kind: "counter".into(),
            },
            TrackSnapshot {
                name: track_names::DECODE_RESTEERS.into(),
                kind: "counter".into(),
            },
        ];
        let windows = vec![WindowSnapshot {
            end_instr: 1000,
            end_cycle: 4000,
            values: vec![4000, 1000, 30, 10, 6],
        }];
        let derived = derive_windows(&tracks, &windows);
        assert_eq!(derived.len(), 1);
        assert_eq!(derived[0].ipc_micros, 250_000); // 0.25 IPC
        assert_eq!(derived[0].btb_mpki_milli, 30_000); // 30 MPKI
        assert_eq!(derived[0].coverage_permille, 250); // 10 / 40
        assert_eq!(derived[0].resteer_pki_milli, 6_000); // 6 per kilo-instr
        // Missing cycle/instruction tracks: no derived pass.
        assert!(derive_windows(&tracks[2..], &windows).is_empty());
    }

    #[test]
    fn phase_detector_splits_on_ipc_shifts() {
        let ipc = |v: u64| DerivedWindow {
            ipc_micros: v,
            ..DerivedWindow::default()
        };
        // Two clean phases: ~1.0 IPC then ~0.5 IPC.
        let derived: Vec<DerivedWindow> = [1_000_000, 1_010_000, 990_000, 500_000, 505_000]
            .iter()
            .map(|&v| ipc(v))
            .collect();
        let phases = detect_phases(&derived);
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].label, "phase-0");
        assert_eq!((phases[0].start_window, phases[0].end_window), (0, 2));
        assert_eq!((phases[1].start_window, phases[1].end_window), (3, 4));
        assert!(phases[0].mean_ipc_micros > 2 * phases[1].mean_ipc_micros / 2);
        // A flat series is one phase; an empty one has none.
        assert_eq!(detect_phases(&vec![ipc(7); 4]).len(), 1);
        assert!(detect_phases(&[]).is_empty());
    }

    #[test]
    fn snapshot_round_trips_and_rejects_future_versions() {
        let mut ring = two_track_ring();
        ring.push_window(100, 400, &[400, 100]);
        ring.push_window(200, 800, &[800, 200]);
        let snap = ring.snapshot(100);
        assert_eq!(snap.version, TIMELINE_VERSION);
        assert_eq!(snap.derived.len(), 2);
        assert_eq!(snap.derived[0].ipc_micros, 250_000);
        assert_eq!(snap.phases.len(), 1);
        let json = snap.to_json().unwrap();
        let back = TimelineSnapshot::from_json(&json).unwrap();
        assert_eq!(back, snap);
        // Determinism: serialization is a pure function of the content.
        assert_eq!(json, back.to_json().unwrap());
        let future = json.replacen(
            &format!("\"version\": {TIMELINE_VERSION}"),
            "\"version\": 999",
            1,
        );
        assert_ne!(future, json);
        let err = TimelineSnapshot::from_json(&future).unwrap_err();
        assert!(err.to_string().contains("unsupported version"), "{err}");
    }

    #[test]
    fn timeline_diff_is_semantic_and_ordered() {
        let mut a = two_track_ring();
        a.push_window(100, 400, &[400, 100]);
        a.push_window(200, 800, &[800, 200]);
        let a = a.snapshot(100);
        assert!(diff_timelines(&a, &a).is_empty());
        assert!(diff_timelines(&a, &a).to_string().contains("identical"));

        let mut b = two_track_ring();
        b.push_window(100, 400, &[400, 100]);
        b.push_window(200, 810, &[810, 200]);
        let b = b.snapshot(100);
        let diff = diff_timelines(&a, &b);
        assert!(!diff.is_empty());
        assert_eq!(diff.boundaries.len(), 1);
        assert_eq!(diff.boundaries[0].0, 1);
        assert_eq!(diff.values.len(), 1);
        assert_eq!(diff.values[0].track, track_names::CYCLES);
        assert_eq!((diff.values[0].before, diff.values[0].after), (Some(400), Some(410)));
        let rendered = diff.to_string();
        assert!(rendered.contains("sim.cycles"), "{rendered}");

        // Tracks are matched by name, not position.
        let mut c = TimeSeriesRing::new(4);
        c.track(track_names::INSTRUCTIONS, TrackKind::Counter);
        c.track(track_names::CYCLES, TrackKind::Counter);
        c.push_window(100, 400, &[100, 400]);
        c.push_window(200, 800, &[200, 800]);
        let c = c.snapshot(100);
        assert!(diff_timelines(&a, &c).is_empty());

        let mismatch = diff_timelines(&a, &TimelineSnapshot::empty(50));
        assert_eq!(mismatch.window_mismatch, Some((100, 50)));
        assert_eq!(mismatch.count_mismatch, Some((2, 0)));
    }
}
