//! Per-branch cycle attribution: a bounded top-K profile of where
//! frontend cycles go, keyed by the *causing static branch*.
//!
//! Twig's premise (PAPER.md §2) is that BTB-miss stall cycles
//! concentrate in a small, stable set of static branches. The aggregate
//! counters (`SimStats`, top-down slots) show *that* cycles are lost;
//! the [`AttrTable`] shows *which* branch PCs lose them, with branch
//! kind, miss kind, and cycles charged — the per-PC view the paper's
//! Figs. 1/3 analysis is built on.
//!
//! The table is a weighted **space-saving** (Misra–Gries family) sketch:
//! at most `k` entries, no allocation after construction, and a
//! deterministic per-entry overestimation bound. When a new key arrives
//! and the table is full, the minimum-weight entry is evicted and the
//! newcomer inherits its weight as `error_cycles` — so for every entry,
//! `cycles - error_cycles <= true cycles <= cycles`, and any key *not*
//! in the table has true weight at most the table's minimum. For the
//! skewed distributions Twig targets the heavy hitters are exact in
//! practice (`error_cycles == 0`).
//!
//! Sampling (`sample=N`) charges every `N`-th resteer event into the
//! table; the scalar totals (`total_events`, `total_cycles`) are always
//! exact regardless of the period, so reconciliation against the
//! aggregate bubble counters never degrades.

use twig_serde::{Deserialize, Serialize};
use twig_types::BranchKind;

use crate::ExportError;

/// Attribution snapshot format version; bump when the schema changes.
pub const ATTRIBUTION_VERSION: u32 = 1;

/// Default table capacity (entries).
pub const DEFAULT_ATTR_K: u32 = 64;

/// Why the frontend lost cycles: the resteer/miss taxonomy an
/// attribution charge is labeled with.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub enum MissKind {
    /// BTB miss on a taken direct branch or return, discovered at
    /// decode (the FDIP decode resteer).
    BtbMissDecode,
    /// BTB miss on an indirect jump/call, unresolvable until execute.
    BtbMissExecute,
    /// Conditional direction mispredict (TAGE was wrong).
    Direction,
    /// Indirect target mispredict (BTB hit, wrong target).
    IndirectTarget,
    /// Return target mispredict (RAS was wrong).
    ReturnTarget,
}

impl MissKind {
    /// Every miss kind, in display order.
    pub const ALL: [MissKind; 5] = [
        MissKind::BtbMissDecode,
        MissKind::BtbMissExecute,
        MissKind::Direction,
        MissKind::IndirectTarget,
        MissKind::ReturnTarget,
    ];

    /// Stable short name used in exports and reports.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            MissKind::BtbMissDecode => "btb-decode",
            MissKind::BtbMissExecute => "btb-exec",
            MissKind::Direction => "dir-mispred",
            MissKind::IndirectTarget => "ind-target",
            MissKind::ReturnTarget => "ret-target",
        }
    }

    /// Whether this kind is a BTB structure miss (vs a predictor miss).
    pub fn is_btb_miss(&self) -> bool {
        matches!(self, MissKind::BtbMissDecode | MissKind::BtbMissExecute)
    }

    /// Dense index (position in [`MissKind::ALL`]).
    pub fn index(&self) -> usize {
        *self as usize
    }
}

impl std::fmt::Display for MissKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Attribution knobs, carried inside [`crate::ObsConfig`] (`Copy` on
/// purpose — the owning `SimConfig` is `Copy`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct AttrConfig {
    /// Whether attribution records at all.
    pub enabled: bool,
    /// Table capacity: at most `k` distinct (pc, kind, miss) keys.
    pub k: u32,
    /// Charge every `sample`-th event into the table (totals stay exact).
    pub sample: u64,
}

impl AttrConfig {
    /// Attribution disabled (the default).
    pub fn off() -> Self {
        AttrConfig {
            enabled: false,
            k: DEFAULT_ATTR_K,
            sample: 1,
        }
    }

    /// Attribution enabled with default capacity and no sampling.
    pub fn on() -> Self {
        AttrConfig {
            enabled: true,
            ..AttrConfig::off()
        }
    }

    /// Parses the `TWIG_OBS_ATTR` grammar:
    /// `off` | `on` | comma-separated `k=N` / `sample=N` pairs (any
    /// pair implies `on`).
    pub fn parse(text: &str) -> Result<Self, String> {
        let trimmed = text.trim();
        if trimmed.is_empty() || trimmed == "off" {
            return Ok(AttrConfig::off());
        }
        let mut config = AttrConfig::on();
        for token in trimmed.split(',') {
            let token = token.trim();
            if token == "on" {
                continue;
            } else if let Some(n) = token.strip_prefix("k=") {
                let k: u32 = n
                    .parse()
                    .map_err(|_| format!("bad attribution table size {n:?} in {trimmed:?}"))?;
                if k == 0 {
                    return Err("attribution table size k must be >= 1".into());
                }
                config.k = k;
            } else if let Some(n) = token.strip_prefix("sample=") {
                let sample: u64 = n
                    .parse()
                    .map_err(|_| format!("bad attribution sample period {n:?} in {trimmed:?}"))?;
                if sample == 0 {
                    return Err("attribution sample period must be >= 1".into());
                }
                config.sample = sample;
            } else {
                return Err(format!(
                    "unknown attribution token {token:?} \
                     (expected off | on | k=N | sample=N)"
                ));
            }
        }
        Ok(config)
    }

    /// Stable textual form (round-trips through [`AttrConfig::parse`]).
    pub fn as_text(&self) -> String {
        if !self.enabled {
            return "off".to_string();
        }
        let default = AttrConfig::on();
        let mut parts = Vec::new();
        if self.k != default.k {
            parts.push(format!("k={}", self.k));
        }
        if self.sample != default.sample {
            parts.push(format!("sample={}", self.sample));
        }
        if parts.is_empty() {
            "on".to_string()
        } else {
            parts.join(",")
        }
    }

    /// Validates the knobs (called from the simulator's config validation).
    pub fn validate(&self) -> Result<(), String> {
        if self.k == 0 {
            return Err("attribution table size k must be >= 1".into());
        }
        if self.sample == 0 {
            return Err("attribution sample period must be >= 1".into());
        }
        Ok(())
    }
}

impl Default for AttrConfig {
    fn default() -> Self {
        AttrConfig::off()
    }
}

/// The attribution key: one static branch site under one miss kind.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AttrKey {
    /// Static branch PC.
    pub pc: u64,
    /// Branch kind at that PC.
    pub branch: BranchKind,
    /// Why cycles were lost.
    pub miss: MissKind,
}

#[derive(Clone, Copy, Debug)]
struct TableEntry {
    key: AttrKey,
    cycles: u64,
    events: u64,
    /// Weight inherited from the entry this one evicted (space-saving
    /// overestimation bound): true cycles >= cycles - error_cycles.
    error_cycles: u64,
}

/// Bounded weighted top-K table of attribution charges.
///
/// Allocation happens once, at construction; `record` is a linear probe
/// over at most `k` entries (attribution events are resteers — orders
/// of magnitude rarer than cycles — and `k` is small, so the probe is
/// cheap and cache-resident).
#[derive(Clone, Debug)]
pub struct AttrTable {
    entries: Vec<TableEntry>,
    k: usize,
    sample: u64,
    total_events: u64,
    total_cycles: u64,
    sampled_events: u64,
    sampled_cycles: u64,
}

impl AttrTable {
    /// An empty table per `config` (capacity preallocated).
    pub fn new(config: &AttrConfig) -> Self {
        let k = config.k.max(1) as usize;
        AttrTable {
            entries: Vec::with_capacity(k),
            k,
            sample: config.sample.max(1),
            total_events: 0,
            total_cycles: 0,
            sampled_events: 0,
            sampled_cycles: 0,
        }
    }

    /// Charges `cycles` lost to `miss` at branch `pc`. Totals are always
    /// exact; the table itself is updated for every `sample`-th event.
    #[inline]
    pub fn record(&mut self, pc: u64, branch: BranchKind, miss: MissKind, cycles: u64) {
        let index = self.total_events;
        self.total_events += 1;
        self.total_cycles += cycles;
        if !index.is_multiple_of(self.sample) {
            return;
        }
        self.sampled_events += 1;
        self.sampled_cycles += cycles;
        let key = AttrKey { pc, branch, miss };
        let mut min_slot = 0usize;
        let mut min_cycles = u64::MAX;
        for (i, entry) in self.entries.iter_mut().enumerate() {
            if entry.key == key {
                entry.cycles += cycles;
                entry.events += 1;
                return;
            }
            if entry.cycles < min_cycles {
                min_cycles = entry.cycles;
                min_slot = i;
            }
        }
        if self.entries.len() < self.k {
            self.entries.push(TableEntry {
                key,
                cycles,
                events: 1,
                error_cycles: 0,
            });
        } else {
            // Space-saving eviction: the newcomer inherits the minimum
            // entry's weight as its error bound.
            let evicted = &mut self.entries[min_slot];
            *evicted = TableEntry {
                key,
                cycles: evicted.cycles + cycles,
                events: evicted.events + 1,
                error_cycles: evicted.cycles,
            };
        }
    }

    /// Events charged so far (exact, independent of sampling).
    pub fn total_events(&self) -> u64 {
        self.total_events
    }

    /// Cycles charged so far (exact, independent of sampling).
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Distinct keys currently tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been charged into the table.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Freezes the table into its deterministic serialized form:
    /// entries sorted by cycles descending, ties broken by (pc, branch,
    /// miss) ascending so equal-weight entries have a stable order.
    pub fn snapshot(&self) -> AttributionSnapshot {
        let mut entries: Vec<AttrEntry> = self
            .entries
            .iter()
            .map(|e| AttrEntry {
                pc: e.key.pc,
                branch: e.key.branch.mnemonic().to_string(),
                miss: e.key.miss.mnemonic().to_string(),
                cycles: e.cycles,
                events: e.events,
                error_cycles: e.error_cycles,
            })
            .collect();
        entries.sort_by(|a, b| {
            b.cycles
                .cmp(&a.cycles)
                .then(a.pc.cmp(&b.pc))
                .then(a.branch.cmp(&b.branch))
                .then(a.miss.cmp(&b.miss))
        });
        AttributionSnapshot {
            version: ATTRIBUTION_VERSION,
            k: self.k as u32,
            sample: self.sample,
            total_events: self.total_events,
            total_cycles: self.total_cycles,
            sampled_events: self.sampled_events,
            sampled_cycles: self.sampled_cycles,
            entries,
        }
    }
}

/// One exported attribution entry: a static branch site and its charge.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct AttrEntry {
    /// Static branch PC.
    pub pc: u64,
    /// Branch-kind mnemonic (`cond`, `jmp`, `call`, `ijmp`, `icall`, `ret`).
    pub branch: String,
    /// Miss-kind mnemonic (see [`MissKind::mnemonic`]).
    pub miss: String,
    /// Cycles charged (overestimates true cycles by at most
    /// `error_cycles`).
    pub cycles: u64,
    /// Events charged.
    pub events: u64,
    /// Space-saving overestimation bound for this entry.
    pub error_cycles: u64,
}

/// A frozen, deterministic attribution profile — the payload of
/// `results/metrics/<app>_<config>.attr.json` (`attribution-v1`).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct AttributionSnapshot {
    /// Format version ([`ATTRIBUTION_VERSION`]).
    pub version: u32,
    /// Table capacity the profile was collected with.
    pub k: u32,
    /// Sampling period the table was charged with.
    pub sample: u64,
    /// Exact number of attribution events (independent of sampling).
    pub total_events: u64,
    /// Exact cycles lost across all events (independent of sampling).
    pub total_cycles: u64,
    /// Events actually charged into the table.
    pub sampled_events: u64,
    /// Cycles actually charged into the table.
    pub sampled_cycles: u64,
    /// Entries, cycles-descending (ties by pc/branch/miss ascending).
    pub entries: Vec<AttrEntry>,
}

impl AttributionSnapshot {
    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns an [`ExportError`] if the document cannot be serialized.
    pub fn to_json(&self) -> Result<String, ExportError> {
        twig_serde_json::to_string_pretty(self)
            .map_err(|e| ExportError::new("attribution snapshot", e.to_string()))
    }

    /// Parses a snapshot back from JSON.
    ///
    /// # Errors
    ///
    /// Returns an [`ExportError`] describing the malformed document.
    pub fn from_json(text: &str) -> Result<Self, ExportError> {
        twig_serde_json::from_str(text)
            .map_err(|e| ExportError::new("attribution snapshot", e.to_string()))
    }

    /// The `n` costliest entries (the snapshot is already sorted).
    pub fn top(&self, n: usize) -> &[AttrEntry] {
        &self.entries[..self.entries.len().min(n)]
    }

    /// Sum of cycles charged per miss kind across the table, in
    /// [`MissKind::ALL`] order.
    pub fn cycles_by_miss_kind(&self) -> [u64; 5] {
        let mut out = [0u64; 5];
        for entry in &self.entries {
            if let Some(i) = MissKind::ALL
                .iter()
                .position(|k| k.mnemonic() == entry.miss)
            {
                out[i] += entry.cycles;
            }
        }
        out
    }
}

/// Renders the profile as folded stacks (flamegraph.pl / inferno
/// compatible): one `label;branch;miss;pc=0x<hex> <cycles>` line per
/// entry, in snapshot (cycles-descending) order.
pub fn folded_stacks(label: &str, snapshot: &AttributionSnapshot) -> String {
    let mut out = String::new();
    for entry in &snapshot.entries {
        out.push_str(&format!(
            "{label};{};{};pc=0x{:x} {}\n",
            entry.branch, entry.miss, entry.pc, entry.cycles
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn charge(table: &mut AttrTable, pc: u64, cycles: u64) {
        table.record(pc, BranchKind::Conditional, MissKind::BtbMissDecode, cycles);
    }

    #[test]
    fn grammar_round_trips() {
        for (text, config) in [
            ("off", AttrConfig::off()),
            ("", AttrConfig::off()),
            ("on", AttrConfig::on()),
            (
                "k=128",
                AttrConfig {
                    k: 128,
                    ..AttrConfig::on()
                },
            ),
            (
                "k=16,sample=8",
                AttrConfig {
                    k: 16,
                    sample: 8,
                    ..AttrConfig::on()
                },
            ),
            (
                "sample=4",
                AttrConfig {
                    sample: 4,
                    ..AttrConfig::on()
                },
            ),
        ] {
            assert_eq!(AttrConfig::parse(text).unwrap(), config, "{text}");
            assert_eq!(AttrConfig::parse(&config.as_text()).unwrap(), config);
        }
    }

    #[test]
    fn grammar_rejects_garbage() {
        assert!(AttrConfig::parse("k=0").is_err());
        assert!(AttrConfig::parse("sample=0").is_err());
        assert!(AttrConfig::parse("k=lots").is_err());
        assert!(AttrConfig::parse("loud").unwrap_err().contains("loud"));
        assert!(AttrConfig {
            k: 0,
            ..AttrConfig::on()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn exact_below_capacity() {
        let mut table = AttrTable::new(&AttrConfig {
            k: 4,
            ..AttrConfig::on()
        });
        charge(&mut table, 0x10, 7);
        charge(&mut table, 0x20, 3);
        charge(&mut table, 0x10, 5);
        let snap = table.snapshot();
        assert_eq!(snap.entries.len(), 2);
        assert_eq!(snap.entries[0].pc, 0x10);
        assert_eq!(snap.entries[0].cycles, 12);
        assert_eq!(snap.entries[0].events, 2);
        assert_eq!(snap.entries[0].error_cycles, 0);
        assert_eq!(snap.total_cycles, 15);
        assert_eq!(snap.total_events, 3);
    }

    #[test]
    fn distinct_miss_kinds_are_distinct_keys() {
        let mut table = AttrTable::new(&AttrConfig::on());
        table.record(0x10, BranchKind::Conditional, MissKind::BtbMissDecode, 5);
        table.record(0x10, BranchKind::Conditional, MissKind::Direction, 9);
        assert_eq!(table.len(), 2);
        let snap = table.snapshot();
        assert_eq!(snap.entries[0].miss, "dir-mispred");
        let by_kind = snap.cycles_by_miss_kind();
        assert_eq!(by_kind[MissKind::BtbMissDecode.index()], 5);
        assert_eq!(by_kind[MissKind::Direction.index()], 9);
    }

    #[test]
    fn eviction_keeps_heavy_hitters_and_bounds_error() {
        let mut table = AttrTable::new(&AttrConfig {
            k: 2,
            ..AttrConfig::on()
        });
        charge(&mut table, 0xA, 100);
        charge(&mut table, 0xB, 1);
        // 0xC evicts the minimum (0xB, weight 1) and inherits its weight.
        charge(&mut table, 0xC, 50);
        let snap = table.snapshot();
        assert_eq!(snap.entries.len(), 2);
        assert_eq!(snap.entries[0].pc, 0xA);
        assert_eq!(snap.entries[1].pc, 0xC);
        assert_eq!(snap.entries[1].cycles, 51);
        assert_eq!(snap.entries[1].error_cycles, 1);
        // Totals stay exact even though 0xB fell out of the table.
        assert_eq!(snap.total_cycles, 151);
        // The heavy hitter is exact.
        assert_eq!(snap.entries[0].error_cycles, 0);
    }

    #[test]
    fn sampling_keeps_totals_exact() {
        let config = AttrConfig {
            sample: 4,
            ..AttrConfig::on()
        };
        let mut table = AttrTable::new(&config);
        for i in 0..17u64 {
            charge(&mut table, 0x10, i);
        }
        let snap = table.snapshot();
        assert_eq!(snap.total_events, 17);
        assert_eq!(snap.total_cycles, (0..17).sum::<u64>());
        // Events 0, 4, 8, 12, 16 landed in the table.
        assert_eq!(snap.sampled_events, 5);
        assert_eq!(snap.sampled_cycles, 4 + 8 + 12 + 16);
        assert_eq!(snap.entries[0].events, 5);
    }

    #[test]
    fn snapshot_order_is_deterministic_on_ties() {
        let mut table = AttrTable::new(&AttrConfig::on());
        table.record(0x30, BranchKind::Return, MissKind::ReturnTarget, 5);
        table.record(0x10, BranchKind::Conditional, MissKind::Direction, 5);
        table.record(0x20, BranchKind::IndirectJump, MissKind::BtbMissExecute, 5);
        let pcs: Vec<u64> = table.snapshot().entries.iter().map(|e| e.pc).collect();
        assert_eq!(pcs, vec![0x10, 0x20, 0x30]);
    }

    #[test]
    fn json_and_folded_round_trip() {
        let mut table = AttrTable::new(&AttrConfig::on());
        table.record(0xBEEF, BranchKind::IndirectCall, MissKind::BtbMissExecute, 42);
        let snap = table.snapshot();
        let json = snap.to_json().unwrap();
        let back = AttributionSnapshot::from_json(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.version, ATTRIBUTION_VERSION);
        let folded = folded_stacks("kafka/twig", &snap);
        assert_eq!(folded, "kafka/twig;icall;btb-exec;pc=0xbeef 42\n");
        assert!(AttributionSnapshot::from_json("[]").is_err());
    }

    #[test]
    fn top_n_clamps() {
        let mut table = AttrTable::new(&AttrConfig::on());
        charge(&mut table, 0x1, 1);
        let snap = table.snapshot();
        assert_eq!(snap.top(10).len(), 1);
        assert_eq!(snap.top(0).len(), 0);
    }
}
