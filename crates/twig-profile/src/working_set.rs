//! Branch working-set and spatial-range analyses (Figs. 11 and 12).
//!
//! Fig. 11 compares each application's *unconditional-branch working set*
//! against Shotgun's 5120-entry U-BTB partition; Fig. 12 measures the
//! fraction of executed conditional branches that lie **outside** the 8
//! cache-line spatial range of the last executed unconditional branch
//! target — conditionals Shotgun structurally cannot prefetch.

use twig_serde::{Deserialize, Serialize};
use twig_types::CacheLineAddr;
use twig_workload::{BlockEvent, Program};

/// Shotgun's spatial reach in cache lines (§2.3).
pub const SHOTGUN_RANGE_LINES: u64 = 8;

/// Result of the Fig. 12 spatial-range analysis.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct SpatialRangeStats {
    /// Conditional-branch executions within range of the last unconditional
    /// target.
    pub in_range: u64,
    /// Conditional-branch executions outside that range.
    pub out_of_range: u64,
}

impl SpatialRangeStats {
    /// Fraction of conditional executions Shotgun cannot reach (Fig. 12's
    /// y-axis; the paper reports 26–45%).
    pub fn out_of_range_fraction(&self) -> f64 {
        let total = self.in_range + self.out_of_range;
        if total == 0 {
            return 0.0;
        }
        self.out_of_range as f64 / total as f64
    }
}

/// Streaming analyzer for the Fig. 12 measurement.
///
/// # Examples
///
/// ```
/// use twig_profile::SpatialRangeAnalyzer;
/// use twig_workload::{InputConfig, ProgramGenerator, Walker, WorkloadSpec};
///
/// let program = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
/// let mut analyzer = SpatialRangeAnalyzer::new();
/// for ev in Walker::new(&program, InputConfig::numbered(0)).take(20_000) {
///     analyzer.observe(&program, ev);
/// }
/// let stats = analyzer.finish();
/// assert!(stats.in_range + stats.out_of_range > 0);
/// ```
#[derive(Debug, Default)]
pub struct SpatialRangeAnalyzer {
    last_uncond_target: Option<CacheLineAddr>,
    stats: SpatialRangeStats,
}

impl SpatialRangeAnalyzer {
    /// Creates an analyzer with no unconditional anchor yet.
    pub fn new() -> Self {
        SpatialRangeAnalyzer::default()
    }

    /// Feeds one executed block event.
    /// Takes the event by value (`BlockEvent` is `Copy`-sized), so an
    /// `EventSource` drives the analyzer directly.
    pub fn observe(&mut self, program: &Program, event: BlockEvent) {
        let block = program.block(event.block);
        let Some(kind) = block.branch_kind() else {
            return;
        };
        if kind.is_unconditional() {
            if event.taken {
                if let Some(rec) = program.resolve_branch(event.block, true, event.target) {
                    self.last_uncond_target = rec.outcome.target().map(|t| t.line());
                }
            }
            return;
        }
        // Conditional: is its own location within range of the anchor?
        let line = block.branch_pc().line();
        match self.last_uncond_target {
            Some(anchor)
                if line.line_number() >= anchor.line_number()
                    && line.line_number() < anchor.line_number() + SHOTGUN_RANGE_LINES =>
            {
                self.stats.in_range += 1;
            }
            Some(_) => self.stats.out_of_range += 1,
            // No anchor yet: not attributable; skip.
            None => {}
        }
    }

    /// Finishes the analysis.
    pub fn finish(self) -> SpatialRangeStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_workload::{InputConfig, ProgramGenerator, Walker, WorkloadSpec};

    #[test]
    fn fraction_is_bounded() {
        let program = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
        let mut analyzer = SpatialRangeAnalyzer::new();
        for ev in Walker::new(&program, InputConfig::numbered(0)).take(50_000) {
            analyzer.observe(&program, ev);
        }
        let stats = analyzer.finish();
        let f = stats.out_of_range_fraction();
        assert!((0.0..=1.0).contains(&f));
        assert!(stats.in_range > 0, "some conditionals must be in range");
    }

    #[test]
    fn empty_analysis_is_zero() {
        let stats = SpatialRangeAnalyzer::new().finish();
        assert_eq!(stats.out_of_range_fraction(), 0.0);
    }

    #[test]
    fn anchor_tracks_last_unconditional() {
        // Build a deterministic scenario via the tiny program: find a
        // conditional far from any unconditional target and verify the
        // classification math on synthetic events.
        let program = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
        // Use a call (unconditional) then check a conditional in a distant
        // function is classified out-of-range.
        let call = program
            .blocks()
            .find(|(_, b)| matches!(b.term, twig_workload::Terminator::Call { .. }))
            .map(|(id, _)| id)
            .unwrap();
        let twig_workload::Terminator::Call { callee, .. } = program.block(call).term else {
            unreachable!()
        };
        let callee_entry = program.function(callee).entry;
        // A conditional in a function with much higher id (distant layout).
        let far_cond = program
            .blocks()
            .filter(|(_, b)| {
                b.branch_kind() == Some(twig_types::BranchKind::Conditional)
                    && b.addr.line().distance(program.block(callee_entry).addr.line())
                        > SHOTGUN_RANGE_LINES * 4
            })
            .map(|(id, _)| id)
            .next()
            .expect("distant conditional exists");
        let mut analyzer = SpatialRangeAnalyzer::new();
        analyzer.observe(
            &program,
            BlockEvent {
                block: call,
                taken: true,
                target: Some(callee_entry),
            },
        );
        analyzer.observe(
            &program,
            BlockEvent {
                block: far_cond,
                taken: false,
                target: None,
            },
        );
        let stats = analyzer.finish();
        assert_eq!(stats.out_of_range, 1);
        assert_eq!(stats.in_range, 0);
    }
}
