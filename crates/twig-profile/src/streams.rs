//! Temporal-stream classification of BTB misses (Fig. 10).
//!
//! Both Confluence and Shotgun rely on temporal streaming — replaying miss
//! sequences recorded in the past. The paper classifies every BTB miss into
//! three stream categories (after Wenisch et al.):
//!
//! - **recurring** — the miss continues a stream that was already observed
//!   earlier in the trace: record-and-replay prefetchers *can* cover it,
//! - **new** — the first occurrence of a stream that recurs later: nothing
//!   to replay yet, but later occurrences become recurring,
//! - **non-repetitive** — part of a stream that never repeats: temporal
//!   prefetchers can never cover it.
//!
//! We implement the classification on miss *transitions* (predecessor →
//! miss pairs): a miss is recurring if its incoming transition was observed
//! before, "new" if the transition recurs only later, and non-repetitive
//! otherwise. This offline two-pass definition captures the same
//! prefetchability boundary at stream granularity.

use std::collections::HashMap;

use twig_serde::{Deserialize, Serialize};
use twig_types::BlockId;

/// Counts of BTB misses by temporal-stream class.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct StreamBreakdown {
    /// Misses continuing a previously observed stream.
    pub recurring: u64,
    /// First occurrences of streams that recur later.
    pub new: u64,
    /// Misses in streams that never repeat.
    pub non_repetitive: u64,
}

impl StreamBreakdown {
    /// Total classified misses.
    pub fn total(&self) -> u64 {
        self.recurring + self.new + self.non_repetitive
    }

    /// `(recurring, new, non_repetitive)` fractions (0 when empty).
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total();
        if t == 0 {
            return (0.0, 0.0, 0.0);
        }
        let t = t as f64;
        (
            self.recurring as f64 / t,
            self.new as f64 / t,
            self.non_repetitive as f64 / t,
        )
    }
}

/// Classifies a BTB miss sequence into temporal-stream categories.
///
/// The input is the chronological sequence of miss sites (block ids);
/// classification is offline (two passes).
///
/// # Examples
///
/// ```
/// use twig_profile::classify_streams;
/// use twig_types::BlockId;
///
/// let b = |n| BlockId::new(n);
/// // The stream (1 -> 2 -> 3) occurs twice: the second occurrence is
/// // recurring, the first is "new"; 9 never repeats.
/// let misses = vec![b(1), b(2), b(3), b(9), b(1), b(2), b(3)];
/// let breakdown = classify_streams(&misses);
/// assert_eq!(breakdown.recurring, 2);      // second 2 and second 3
/// assert!(breakdown.non_repetitive >= 1);  // 9
/// ```
pub fn classify_streams(misses: &[BlockId]) -> StreamBreakdown {
    // Pass 1: count total occurrences of each transition.
    let mut total: HashMap<(BlockId, BlockId), u32> = HashMap::new();
    for pair in misses.windows(2) {
        *total.entry((pair[0], pair[1])).or_insert(0) += 1;
    }
    // Pass 2: classify each miss by its incoming transition.
    let mut breakdown = StreamBreakdown::default();
    let mut seen: HashMap<(BlockId, BlockId), u32> = HashMap::new();
    for (i, &miss) in misses.iter().enumerate() {
        if i == 0 {
            // No incoming transition: classify by whether the site itself
            // recurs (head of the trace is negligible statistically).
            breakdown.new += 1;
            continue;
        }
        let key = (misses[i - 1], miss);
        let prior = seen.entry(key).or_insert(0);
        if *prior > 0 {
            breakdown.recurring += 1;
        } else if total[&key] > 1 {
            breakdown.new += 1;
        } else {
            breakdown.non_repetitive += 1;
        }
        *prior += 1;
    }
    breakdown
}


/// Window-based stream classification, closer to Wenisch-style temporal
/// streaming than the strict transition criterion of [`classify_streams`]:
/// a miss is *recurring* if it occurred within the `window` misses that
/// followed the previous occurrence of its predecessor — i.e. a temporal
/// prefetcher replaying up to `window` entries from the recorded history
/// would have fetched it.
///
/// # Examples
///
/// ```
/// use twig_profile::classify_streams_windowed;
/// use twig_types::BlockId;
///
/// let b = |n| BlockId::new(n);
/// // Stream (1 2 3) recurs with an extra element interposed: windowed
/// // matching still counts 3 as recurring.
/// let misses = [b(1), b(2), b(3), b(1), b(9), b(2), b(3)];
/// let strict = twig_profile::classify_streams(&misses);
/// let windowed = classify_streams_windowed(&misses, 4);
/// assert!(windowed.recurring >= strict.recurring);
/// ```
pub fn classify_streams_windowed(misses: &[BlockId], window: usize) -> StreamBreakdown {
    assert!(window > 0, "window must be positive");
    // Total occurrence counts decide new vs non-repetitive (offline pass).
    let mut total: HashMap<BlockId, u32> = HashMap::new();
    for &m in misses {
        *total.entry(m).or_insert(0) += 1;
    }
    let mut breakdown = StreamBreakdown::default();
    // For each position, the previous occurrence of the same address
    // (None on first occurrence), built incrementally.
    let mut last_pos: HashMap<BlockId, usize> = HashMap::new();
    let mut prev_occurrence: Vec<Option<usize>> = Vec::with_capacity(misses.len());
    for (i, &miss) in misses.iter().enumerate() {
        prev_occurrence.push(last_pos.get(&miss).copied());
        // Look backwards up to `window` misses for an anchor whose prior
        // occurrence was followed (within the window) by `miss`: a replay
        // from that anchor would have prefetched it.
        let mut covered = false;
        let start = i.saturating_sub(window);
        'outer: for j in (start..i).rev() {
            if let Some(prev) = prev_occurrence[j] {
                let end = (prev + 1 + window).min(misses.len());
                for &m in &misses[prev + 1..end] {
                    if m == miss {
                        covered = true;
                        break 'outer;
                    }
                }
            }
        }
        if covered {
            breakdown.recurring += 1;
        } else if total[&miss] > 1 {
            breakdown.new += 1;
        } else {
            breakdown.non_repetitive += 1;
        }
        last_pos.insert(miss, i);
    }
    breakdown
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(n: u32) -> BlockId {
        BlockId::new(n)
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(classify_streams(&[]).total(), 0);
        let one = classify_streams(&[b(1)]);
        assert_eq!(one.total(), 1);
    }

    #[test]
    fn pure_repetition_is_mostly_recurring() {
        let stream: Vec<BlockId> = (0..10)
            .flat_map(|_| [b(1), b(2), b(3), b(4)])
            .collect();
        let r = classify_streams(&stream);
        assert_eq!(r.total(), 40);
        assert_eq!(r.non_repetitive, 0);
        // First pass through the loop is "new", the rest recur.
        assert!(r.recurring >= 35, "{r:?}");
    }

    #[test]
    fn unique_misses_are_non_repetitive() {
        let stream: Vec<BlockId> = (0..50).map(b).collect();
        let r = classify_streams(&stream);
        assert_eq!(r.recurring, 0);
        assert_eq!(r.non_repetitive, 49);
        assert_eq!(r.new, 1); // trace head
    }

    #[test]
    fn mixed_stream_counts_each_class() {
        // ABAB recurs; X unique.
        let stream = vec![b(1), b(2), b(1), b(2), b(99), b(1), b(2)];
        let r = classify_streams(&stream);
        assert_eq!(r.total(), 7);
        assert!(r.recurring >= 2);
        assert!(r.non_repetitive >= 1);
    }

    #[test]
    fn windowed_matches_interleaved_streams() {
        // Two interleaved recurring streams defeat strict transition
        // matching but not windowed matching.
        let a = [1u32, 2, 3, 4];
        let b_ = [10u32, 20, 30, 40];
        let mut stream = Vec::new();
        for round in 0..6 {
            for i in 0..4 {
                // Interleave with round-dependent phase.
                if round % 2 == 0 {
                    stream.push(b(a[i]));
                    stream.push(b(b_[i]));
                } else {
                    stream.push(b(b_[i]));
                    stream.push(b(a[i]));
                }
            }
        }
        let strict = classify_streams(&stream);
        let windowed = classify_streams_windowed(&stream, 8);
        assert!(
            windowed.recurring > strict.recurring,
            "windowed {windowed:?} vs strict {strict:?}"
        );
        let (r, _, _) = windowed.fractions();
        assert!(r > 0.7, "interleaved recurring streams: {r}");
    }

    #[test]
    fn windowed_unique_misses_stay_non_repetitive() {
        let stream: Vec<BlockId> = (0..40).map(b).collect();
        let w = classify_streams_windowed(&stream, 8);
        assert_eq!(w.recurring, 0);
        assert_eq!(w.non_repetitive, 40);
    }

    #[test]
    fn fractions_sum_to_one() {
        let stream = vec![b(1), b(2), b(3), b(1), b(2), b(9)];
        let (a, c, d) = classify_streams(&stream).fractions();
        assert!((a + c + d - 1.0).abs() < 1e-12);
    }
}
