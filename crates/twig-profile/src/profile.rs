//! The profile data model: BTB-miss samples with LBR-style block histories
//! plus block execution counts.

use twig_serde::{Deserialize, Serialize};
use twig_types::{BlockId, BranchKind};

/// One sampled BTB miss with its preceding basic-block history.
///
/// Mirrors what Intel LBR + the `baclears.any` event capture in production
/// (§3.1): the last (up to) 32 executed basic blocks before the miss, each
/// with a cycle timestamp, oldest first; the missing block itself is the
/// final entry.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct MissSample {
    /// The block whose terminator branch missed in the BTB.
    pub branch_block: BlockId,
    /// Branch classification.
    pub kind: BranchKind,
    /// Cycle of the miss (BPU timestamp).
    pub cycle: u64,
    /// `(block, cycle)` history, oldest first, ending with the miss block.
    pub history: Vec<(BlockId, u64)>,
}

impl MissSample {
    /// Iterates over candidate predecessor blocks that precede the miss by
    /// at least `prefetch_distance` cycles (the timeliness constraint of
    /// §3.1), oldest first. The miss block itself is never a candidate.
    pub fn timely_predecessors(
        &self,
        prefetch_distance: u64,
    ) -> impl Iterator<Item = BlockId> + '_ {
        let deadline = self.cycle.saturating_sub(prefetch_distance);
        let last = self.history.len().saturating_sub(1);
        self.history[..last]
            .iter()
            .filter(move |(_, c)| *c <= deadline)
            .map(|(b, _)| *b)
    }
}

/// A complete execution profile: sampled BTB misses plus per-block
/// execution counts.
///
/// In production the execution counts are estimated from the same sampled
/// LBR records; the simulator gives us exact counts, which removes one
/// source of noise without changing the algorithm.
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct Profile {
    /// Sampled BTB misses.
    pub samples: Vec<MissSample>,
    /// Execution count per block id (dense, indexed by block id).
    pub block_executions: Vec<u64>,
    /// Original instructions covered by the profiling run.
    pub instructions: u64,
    /// Sampling period used (1 = every miss).
    pub sample_period: u32,
}

impl Profile {
    /// Creates an empty profile sized for `num_blocks` blocks.
    pub fn new(num_blocks: usize, sample_period: u32) -> Self {
        Profile {
            samples: Vec::new(),
            block_executions: vec![0; num_blocks],
            instructions: 0,
            sample_period,
        }
    }

    /// Execution count of `block`.
    pub fn executions(&self, block: BlockId) -> u64 {
        self.block_executions.get(block.index()).copied().unwrap_or(0)
    }

    /// Number of sampled misses.
    pub fn num_samples(&self) -> usize {
        self.samples.len()
    }

    /// Distinct miss branch blocks, with their sample counts, hottest first.
    pub fn miss_histogram(&self) -> Vec<(BlockId, u64)> {
        let mut counts = std::collections::HashMap::new();
        for s in &self.samples {
            *counts.entry(s.branch_block).or_insert(0u64) += 1;
        }
        let mut v: Vec<_> = counts.into_iter().collect();
        v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Merges another profile (e.g. from a second profiling shard).
    ///
    /// # Panics
    ///
    /// Panics if the block spaces differ in size.
    pub fn merge(&mut self, other: &Profile) {
        assert_eq!(
            self.block_executions.len(),
            other.block_executions.len(),
            "profiles come from different programs"
        );
        self.samples.extend(other.samples.iter().cloned());
        for (a, b) in self.block_executions.iter_mut().zip(&other.block_executions) {
            *a += b;
        }
        self.instructions += other.instructions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(cycles: &[(u32, u64)], miss_cycle: u64) -> MissSample {
        let mut history: Vec<(BlockId, u64)> =
            cycles.iter().map(|&(b, c)| (BlockId::new(b), c)).collect();
        let branch = BlockId::new(999);
        history.push((branch, miss_cycle));
        MissSample {
            branch_block: branch,
            kind: BranchKind::DirectCall,
            cycle: miss_cycle,
            history,
        }
    }

    #[test]
    fn timely_predecessors_respect_distance() {
        let s = sample(&[(1, 10), (2, 75), (3, 95)], 100);
        let timely: Vec<_> = s.timely_predecessors(20).collect();
        // Deadline = 80: blocks at cycles 10 and 75 qualify; 95 does not.
        assert_eq!(timely, vec![BlockId::new(1), BlockId::new(2)]);
        // Distance 0: everything before the miss qualifies.
        assert_eq!(s.timely_predecessors(0).count(), 3);
        // Huge distance: nothing qualifies.
        assert_eq!(s.timely_predecessors(1000).count(), 0);
    }

    #[test]
    fn miss_block_is_never_a_candidate() {
        let s = sample(&[(1, 10)], 100);
        assert!(s.timely_predecessors(0).all(|b| b != s.branch_block));
    }

    #[test]
    fn histogram_orders_by_count() {
        let mut p = Profile::new(10, 1);
        for (block, n) in [(3u32, 5), (7, 2), (1, 9)] {
            for _ in 0..n {
                p.samples.push(MissSample {
                    branch_block: BlockId::new(block),
                    kind: BranchKind::Conditional,
                    cycle: 0,
                    history: vec![(BlockId::new(block), 0)],
                });
            }
        }
        let h = p.miss_histogram();
        assert_eq!(h[0], (BlockId::new(1), 9));
        assert_eq!(h[1], (BlockId::new(3), 5));
        assert_eq!(h[2], (BlockId::new(7), 2));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Profile::new(4, 1);
        a.block_executions[2] = 10;
        a.instructions = 100;
        let mut b = Profile::new(4, 1);
        b.block_executions[2] = 5;
        b.instructions = 50;
        b.samples.push(MissSample {
            branch_block: BlockId::new(2),
            kind: BranchKind::DirectJump,
            cycle: 1,
            history: vec![(BlockId::new(2), 1)],
        });
        a.merge(&b);
        assert_eq!(a.executions(BlockId::new(2)), 15);
        assert_eq!(a.instructions, 150);
        assert_eq!(a.num_samples(), 1);
    }

    #[test]
    #[should_panic(expected = "different programs")]
    fn merge_rejects_mismatched_programs() {
        let mut a = Profile::new(4, 1);
        let b = Profile::new(5, 1);
        a.merge(&b);
    }

    #[test]
    fn executions_out_of_range_is_zero() {
        let p = Profile::new(2, 1);
        assert_eq!(p.executions(BlockId::new(99)), 0);
    }
}
