//! Compact binary serialization for [`Profile`]s.
//!
//! A JSON profile of a 2M-instruction run weighs tens of megabytes (every
//! miss sample carries a 32-deep history); this varint-packed format is
//! roughly 20× smaller and is what the `twig` CLI writes for `.twpf`
//! files. Layout (little-endian, varint = LEB128):
//!
//! ```text
//! magic   "TWPF"           4 bytes
//! version u8               currently 1
//! period  varint           sampling period
//! instrs  varint           instructions profiled
//! nblocks varint           block-execution array length
//! execs   nblocks × varint
//! nsamp   varint
//! samples nsamp × sample
//!
//! sample:
//!   branch  varint         block id
//!   kind    u8             BranchKind index
//!   cycle   varint
//!   nhist   u8
//!   history nhist × (varint block, varint cycle-delta-from-previous)
//! ```

use twig_bytes::{Buf, BufMut, Bytes, BytesMut};
use twig_types::{BlockId, BranchKind};

use crate::profile::{MissSample, Profile};

const MAGIC: &[u8; 4] = b"TWPF";
const VERSION: u8 = 1;

/// Errors produced when decoding a binary profile.
#[derive(Debug)]
pub enum ProfileCodecError {
    /// Not a binary profile (bad magic).
    BadMagic,
    /// Unsupported version.
    BadVersion(u8),
    /// Stream ended mid-structure.
    Truncated,
    /// Invalid enum encoding.
    BadKind(u8),
    /// A declared collection length exceeds what the remaining bytes
    /// could possibly encode — a corrupt or hostile header. Rejected
    /// *before* allocating, so no input can over-allocate the decoder.
    Oversized {
        /// Which length field was implausible.
        field: &'static str,
        /// The declared element count.
        declared: u64,
        /// The maximum count the remaining bytes could hold.
        budget: u64,
    },
    /// A value field exceeds its target type's range (e.g. a block id
    /// above `u32::MAX`); previously these were silently truncated.
    Overflow {
        /// Which field overflowed.
        field: &'static str,
        /// The decoded raw value.
        value: u64,
    },
}

impl std::fmt::Display for ProfileCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileCodecError::BadMagic => write!(f, "not a twig binary profile"),
            ProfileCodecError::BadVersion(v) => write!(f, "unsupported profile version {v}"),
            ProfileCodecError::Truncated => write!(f, "profile ended unexpectedly"),
            ProfileCodecError::BadKind(k) => write!(f, "invalid branch kind {k}"),
            ProfileCodecError::Oversized {
                field,
                declared,
                budget,
            } => write!(
                f,
                "declared {field} count {declared} exceeds what the remaining \
                 bytes could encode ({budget})"
            ),
            ProfileCodecError::Overflow { field, value } => {
                write!(f, "{field} value {value} out of range")
            }
        }
    }
}

impl std::error::Error for ProfileCodecError {}

/// Encodes a profile into the compact binary format.
///
/// # Examples
///
/// ```
/// use twig_profile::{decode_profile, encode_profile, Profile};
///
/// let profile = Profile::new(16, 1);
/// let bytes = encode_profile(&profile);
/// assert_eq!(decode_profile(&bytes).unwrap(), profile);
/// ```
pub fn encode_profile(profile: &Profile) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + profile.samples.len() * 48);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    put_varint(&mut buf, u64::from(profile.sample_period));
    put_varint(&mut buf, profile.instructions);
    put_varint(&mut buf, profile.block_executions.len() as u64);
    for &e in &profile.block_executions {
        put_varint(&mut buf, e);
    }
    put_varint(&mut buf, profile.samples.len() as u64);
    for s in &profile.samples {
        put_varint(&mut buf, u64::from(s.branch_block.raw()));
        buf.put_u8(s.kind.index() as u8);
        put_varint(&mut buf, s.cycle);
        buf.put_u8(s.history.len() as u8);
        let mut prev_cycle = 0u64;
        for &(block, cycle) in &s.history {
            put_varint(&mut buf, u64::from(block.raw()));
            put_varint(&mut buf, cycle.saturating_sub(prev_cycle));
            prev_cycle = cycle;
        }
    }
    buf.freeze()
}

/// Decodes a binary profile.
///
/// # Errors
///
/// Returns [`ProfileCodecError`] on malformed input.
pub fn decode_profile(mut buf: &[u8]) -> Result<Profile, ProfileCodecError> {
    if buf.len() < 5 || &buf[..4] != MAGIC {
        return Err(ProfileCodecError::BadMagic);
    }
    let version = buf[4];
    if version != VERSION {
        return Err(ProfileCodecError::BadVersion(version));
    }
    buf.advance(5);
    let sample_period = get_u32(&mut buf, "sample period")?;
    let instructions = get_varint(&mut buf)?;
    // Every declared count is validated against the bytes actually left
    // before any allocation sized by it: each block execution is at least
    // one varint byte, each sample at least four bytes (block, kind,
    // cycle, history length), each history entry at least two. A header
    // claiming more than that is corrupt — reject it with a typed error
    // instead of reserving gigabytes.
    let nblocks = get_count(&mut buf, "block execution", 1)?;
    let mut block_executions = Vec::with_capacity(nblocks);
    for _ in 0..nblocks {
        block_executions.push(get_varint(&mut buf)?);
    }
    let nsamples = get_count(&mut buf, "sample", 4)?;
    let mut samples = Vec::with_capacity(nsamples);
    for _ in 0..nsamples {
        let branch_block = BlockId::new(get_u32(&mut buf, "branch block id")?);
        if !buf.has_remaining() {
            return Err(ProfileCodecError::Truncated);
        }
        let kind_idx = buf.get_u8();
        let kind = *BranchKind::ALL
            .get(kind_idx as usize)
            .ok_or(ProfileCodecError::BadKind(kind_idx))?;
        let cycle = get_varint(&mut buf)?;
        if !buf.has_remaining() {
            return Err(ProfileCodecError::Truncated);
        }
        let nhist = buf.get_u8() as usize;
        if buf.remaining() < nhist * 2 {
            return Err(ProfileCodecError::Truncated);
        }
        let mut history = Vec::with_capacity(nhist);
        let mut prev_cycle = 0u64;
        for _ in 0..nhist {
            let block = BlockId::new(get_u32(&mut buf, "history block id")?);
            let delta = get_varint(&mut buf)?;
            prev_cycle = prev_cycle.saturating_add(delta);
            history.push((block, prev_cycle));
        }
        samples.push(MissSample {
            branch_block,
            kind,
            cycle,
            history,
        });
    }
    Ok(Profile {
        samples,
        block_executions,
        instructions,
        sample_period,
    })
}

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Decodes a varint that must fit in `u32` (block ids, sample period).
fn get_u32(buf: &mut &[u8], field: &'static str) -> Result<u32, ProfileCodecError> {
    let value = get_varint(buf)?;
    u32::try_from(value).map_err(|_| ProfileCodecError::Overflow { field, value })
}

/// Decodes a collection length and validates it against the remaining
/// byte budget (`min_bytes` per element) before the caller allocates.
fn get_count(
    buf: &mut &[u8],
    field: &'static str,
    min_bytes: u64,
) -> Result<usize, ProfileCodecError> {
    let declared = get_varint(buf)?;
    let budget = buf.remaining() as u64 / min_bytes;
    if declared > budget {
        return Err(ProfileCodecError::Oversized {
            field,
            declared,
            budget,
        });
    }
    Ok(declared as usize)
}

fn get_varint(buf: &mut &[u8]) -> Result<u64, ProfileCodecError> {
    let mut v = 0u64;
    for shift in (0..64).step_by(7) {
        if !buf.has_remaining() {
            return Err(ProfileCodecError::Truncated);
        }
        let byte = buf.get_u8();
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(ProfileCodecError::Truncated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LbrRecorder;
    use twig_sim::{PlainBtb, SimConfig, Simulator};
    use twig_workload::{InputConfig, ProgramGenerator, Walker, WorkloadSpec};

    fn real_profile() -> Profile {
        let program = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
        let config = SimConfig::default().with_btb_entries(64);
        let events =
            Walker::new(&program, InputConfig::numbered(0)).run_instructions(80_000);
        let mut recorder = LbrRecorder::new(&program, 1);
        recorder.observe_events(&program, events.iter().copied());
        let mut sim = Simulator::new(&program, config, PlainBtb::new(&config));
        sim.run_observed(events, 80_000, &mut recorder);
        recorder.into_profile()
    }

    #[test]
    fn roundtrip_real_profile() {
        let profile = real_profile();
        assert!(profile.num_samples() > 100);
        let bytes = encode_profile(&profile);
        let decoded = decode_profile(&bytes).expect("decode");
        assert_eq!(decoded, profile);
    }

    #[test]
    fn binary_is_much_smaller_than_json() {
        let profile = real_profile();
        let bin = encode_profile(&profile).len();
        // Approximate JSON size via debug formatting length (JSON would be
        // larger still); the binary format must win by a wide margin.
        let textual = format!("{profile:?}").len();
        assert!(
            bin * 4 < textual,
            "binary {bin} bytes vs textual {textual} bytes"
        );
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(matches!(
            decode_profile(b"NOPE\x01"),
            Err(ProfileCodecError::BadMagic)
        ));
        assert!(matches!(
            decode_profile(b"TWPF\x07\x00"),
            Err(ProfileCodecError::BadVersion(7))
        ));
        let bytes = encode_profile(&real_profile());
        for cut in [5, 9, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_profile(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn empty_profile_roundtrips() {
        let p = Profile::new(0, 3);
        let decoded = decode_profile(&encode_profile(&p)).unwrap();
        assert_eq!(decoded.sample_period, 3);
        assert_eq!(decoded, p);
    }

    #[test]
    fn oversized_counts_rejected_before_allocating() {
        // Header declaring u64::MAX blocks with no bytes behind it: must
        // fail with the typed error, instantly, without reserving memory.
        let mut bytes = b"TWPF\x01\x01\x00".to_vec();
        bytes.extend_from_slice(&[0xff; 9]);
        bytes.push(0x01); // varint u64::MAX-ish block count
        assert!(matches!(
            decode_profile(&bytes),
            Err(ProfileCodecError::Oversized { field: "block execution", .. })
        ));
        // Same for the sample count after a valid empty block array.
        let mut bytes = b"TWPF\x01\x01\x00\x00".to_vec();
        bytes.extend_from_slice(&[0xff; 9]);
        bytes.push(0x01);
        assert!(matches!(
            decode_profile(&bytes),
            Err(ProfileCodecError::Oversized { field: "sample", .. })
        ));
    }

    #[test]
    fn out_of_range_values_are_typed_errors_not_truncations() {
        // period=1, instrs=0, nblocks=0, nsamples=1, branch block id
        // 2^40 — above u32::MAX, which the old decoder truncated silently.
        let mut bytes = b"TWPF\x01\x01\x00\x00\x01".to_vec();
        bytes.extend_from_slice(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x40]); // varint 2^40
        bytes.extend_from_slice(&[0x00, 0x00, 0x00]); // kind, cycle, nhist
        assert!(matches!(
            decode_profile(&bytes),
            Err(ProfileCodecError::Overflow { field: "branch block id", .. })
        ));
    }

    #[test]
    fn bad_kind_detected() {
        let mut p = Profile::new(1, 1);
        p.samples.push(MissSample {
            branch_block: BlockId::new(0),
            kind: BranchKind::Return,
            cycle: 5,
            history: vec![(BlockId::new(0), 5)],
        });
        let mut bytes = encode_profile(&p).to_vec();
        // Tail layout: kind, cycle, nhist, hist-block, hist-delta — each
        // one byte for this tiny profile, so the kind sits 5 from the end.
        let kind_pos = bytes.len() - 5;
        bytes[kind_pos] = 99;
        assert!(matches!(
            decode_profile(&bytes),
            Err(ProfileCodecError::BadKind(99))
        ));
    }
}
