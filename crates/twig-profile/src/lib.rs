//! Profiling and workload characterization for the Twig reproduction.
//!
//! This crate reproduces the paper's measurement methodology:
//!
//! - [`LbrRecorder`] — Intel-LBR-style BTB-miss profiles (32-deep
//!   basic-block histories with cycle timestamps, §3.1/§4.1), feeding the
//!   `twig` core's injection-site analysis,
//! - [`ThreeCClassifier`] — compulsory/capacity/conflict classification of
//!   BTB misses (Figs. 4–6),
//! - [`classify_streams`] — temporal-stream classification showing why
//!   record-and-replay prefetchers cannot cover all misses (Fig. 10),
//! - [`SpatialRangeAnalyzer`] — Shotgun's 8-line spatial-range limitation
//!   (Fig. 12),
//! - [`TopDownRow`] — Top-Down slot reporting (Fig. 1).
//!
//! # Example: collect a profile
//!
//! ```
//! use twig_profile::LbrRecorder;
//! use twig_sim::{PlainBtb, SimConfig, Simulator};
//! use twig_workload::{InputConfig, ProgramGenerator, Walker, WorkloadSpec};
//!
//! let program = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
//! let config = SimConfig::default();
//! let events = Walker::new(&program, InputConfig::numbered(0)).run_instructions(20_000);
//! let mut recorder = LbrRecorder::new(&program, 1);
//! recorder.observe_events(&program, events.iter().copied());
//! let mut sim = Simulator::new(&program, config, PlainBtb::new(&config));
//! sim.run_observed(events, 20_000, &mut recorder);
//! let profile = recorder.into_profile();
//! assert!(profile.instructions >= 20_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binfmt;
pub mod lbr;
pub mod profile;
pub mod streams;
pub mod three_c;
pub mod topdown;
pub mod working_set;

pub use binfmt::{decode_profile, encode_profile, ProfileCodecError};
pub use lbr::LbrRecorder;
pub use profile::{MissSample, Profile};
pub use streams::{classify_streams, classify_streams_windowed, StreamBreakdown};
pub use three_c::{ThreeCBreakdown, ThreeCClassifier};
pub use topdown::TopDownRow;
pub use working_set::{SpatialRangeAnalyzer, SpatialRangeStats, SHOTGUN_RANGE_LINES};
