//! 3C classification of BTB misses (Hill & Smith), behind Figs. 4–6.
//!
//! Each real BTB miss is classified by replaying the taken-branch stream
//! through two models simultaneously:
//!
//! - the real set-associative BTB of the configured geometry, and
//! - a fully-associative LRU BTB of the same total capacity.
//!
//! A miss in the real BTB that hits in the fully-associative one is a
//! *conflict* miss; a miss in both is *compulsory* on first reference and
//! *capacity* otherwise.

use std::collections::BTreeMap;

use twig_serde::{Deserialize, Serialize};
use twig_sim::{Btb, BtbGeometry};
use twig_types::{Addr, BranchKind, FxHashMap};

/// Counts of BTB misses by 3C class.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct ThreeCBreakdown {
    /// First-reference misses.
    pub compulsory: u64,
    /// Misses that a fully-associative BTB of the same size would also take.
    pub capacity: u64,
    /// Misses caused by limited associativity.
    pub conflict: u64,
}

impl ThreeCBreakdown {
    /// Total classified misses.
    pub fn total(&self) -> u64 {
        self.compulsory + self.capacity + self.conflict
    }

    /// Fraction helpers for reporting (0 when no misses).
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total();
        if t == 0 {
            return (0.0, 0.0, 0.0);
        }
        let t = t as f64;
        (
            self.compulsory as f64 / t,
            self.capacity as f64 / t,
            self.conflict as f64 / t,
        )
    }
}

/// Fully-associative LRU model with O(log n) stack maintenance.
#[derive(Debug, Default)]
struct FullyAssociativeLru {
    last_use: FxHashMap<Addr, u64>,
    stack: BTreeMap<u64, Addr>,
    time: u64,
    capacity: usize,
}

impl FullyAssociativeLru {
    fn new(capacity: usize) -> Self {
        FullyAssociativeLru {
            capacity,
            ..FullyAssociativeLru::default()
        }
    }

    /// Accesses `pc`; returns whether it was resident.
    fn access(&mut self, pc: Addr) -> bool {
        let hit = match self.last_use.get(&pc) {
            Some(&ts) => {
                self.stack.remove(&ts);
                true
            }
            None => false,
        };
        self.stack.insert(self.time, pc);
        self.last_use.insert(pc, self.time);
        self.time += 1;
        if self.stack.len() > self.capacity {
            let (&oldest, &victim) = self.stack.iter().next().expect("nonempty");
            self.stack.remove(&oldest);
            self.last_use.remove(&victim);
        }
        hit
    }
}

/// Replays a taken-branch stream and classifies the real BTB's misses.
///
/// # Examples
///
/// ```
/// use twig_profile::ThreeCClassifier;
/// use twig_sim::BtbGeometry;
/// use twig_types::{Addr, BranchKind, FxHashMap};
///
/// let mut c = ThreeCClassifier::new(BtbGeometry::new(8, 2));
/// c.access(Addr::new(0x10), Addr::new(0x99), BranchKind::DirectJump);
/// let b = c.into_breakdown();
/// assert_eq!(b.compulsory, 1);
/// ```
#[derive(Debug)]
pub struct ThreeCClassifier {
    real: Btb,
    fully_assoc: FullyAssociativeLru,
    seen: twig_types::FxHashSet<Addr>,
    breakdown: ThreeCBreakdown,
    /// Classify only direct branches, like the paper's MPKI definition.
    direct_only: bool,
}

impl ThreeCClassifier {
    /// Creates a classifier for the given real-BTB geometry, classifying
    /// only direct-branch misses (the paper's Fig. 4 definition).
    pub fn new(geometry: BtbGeometry) -> Self {
        ThreeCClassifier {
            real: Btb::new(geometry),
            fully_assoc: FullyAssociativeLru::new(geometry.entries),
            seen: twig_types::FxHashSet::default(),
            breakdown: ThreeCBreakdown::default(),
            direct_only: true,
        }
    }

    /// Includes indirect branches and returns in the classification.
    pub fn including_indirect(mut self) -> Self {
        self.direct_only = false;
        self
    }

    /// Feeds one *taken* branch execution.
    pub fn access(&mut self, pc: Addr, target: Addr, kind: BranchKind) {
        let classify = !self.direct_only || kind.is_direct();
        let real_hit = self.real.lookup(pc).is_some();
        if !real_hit {
            self.real.insert(pc, target, kind);
        }
        let fa_hit = self.fully_assoc.access(pc);
        let first_ref = self.seen.insert(pc);
        if !classify || real_hit {
            return;
        }
        if first_ref {
            self.breakdown.compulsory += 1;
        } else if fa_hit {
            self.breakdown.conflict += 1;
        } else {
            self.breakdown.capacity += 1;
        }
    }

    /// Finishes classification.
    pub fn into_breakdown(self) -> ThreeCBreakdown {
        self.breakdown
    }

    /// The breakdown so far.
    pub fn breakdown(&self) -> ThreeCBreakdown {
        self.breakdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(v: u64) -> Addr {
        Addr::new(v)
    }

    #[test]
    fn first_touch_is_compulsory() {
        let mut c = ThreeCClassifier::new(BtbGeometry::new(4, 2));
        for i in 0..4u64 {
            c.access(a(0x100 + i * 2), a(1), BranchKind::DirectJump);
        }
        let b = c.breakdown();
        assert_eq!(b.compulsory, 4);
        assert_eq!(b.capacity + b.conflict, 0);
    }

    #[test]
    fn capacity_misses_when_working_set_exceeds_size() {
        // 4-entry BTB, 8 branches round-robin: second pass misses are
        // capacity (the fully-associative model misses too).
        let mut c = ThreeCClassifier::new(BtbGeometry::new(4, 4));
        for _ in 0..3 {
            for i in 0..8u64 {
                c.access(a(0x1000 + i * 64), a(1), BranchKind::Conditional);
            }
        }
        let b = c.breakdown();
        assert_eq!(b.compulsory, 8);
        assert_eq!(b.conflict, 0, "fully-assoc real BTB cannot conflict");
        assert_eq!(b.capacity, 16);
    }

    #[test]
    fn conflict_misses_from_set_imbalance() {
        // Direct-mapped 4-set BTB; two PCs alias to the same set while the
        // fully-associative model (4 entries) holds both.
        let mut c = ThreeCClassifier::new(BtbGeometry::new(4, 1));
        let p1 = a(0x100);
        let p2 = a(0x100 + 4 * 2 * 16); // same set, different tag
        for _ in 0..4 {
            c.access(p1, a(1), BranchKind::DirectCall);
            c.access(p2, a(2), BranchKind::DirectCall);
        }
        let b = c.breakdown();
        assert_eq!(b.compulsory, 2);
        assert!(b.conflict >= 4, "expected ping-pong conflicts, got {b:?}");
        assert_eq!(b.capacity, 0);
    }

    #[test]
    fn direct_only_skips_indirects() {
        let mut c = ThreeCClassifier::new(BtbGeometry::new(4, 2));
        c.access(a(0x10), a(1), BranchKind::IndirectCall);
        c.access(a(0x20), a(1), BranchKind::Return);
        assert_eq!(c.breakdown().total(), 0);
        let mut c = ThreeCClassifier::new(BtbGeometry::new(4, 2)).including_indirect();
        c.access(a(0x10), a(1), BranchKind::IndirectCall);
        assert_eq!(c.breakdown().total(), 1);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut c = ThreeCClassifier::new(BtbGeometry::new(8, 2));
        for i in 0..100u64 {
            c.access(a(0x100 + (i % 20) * 128), a(1), BranchKind::Conditional);
        }
        let b = c.breakdown();
        let (x, y, z) = b.fractions();
        assert!((x + y + z - 1.0).abs() < 1e-12);
    }

    #[test]
    fn larger_fully_assoc_converts_conflicts() {
        // Same trace, two geometries with equal capacity but different
        // associativity: higher associativity must not increase misses.
        let trace: Vec<Addr> = (0..200u64)
            .map(|i| a(0x1000 + (i % 24) * 2048))
            .collect();
        let run = |ways: usize| {
            let mut c = ThreeCClassifier::new(BtbGeometry::new(16, ways));
            for &pc in &trace {
                c.access(pc, a(1), BranchKind::Conditional);
            }
            c.breakdown()
        };
        let low = run(1);
        let high = run(16);
        assert!(high.total() <= low.total());
        assert_eq!(high.conflict, 0);
    }
}
