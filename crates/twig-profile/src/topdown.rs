//! Top-Down pipeline-slot reporting (Fig. 1).
//!
//! The simulator already attributes every issue slot
//! ([`twig_sim::TopDownSlots`]); this module turns those counters into the
//! per-application report rows of Fig. 1 and offers small formatting
//! helpers shared by the experiment harness.

use twig_serde::{Deserialize, Serialize};
use twig_sim::SimStats;

/// One application row of the Fig. 1 characterization.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct TopDownRow {
    /// Application name.
    pub app: String,
    /// Fraction of slots retiring useful work.
    pub retiring: f64,
    /// Fraction of slots stalled on the frontend.
    pub frontend_bound: f64,
    /// Fraction of slots wasted on wrong-path recovery.
    pub bad_speculation: f64,
    /// Fraction of slots stalled on the backend.
    pub backend_bound: f64,
}

impl TopDownRow {
    /// Builds a row from simulator statistics.
    pub fn from_stats(app: &str, stats: &SimStats) -> Self {
        let total = stats.topdown.total().max(1) as f64;
        TopDownRow {
            app: app.to_owned(),
            retiring: stats.topdown.retiring as f64 / total,
            frontend_bound: stats.topdown.frontend_bound as f64 / total,
            bad_speculation: stats.topdown.bad_speculation as f64 / total,
            backend_bound: stats.topdown.backend_bound as f64 / total,
        }
    }

    /// Sanity: the four fractions cover all slots.
    pub fn is_complete(&self) -> bool {
        (self.retiring + self.frontend_bound + self.bad_speculation + self.backend_bound - 1.0)
            .abs()
            < 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_sim::{PlainBtb, SimConfig, Simulator};
    use twig_workload::{InputConfig, ProgramGenerator, Walker, WorkloadSpec};

    #[test]
    fn rows_are_complete_and_frontend_bound_is_visible() {
        let program = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
        let config = SimConfig::default();
        let mut sim = Simulator::new(&program, config, PlainBtb::new(&config));
        let stats = sim.run(
            Walker::new(&program, InputConfig::numbered(0)),
            100_000,
        );
        let row = TopDownRow::from_stats("tiny", &stats);
        assert!(row.is_complete());
        assert!(row.frontend_bound > 0.0);
        assert!(row.retiring > 0.0);
        assert_eq!(row.app, "tiny");
    }

    #[test]
    fn empty_stats_do_not_divide_by_zero() {
        let row = TopDownRow::from_stats("x", &SimStats::default());
        assert_eq!(row.retiring, 0.0);
    }
}
