//! LBR-style profile collection from the simulator's miss observer hook.

use twig_sim::{HistoryEntry, MissObserver};
use twig_types::{BlockId, BranchKind};
use twig_workload::{BlockEvent, Program};

use crate::profile::{MissSample, Profile};

/// Collects BTB-miss samples with their basic-block histories, modelling
/// Intel LBR capture triggered by the `baclears.any` event (§4.1).
///
/// Attach to a simulation run via [`twig_sim::Simulator::run_observed`]:
///
/// ```
/// use twig_profile::LbrRecorder;
/// use twig_sim::{PlainBtb, SimConfig, Simulator};
/// use twig_workload::{InputConfig, ProgramGenerator, Walker, WorkloadSpec};
///
/// let program = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
/// let config = SimConfig::default();
/// let mut recorder = LbrRecorder::new(&program, 1);
/// let mut sim = Simulator::new(&program, config, PlainBtb::new(&config));
/// sim.run_observed(
///     Walker::new(&program, InputConfig::numbered(0)),
///     20_000,
///     &mut recorder,
/// );
/// let profile = recorder.into_profile();
/// assert!(profile.num_samples() > 0);
/// ```
#[derive(Debug)]
pub struct LbrRecorder {
    profile: Profile,
    period: u32,
    countdown: u32,
}

impl LbrRecorder {
    /// Creates a recorder sampling every `period`-th miss (1 = every miss,
    /// matching an aggressive PMU configuration; larger periods model
    /// production sampling overhead limits).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(program: &Program, period: u32) -> Self {
        assert!(period > 0, "sample period must be positive");
        LbrRecorder {
            profile: Profile::new(program.num_blocks(), period),
            period,
            countdown: 0,
        }
    }

    /// Accounts one executed block (exact execution counts; production
    /// tooling estimates these from the same samples). Takes the event by
    /// value — [`BlockEvent`] is `Copy`-sized — so one [`EventSource`]
    /// drives the recorder and the simulator without a collect.
    ///
    /// [`EventSource`]: twig_workload::EventSource
    pub fn observe_event(&mut self, program: &Program, event: BlockEvent) {
        self.profile.block_executions[event.block.index()] += 1;
        self.profile.instructions += u64::from(program.block(event.block).num_instrs);
    }

    /// Accounts a whole event stream at once.
    pub fn observe_events(
        &mut self,
        program: &Program,
        events: impl IntoIterator<Item = BlockEvent>,
    ) {
        for ev in events {
            self.observe_event(program, ev);
        }
    }

    /// Finishes collection.
    pub fn into_profile(self) -> Profile {
        self.profile
    }

    /// The profile collected so far.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }
}

impl MissObserver for LbrRecorder {
    fn on_btb_miss(
        &mut self,
        block: BlockId,
        kind: BranchKind,
        history: &[HistoryEntry],
        cycle: u64,
    ) {
        if self.countdown > 0 {
            self.countdown -= 1;
            return;
        }
        self.countdown = self.period - 1;
        self.profile.samples.push(MissSample {
            branch_block: block,
            kind,
            cycle,
            history: history.iter().map(|h| (h.block, h.cycle)).collect(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_sim::{PlainBtb, SimConfig, Simulator};
    use twig_workload::{InputConfig, ProgramGenerator, Walker, WorkloadSpec};

    fn collect(period: u32, budget: u64) -> (Profile, u64) {
        let program = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
        let config = SimConfig::default().with_btb_entries(512);
        let mut recorder = LbrRecorder::new(&program, period);
        let events: Vec<_> =
            Walker::new(&program, InputConfig::numbered(0)).run_instructions(budget);
        recorder.observe_events(&program, events.iter().copied());
        let mut sim = Simulator::new(&program, config, PlainBtb::new(&config));
        let stats = sim.run_observed(events, budget, &mut recorder);
        (recorder.into_profile(), stats.total_btb_misses())
    }

    #[test]
    fn period_one_records_every_miss() {
        let (profile, misses) = collect(1, 100_000);
        assert_eq!(profile.num_samples() as u64, misses);
        assert!(profile.num_samples() > 0);
    }

    #[test]
    fn larger_period_subsamples() {
        let (all, _) = collect(1, 100_000);
        let (sampled, _) = collect(4, 100_000);
        let ratio = all.num_samples() as f64 / sampled.num_samples().max(1) as f64;
        assert!(
            (3.0..=5.0).contains(&ratio),
            "period-4 sampling ratio {ratio}"
        );
    }

    #[test]
    fn execution_counts_cover_stream() {
        let (profile, _) = collect(1, 50_000);
        assert!(profile.instructions >= 50_000);
        let total: u64 = profile.block_executions.iter().sum();
        assert!(total > 0);
    }

    #[test]
    fn histories_end_with_the_missing_block() {
        let (profile, _) = collect(1, 50_000);
        for s in profile.samples.iter().take(200) {
            assert_eq!(s.history.last().map(|(b, _)| *b), Some(s.branch_block));
            assert!(s.history.len() <= twig_sim::LBR_DEPTH);
        }
    }
}
