//! The end-to-end Twig pipeline: profile → analyze → rewrite → evaluate.
//!
//! Mirrors the paper's methodology (§4.1): collect an LBR profile of the
//! production binary under a *training* input, inject BTB prefetch
//! instructions at link time, and evaluate the rewritten binary under the
//! same or different inputs against the FDIP baseline and an ideal BTB.

use twig_serde::{Deserialize, Serialize};
use twig_profile::{LbrRecorder, Profile};
use twig_sim::{speedup_percent, PlainBtb, SimConfig, SimStats, Simulator};
use twig_workload::{
    BlockEvent, EventSource, InputConfig, LayoutOptions, Program, ProgramGenerator, Walker,
    WorkloadSpec,
};

use crate::analysis::{analyze_profile_with_layout, MissPlan};
use crate::config::TwigConfig;
use crate::report::baseline_relative_coverage;
use crate::rewrite::{apply_rewrite, RewriteOutcome};

/// A Twig-optimized binary with its rewrite metadata.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct OptimizedBinary {
    /// The rewritten program (prefetch ops injected, re-laid-out).
    pub program: Program,
    /// Rewrite statistics (static overhead, op counts).
    pub rewrite: RewriteOutcome,
    /// Number of miss branches planned for prefetching.
    pub planned_misses: usize,
}

/// Evaluation of one optimized binary against the baseline on one input.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct EvalReport {
    /// FDIP baseline statistics.
    pub baseline: SimStats,
    /// Twig statistics.
    pub twig: SimStats,
    /// Ideal-BTB statistics (same input, original binary).
    pub ideal: SimStats,
    /// Twig speedup over the baseline, percent (Fig. 16).
    pub speedup_percent: f64,
    /// Ideal-BTB speedup over the baseline, percent.
    pub ideal_speedup_percent: f64,
    /// Twig as a fraction of the ideal-BTB speedup (Table 2).
    pub pct_of_ideal: f64,
    /// Baseline-relative BTB miss coverage (Fig. 17).
    pub coverage: f64,
    /// Prefetch accuracy (Fig. 19).
    pub accuracy: f64,
    /// Dynamic instruction overhead (Fig. 22).
    pub dynamic_overhead: f64,
}

/// Drives the full profile-guided optimization flow for one application.
///
/// # Examples
///
/// ```
/// use twig::{TwigConfig, TwigOptimizer};
/// use twig_sim::SimConfig;
/// use twig_workload::WorkloadSpec;
///
/// let optimizer = TwigOptimizer::new(TwigConfig::default());
/// let spec = WorkloadSpec::tiny_test();
/// let sim = SimConfig::paper_baseline(spec.backend_extra_cpki)
///     .with_btb_entries(64); // pressure the tiny program's BTB
/// let report = optimizer.run_app(&spec, sim, 0, &[0], 60_000).remove(0);
/// assert!(report.twig.ipc() > 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct TwigOptimizer {
    config: TwigConfig,
}

impl TwigOptimizer {
    /// Creates an optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid.
    pub fn new(config: TwigConfig) -> Self {
        config.validate().expect("invalid twig config");
        TwigOptimizer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &TwigConfig {
        &self.config
    }

    /// Collects an LBR profile of `program` under `input` (baseline run).
    pub fn collect_profile(
        &self,
        program: &Program,
        sim_config: SimConfig,
        input: InputConfig,
        instructions: u64,
    ) -> Profile {
        let events = Walker::new(program, input).run_instructions(instructions);
        self.collect_profile_from_events(program, sim_config, &events, instructions)
    }

    /// Collects an LBR profile from an already-materialized event stream
    /// (the experiment harness shares one walker trace across figures via
    /// its artifact cache instead of re-walking per profile).
    pub fn collect_profile_from_events(
        &self,
        program: &Program,
        sim_config: SimConfig,
        events: &[BlockEvent],
        instructions: u64,
    ) -> Profile {
        self.collect_profile_and_stats_from_events(program, sim_config, events, instructions)
            .0
    }

    /// [`Self::collect_profile_from_events`], also returning the
    /// statistics of the underlying simulation. The observer is passive,
    /// so these are exactly the stats of a plain FDIP baseline run over
    /// the same events — callers that need both get the baseline run for
    /// free with the profile.
    pub fn collect_profile_and_stats_from_events(
        &self,
        program: &Program,
        sim_config: SimConfig,
        events: &[BlockEvent],
        instructions: u64,
    ) -> (Profile, SimStats) {
        let mut recorder = LbrRecorder::new(program, 1);
        recorder.observe_events(program, events.iter().copied());
        let mut sim = Simulator::new(program, sim_config, PlainBtb::new(&sim_config));
        let stats = sim.run_observed(events.iter().copied(), instructions, &mut recorder);
        (recorder.into_profile(), stats)
    }

    /// [`Self::collect_profile_and_stats_from_events`] over a streaming
    /// [`EventSource`] — the out-of-core path. The profile pass consumes
    /// one full pass of the source, the source is reset, and the
    /// simulation replays the identical stream (replay determinism is the
    /// source contract), so profile and stats agree exactly with the
    /// materialized variant on the same events.
    pub fn collect_profile_and_stats_from_source<S: EventSource>(
        &self,
        program: &Program,
        sim_config: SimConfig,
        source: &mut S,
        instructions: u64,
    ) -> (Profile, SimStats) {
        let mut recorder = LbrRecorder::new(program, 1);
        recorder.observe_events(program, source.by_ref());
        source.reset();
        let mut sim = Simulator::new(program, sim_config, PlainBtb::new(&sim_config));
        let stats = sim.run_observed(source.by_ref(), instructions, &mut recorder);
        (recorder.into_profile(), stats)
    }

    /// Analyzes a profile into miss plans (no layout awareness; prefer
    /// [`Self::analyze_for`] when the program is at hand).
    pub fn analyze(&self, profile: &Profile) -> Vec<MissPlan> {
        analyze_profile_with_layout(profile, &self.config, None)
    }

    /// Analyzes a profile with encodability-aware site selection against
    /// the program's layout.
    pub fn analyze_for(&self, profile: &Profile, program: &Program) -> Vec<MissPlan> {
        analyze_profile_with_layout(profile, &self.config, Some(program))
    }

    /// Rewrites a fresh copy of the program according to `plans`.
    pub fn rewrite(
        &self,
        generator: &ProgramGenerator,
        plans: &[MissPlan],
    ) -> OptimizedBinary {
        self.rewrite_program(generator.generate(), &generator.layout_options(), plans)
    }

    /// Rewrites a clone of an already-generated pristine (op-free) program.
    ///
    /// Generation is deterministic, so this produces the same binary as
    /// [`Self::rewrite`] with that program's generator — without re-running
    /// generation. Sweeps that rewrite the same application once per
    /// configuration point use this with their shared pristine copy.
    pub fn rewrite_of(
        &self,
        pristine: &Program,
        layout: &LayoutOptions,
        plans: &[MissPlan],
    ) -> OptimizedBinary {
        self.rewrite_program(pristine.clone(), layout, plans)
    }

    fn rewrite_program(
        &self,
        mut program: Program,
        layout: &LayoutOptions,
        plans: &[MissPlan],
    ) -> OptimizedBinary {
        let rewrite = apply_rewrite(&mut program, plans, &self.config, layout);
        OptimizedBinary {
            program,
            rewrite,
            planned_misses: plans.len(),
        }
    }

    /// Evaluates an optimized binary against the baseline and the ideal BTB
    /// under one input.
    pub fn evaluate(
        &self,
        original: &Program,
        optimized: &OptimizedBinary,
        sim_config: SimConfig,
        input: InputConfig,
        instructions: u64,
    ) -> EvalReport {
        let events = Walker::new(original, input).run_instructions(instructions);
        self.evaluate_with_events(original, optimized, sim_config, &events, instructions)
    }

    /// Evaluates an optimized binary over an already-materialized event
    /// stream (cache-friendly variant of [`Self::evaluate`]).
    pub fn evaluate_with_events(
        &self,
        original: &Program,
        optimized: &OptimizedBinary,
        sim_config: SimConfig,
        events: &[BlockEvent],
        instructions: u64,
    ) -> EvalReport {
        let (baseline, ideal) =
            Self::reference_stats(original, sim_config, events, instructions);
        self.evaluate_optimized(optimized, sim_config, events, instructions, baseline, ideal)
    }

    /// Simulates the FDIP baseline and the ideal BTB for `original` over
    /// `events` — the two reference runs every evaluation is scored
    /// against. They depend only on the original binary and the input,
    /// not on the optimized variant, so callers evaluating several
    /// rewrites of the same program under the same input compute them
    /// once and feed them to [`Self::evaluate_optimized`] repeatedly.
    pub fn reference_stats(
        original: &Program,
        sim_config: SimConfig,
        events: &[BlockEvent],
        instructions: u64,
    ) -> (SimStats, SimStats) {
        let mut base_sim = Simulator::new(original, sim_config, PlainBtb::new(&sim_config));
        let baseline = base_sim.run(events.iter().copied(), instructions);

        let ideal_cfg = SimConfig {
            ideal_btb: true,
            ..sim_config
        };
        let mut ideal_sim = Simulator::new(original, ideal_cfg, PlainBtb::new(&ideal_cfg));
        let ideal = ideal_sim.run(events.iter().copied(), instructions);
        (baseline, ideal)
    }

    /// [`Self::reference_stats`] over a streaming [`EventSource`]: the
    /// baseline pass runs, the source resets, the ideal pass replays.
    pub fn reference_stats_from_source<S: EventSource>(
        original: &Program,
        sim_config: SimConfig,
        source: &mut S,
        instructions: u64,
    ) -> (SimStats, SimStats) {
        let mut base_sim = Simulator::new(original, sim_config, PlainBtb::new(&sim_config));
        let baseline = base_sim.run(source.by_ref(), instructions);
        source.reset();
        let ideal_cfg = SimConfig {
            ideal_btb: true,
            ..sim_config
        };
        let mut ideal_sim = Simulator::new(original, ideal_cfg, PlainBtb::new(&ideal_cfg));
        let ideal = ideal_sim.run(source.by_ref(), instructions);
        (baseline, ideal)
    }

    /// Scores one optimized binary against precomputed reference runs
    /// (see [`Self::reference_stats`]); runs only the Twig simulation.
    pub fn evaluate_optimized(
        &self,
        optimized: &OptimizedBinary,
        sim_config: SimConfig,
        events: &[BlockEvent],
        instructions: u64,
        baseline: SimStats,
        ideal: SimStats,
    ) -> EvalReport {
        // The optimized binary replays the same control flow (block ids are
        // stable across the rewrite).
        let mut twig_sim = Simulator::new(
            &optimized.program,
            sim_config,
            PlainBtb::new(&sim_config),
        );
        let twig = twig_sim.run(events.iter().copied(), instructions);
        self.score(twig, baseline, ideal)
    }

    /// [`Self::evaluate_optimized`] over a streaming [`EventSource`]
    /// (resets the source first, so it composes after a reference pass).
    pub fn evaluate_optimized_from_source<S: EventSource>(
        &self,
        optimized: &OptimizedBinary,
        sim_config: SimConfig,
        source: &mut S,
        instructions: u64,
        baseline: SimStats,
        ideal: SimStats,
    ) -> EvalReport {
        source.reset();
        let mut twig_sim = Simulator::new(
            &optimized.program,
            sim_config,
            PlainBtb::new(&sim_config),
        );
        let twig = twig_sim.run(source.by_ref(), instructions);
        self.score(twig, baseline, ideal)
    }

    /// [`Self::evaluate_with_events`] over a streaming [`EventSource`]:
    /// three bounded-memory passes (baseline, ideal, Twig) over one
    /// resettable stream.
    pub fn evaluate_with_source<S: EventSource>(
        &self,
        original: &Program,
        optimized: &OptimizedBinary,
        sim_config: SimConfig,
        source: &mut S,
        instructions: u64,
    ) -> EvalReport {
        let (baseline, ideal) =
            Self::reference_stats_from_source(original, sim_config, source, instructions);
        self.evaluate_optimized_from_source(
            optimized,
            sim_config,
            source,
            instructions,
            baseline,
            ideal,
        )
    }

    /// Scores a Twig run against precomputed reference stats.
    fn score(&self, twig: SimStats, baseline: SimStats, ideal: SimStats) -> EvalReport {
        let speedup = speedup_percent(&baseline, &twig);
        let ideal_speedup = speedup_percent(&baseline, &ideal);
        EvalReport {
            speedup_percent: speedup,
            ideal_speedup_percent: ideal_speedup,
            pct_of_ideal: if ideal_speedup > 0.0 {
                speedup / ideal_speedup
            } else {
                0.0
            },
            coverage: baseline_relative_coverage(&baseline, &twig),
            accuracy: twig.prefetch_accuracy(),
            dynamic_overhead: twig.dynamic_overhead(),
            baseline,
            twig,
            ideal,
        }
    }

    /// Convenience: full flow for one application spec — profile on input
    /// `train`, rewrite, evaluate on each input of `test`.
    pub fn run_app(
        &self,
        spec: &WorkloadSpec,
        sim_config: SimConfig,
        train: u32,
        test: &[u32],
        instructions: u64,
    ) -> Vec<EvalReport> {
        let generator = ProgramGenerator::new(spec.clone());
        let program = generator.generate();
        let profile = self.collect_profile(
            &program,
            sim_config,
            InputConfig::numbered(train),
            instructions,
        );
        let plans = self.analyze_for(&profile, &program);
        let optimized = self.rewrite(&generator, &plans);
        test.iter()
            .map(|&i| {
                self.evaluate(
                    &program,
                    &optimized,
                    sim_config,
                    InputConfig::numbered(i),
                    instructions,
                )
            })
            .collect()
    }
}

impl Default for TwigOptimizer {
    fn default() -> Self {
        TwigOptimizer::new(TwigConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pressured_config(spec: &WorkloadSpec) -> SimConfig {
        // The tiny test program has only a few hundred branch sites; shrink
        // the BTB so capacity misses exist to optimize away (at 256 entries
        // the whole working set fits and only compulsory misses remain).
        SimConfig::paper_baseline(spec.backend_extra_cpki).with_btb_entries(64)
    }

    #[test]
    fn end_to_end_improves_ipc_and_covers_misses() {
        let spec = WorkloadSpec::tiny_test();
        let sim = pressured_config(&spec);
        let optimizer = TwigOptimizer::default();
        let report = optimizer.run_app(&spec, sim, 0, &[0], 200_000).remove(0);
        assert!(
            report.speedup_percent > 0.0,
            "Twig must speed up the pressured baseline: {:.2}%",
            report.speedup_percent
        );
        assert!(
            report.coverage > 0.2,
            "coverage too low: {:.3}",
            report.coverage
        );
        assert!(report.twig.retired_prefetch_ops > 0);
        assert!(report.dynamic_overhead > 0.0);
        assert!(report.accuracy > 0.0);
        assert!(report.ideal_speedup_percent >= report.speedup_percent * 0.5);
    }

    #[test]
    fn cross_input_generalizes() {
        let spec = WorkloadSpec::tiny_test();
        let sim = pressured_config(&spec);
        let optimizer = TwigOptimizer::default();
        let reports = optimizer.run_app(&spec, sim, 0, &[1, 2], 200_000);
        for r in &reports {
            assert!(
                r.coverage > 0.1,
                "cross-input coverage collapsed: {:.3}",
                r.coverage
            );
        }
    }

    #[test]
    fn source_paths_match_materialized_paths() {
        use twig_workload::{ColumnarReader, ColumnarSource, MemSource};

        let spec = WorkloadSpec::tiny_test();
        let generator = ProgramGenerator::new(spec.clone());
        let program = generator.generate();
        let sim = pressured_config(&spec);
        let optimizer = TwigOptimizer::default();
        let budget = 60_000u64;
        let events =
            Walker::new(&program, InputConfig::numbered(0)).run_instructions(budget);

        let (profile, stats) =
            optimizer.collect_profile_and_stats_from_events(&program, sim, &events, budget);
        let plans = optimizer.analyze_for(&profile, &program);
        let optimized = optimizer.rewrite(&generator, &plans);
        let report = optimizer.evaluate_with_events(&program, &optimized, sim, &events, budget);

        // In-memory source and out-of-core columnar source must reproduce
        // the materialized path exactly — profiles, stats, and reports.
        let columnar = twig_workload::columnar::encode_columnar_chunked(&events, 4096);
        let mut sources: Vec<twig_workload::AnySource> = vec![
            MemSource::from(events.clone()).into(),
            ColumnarSource::from_reader(std::sync::Arc::new(
                ColumnarReader::from_bytes(columnar).unwrap(),
            ))
            .into(),
        ];
        for source in &mut sources {
            let (p2, s2) = optimizer
                .collect_profile_and_stats_from_source(&program, sim, source, budget);
            assert_eq!(p2, profile);
            assert_eq!(s2, stats);
            source.reset();
            let r2 =
                optimizer.evaluate_with_source(&program, &optimized, sim, source, budget);
            assert_eq!(r2, report);
        }
    }

    #[test]
    fn profile_reflects_workload() {
        let spec = WorkloadSpec::tiny_test();
        let generator = ProgramGenerator::new(spec.clone());
        let program = generator.generate();
        let sim = pressured_config(&spec);
        let optimizer = TwigOptimizer::default();
        let profile =
            optimizer.collect_profile(&program, sim, InputConfig::numbered(0), 100_000);
        assert!(profile.num_samples() > 0);
        assert!(profile.instructions >= 100_000);
        let plans = optimizer.analyze(&profile);
        assert!(!plans.is_empty());
    }
}
