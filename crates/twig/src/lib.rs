//! **Twig: profile-guided BTB prefetching** — a from-scratch Rust
//! reproduction of Khan et al., MICRO 2021.
//!
//! Data-center applications overwhelm the Branch Target Buffer: their
//! branch working sets are several times the capacity of even an 8K-entry
//! BTB, and every miss on a taken branch stalls the decoupled FDIP
//! frontend. Twig fixes this in *software*: it analyzes a production
//! execution profile (Intel-LBR-style miss histories), finds program
//! locations that predict each miss both *timely* (≥ prefetch-distance
//! cycles ahead) and *accurately* (high conditional probability), and
//! injects two new instructions into the binary at link time:
//!
//! - `brprefetch` — prefetch one BTB entry, operands compressed as 12-bit
//!   signed offsets ([`compress`]),
//! - `brcoalesce` — prefetch up to *n* entries from a sorted key-value
//!   table with one bitmask-selected instruction ([`coalesce`]).
//!
//! # End-to-end flow
//!
//! ```
//! use twig::{TwigConfig, TwigOptimizer};
//! use twig_sim::SimConfig;
//! use twig_workload::WorkloadSpec;
//!
//! let optimizer = TwigOptimizer::new(TwigConfig::default());
//! let spec = WorkloadSpec::tiny_test();
//! let sim = SimConfig::paper_baseline(spec.backend_extra_cpki)
//!     .with_btb_entries(64);
//! // Profile on input #0, evaluate the rewritten binary on input #1.
//! let report = optimizer.run_app(&spec, sim, 0, &[1], 60_000).remove(0);
//! println!(
//!     "Twig: {:+.1}% (ideal BTB {:+.1}%), coverage {:.0}%",
//!     report.speedup_percent,
//!     report.ideal_speedup_percent,
//!     report.coverage * 100.0
//! );
//! ```
//!
//! The crates below this one supply every substrate the paper depends on:
//! `twig-workload` (synthetic data-center applications), `twig-sim` (the
//! decoupled-frontend simulator), `twig-prefetchers` (Shotgun and
//! Confluence baselines), and `twig-profile` (LBR capture and
//! characterization analyses).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod coalesce;
pub mod compress;
pub mod config;
pub mod pipeline;
pub mod report;
pub mod rewrite;

pub use analysis::{analyze_profile, analyze_profile_with_layout, MissPlan, SelectedSite};
pub use coalesce::{build_coalesce_plan, CoalescePlan};
pub use compress::{is_encodable, offsets, OffsetCdf};
pub use config::TwigConfig;
pub use pipeline::{EvalReport, OptimizedBinary, TwigOptimizer};
pub use report::{baseline_relative_coverage, MeanStd};
pub use rewrite::{apply_rewrite, RewriteOutcome};
