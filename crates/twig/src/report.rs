//! Cross-run metrics and report aggregation helpers.

use twig_serde::{Deserialize, Serialize};
use twig_sim::SimStats;

/// Baseline-relative BTB miss coverage (the Fig. 17 definition):
/// the fraction of the *baseline's* real BTB misses that the prefetching
/// system eliminated.
///
/// A system that trades one kind of miss for another (e.g. Shotgun's fixed
/// partition overflowing on conditionals) gets credit only for the net
/// reduction; a negative net reduction clamps to zero.
///
/// # Examples
///
/// ```
/// use twig::baseline_relative_coverage;
/// use twig_sim::SimStats;
///
/// let mut base = SimStats::default();
/// base.btb_misses[0] = 100;
/// let mut sys = SimStats::default();
/// sys.btb_misses[0] = 30;
/// assert!((baseline_relative_coverage(&base, &sys) - 0.7).abs() < 1e-12);
/// ```
pub fn baseline_relative_coverage(baseline: &SimStats, system: &SimStats) -> f64 {
    let base = baseline.total_btb_misses();
    if base == 0 {
        return 0.0;
    }
    let sys = system.total_btb_misses();
    if sys >= base {
        return 0.0;
    }
    (base - sys) as f64 / base as f64
}

/// Summary statistics over a set of per-input results (Table 2's
/// average ± standard deviation columns).
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct MeanStd {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
}

impl MeanStd {
    /// Computes mean and population standard deviation of `values`.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return MeanStd::default();
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var =
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
        MeanStd {
            mean,
            std: var.sqrt(),
        }
    }
}

impl std::fmt::Display for MeanStd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2} ± {:.2}", self.mean, self.std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_clamps_and_guards() {
        let mut base = SimStats::default();
        base.btb_misses[0] = 50;
        let mut worse = SimStats::default();
        worse.btb_misses[0] = 80;
        assert_eq!(baseline_relative_coverage(&base, &worse), 0.0);
        assert_eq!(
            baseline_relative_coverage(&SimStats::default(), &worse),
            0.0
        );
        let mut perfect = SimStats::default();
        perfect.btb_misses[0] = 0;
        assert_eq!(baseline_relative_coverage(&base, &perfect), 1.0);
    }

    #[test]
    fn mean_std_matches_hand_computation() {
        let ms = MeanStd::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((ms.mean - 5.0).abs() < 1e-12);
        assert!((ms.std - 2.0).abs() < 1e-12);
        assert_eq!(ms.to_string(), "5.00 ± 2.00");
    }

    #[test]
    fn empty_values_are_zero() {
        let ms = MeanStd::of(&[]);
        assert_eq!(ms.mean, 0.0);
        assert_eq!(ms.std, 0.0);
    }
}
