//! BTB prefetch coalescing (§3.2, Fig. 27).
//!
//! Branch entries whose offsets cannot be encoded in a `brprefetch` are
//! stored as key-value pairs in a table appended to the text segment,
//! sorted by branch address so spatially close entries sit at adjacent
//! indices. A single `brcoalesce` instruction carries a base index plus an
//! *n*-bit bitmask and prefetches every selected entry — amortizing the
//! instruction-footprint cost over up to *n* BTB entries.

use std::collections::HashMap;

use twig_serde::{Deserialize, Serialize};
use twig_types::{BlockId, PrefetchOp};
use twig_workload::Program;

/// The coalesce table plus per-site `brcoalesce` operations.
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct CoalescePlan {
    /// Table entries (branch blocks), sorted by branch address.
    pub table: Vec<BlockId>,
    /// Per injection site: the emitted `brcoalesce` operations.
    pub ops_per_site: HashMap<BlockId, Vec<PrefetchOp>>,
}

impl CoalescePlan {
    /// Total `brcoalesce` instructions emitted.
    pub fn num_ops(&self) -> usize {
        self.ops_per_site.values().map(Vec::len).sum()
    }

    /// Total BTB entries reachable through the emitted ops.
    pub fn prefetched_entries(&self) -> u64 {
        self.ops_per_site
            .values()
            .flatten()
            .map(|op| u64::from(op.prefetch_count()))
            .sum()
    }

    /// Average entries prefetched per `brcoalesce` (the coalescing factor).
    pub fn coalescing_factor(&self) -> f64 {
        let ops = self.num_ops();
        if ops == 0 {
            return 0.0;
        }
        self.prefetched_entries() as f64 / ops as f64
    }
}

/// Builds the coalesce table and per-site ops for the given
/// `(site, branches)` assignments that could not be encoded directly.
///
/// Entries are sorted by branch address (block-id order coincides with
/// address order under the sequential layout); each site's entries are
/// greedily grouped into windows of `bitmask_bits` consecutive table
/// indices, one `brcoalesce` per window (§3.2).
///
/// # Examples
///
/// ```
/// use twig::build_coalesce_plan;
/// use twig_types::BlockId;
/// use twig_workload::{ProgramGenerator, WorkloadSpec};
///
/// let program = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
/// let site = BlockId::new(0);
/// let branches: Vec<BlockId> = (1..4).map(BlockId::new).collect();
/// let plan = build_coalesce_plan(&program, &[(site, branches)], 8);
/// assert_eq!(plan.table.len(), 3);
/// assert_eq!(plan.num_ops(), 1); // three adjacent entries, one bitmask
/// ```
pub fn build_coalesce_plan(
    program: &Program,
    assignments: &[(BlockId, Vec<BlockId>)],
    bitmask_bits: u32,
) -> CoalescePlan {
    assert!((1..=64).contains(&bitmask_bits));
    // Distinct branches, sorted by branch address.
    let mut table: Vec<BlockId> = assignments
        .iter()
        .flat_map(|(_, branches)| branches.iter().copied())
        .collect();
    table.sort_unstable_by_key(|&b| program.block(b).branch_pc());
    table.dedup();

    let index_of: HashMap<BlockId, u32> = table
        .iter()
        .enumerate()
        .map(|(i, &b)| (b, i as u32))
        .collect();

    let mut ops_per_site: HashMap<BlockId, Vec<PrefetchOp>> = HashMap::new();
    for (site, branches) in assignments {
        if branches.is_empty() {
            continue;
        }
        let mut idxs: Vec<u32> = branches.iter().map(|b| index_of[b]).collect();
        idxs.sort_unstable();
        idxs.dedup();
        let ops = ops_per_site.entry(*site).or_default();
        let mut i = 0;
        while i < idxs.len() {
            let base = idxs[i];
            let mut bitmask: u64 = 0;
            while i < idxs.len() && idxs[i] - base < bitmask_bits {
                bitmask |= 1 << (idxs[i] - base);
                i += 1;
            }
            ops.push(PrefetchOp::BrCoalesce {
                base_index: base,
                bitmask,
            });
        }
    }
    CoalescePlan {
        table,
        ops_per_site,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_workload::{ProgramGenerator, WorkloadSpec};

    fn b(n: u32) -> BlockId {
        BlockId::new(n)
    }

    fn program() -> Program {
        ProgramGenerator::new(WorkloadSpec::tiny_test()).generate()
    }

    #[test]
    fn table_is_sorted_by_branch_address() {
        let p = program();
        let branches: Vec<BlockId> = vec![b(40), b(3), b(17), b(29)];
        let plan = build_coalesce_plan(&p, &[(b(0), branches)], 8);
        for pair in plan.table.windows(2) {
            assert!(
                p.block(pair[0]).branch_pc() < p.block(pair[1]).branch_pc(),
                "table not sorted"
            );
        }
    }

    #[test]
    fn adjacent_entries_share_one_op() {
        let p = program();
        let branches: Vec<BlockId> = (1..=6).map(b).collect();
        let plan = build_coalesce_plan(&p, &[(b(0), branches)], 8);
        assert_eq!(plan.num_ops(), 1);
        assert_eq!(plan.prefetched_entries(), 6);
        assert!((plan.coalescing_factor() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn narrow_bitmask_splits_windows() {
        let p = program();
        let branches: Vec<BlockId> = (1..=6).map(b).collect();
        let plan = build_coalesce_plan(&p, &[(b(0), branches.clone())], 2);
        assert_eq!(plan.num_ops(), 3);
        let one_bit = build_coalesce_plan(&p, &[(b(0), branches)], 1);
        assert_eq!(one_bit.num_ops(), 6, "1-bit mask degenerates to one op each");
    }

    #[test]
    fn sparse_indices_split_windows() {
        let p = program();
        // Two sites: one owns entries clustered low, the other high; the
        // table interleaves all, so sparse sites need several ops.
        let site_a = (b(0), vec![b(1), b(2), b(60)]);
        let site_b = (b(5), (10..40).step_by(3).map(b).collect::<Vec<_>>());
        let plan = build_coalesce_plan(&p, &[site_a, site_b], 4);
        // Site A's entry b(60) is far (in table index space) from b(1/2).
        let a_ops = &plan.ops_per_site[&b(0)];
        assert!(a_ops.len() >= 2, "{a_ops:?}");
        // All bitmask bits stay within the window width.
        for ops in plan.ops_per_site.values() {
            for op in ops {
                if let PrefetchOp::BrCoalesce { bitmask, .. } = op {
                    assert!(bitmask.leading_zeros() >= 64 - 4);
                    assert!(bitmask & 1 == 1, "base entry always selected");
                }
            }
        }
    }

    #[test]
    fn shared_branches_are_deduplicated_in_table() {
        let p = program();
        let plan = build_coalesce_plan(
            &p,
            &[(b(0), vec![b(7), b(8)]), (b(1), vec![b(8), b(9)])],
            8,
        );
        assert_eq!(plan.table.len(), 3);
        assert_eq!(plan.ops_per_site.len(), 2);
    }

    #[test]
    fn empty_assignments_yield_empty_plan() {
        let p = program();
        let plan = build_coalesce_plan(&p, &[], 8);
        assert!(plan.table.is_empty());
        assert_eq!(plan.num_ops(), 0);
        assert_eq!(plan.coalescing_factor(), 0.0);
    }
}
