//! Link-time binary rewriting: injecting prefetch operations and
//! re-laying-out the program (Figs. 21–22, Table 3's overhead columns).
//!
//! Injection changes block sizes, which shifts addresses, which can change
//! which pairs are offset-encodable — so the rewriter iterates: classify
//! against the current layout, inject, re-layout, re-verify, demoting any
//! pair that stopped fitting to the coalesce table. Two or three passes
//! always converge because demotion is monotone.

use std::collections::HashMap;

use twig_serde::{Deserialize, Serialize};
use twig_types::{BlockId, PrefetchOp};
use twig_workload::{layout::assign_layout, LayoutOptions, Program, StaticStats};

use crate::analysis::MissPlan;
use crate::coalesce::build_coalesce_plan;
use crate::compress::is_encodable;
use crate::config::TwigConfig;

/// Summary of one rewrite.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct RewriteOutcome {
    /// `brprefetch` instructions injected.
    pub brprefetch_ops: u64,
    /// `brcoalesce` instructions injected.
    pub brcoalesce_ops: u64,
    /// Key-value pairs in the coalesce table.
    pub coalesce_entries: u64,
    /// Distinct blocks that received at least one op.
    pub injection_sites: u64,
    /// `(site, branch)` pairs dropped (unencodable with coalescing
    /// disabled, or beyond the per-block op budget).
    pub dropped_pairs: u64,
    /// Text bytes before the rewrite.
    pub text_bytes_before: u64,
    /// Text bytes after the rewrite (including the coalesce table).
    pub text_bytes_after: u64,
}

impl RewriteOutcome {
    /// Static size overhead: added bytes over the original text
    /// (Fig. 21 / Table 3's Overhead column).
    pub fn static_overhead(&self) -> f64 {
        if self.text_bytes_before == 0 {
            return 0.0;
        }
        (self.text_bytes_after - self.text_bytes_before) as f64 / self.text_bytes_before as f64
    }

    /// Bytes added by the rewrite.
    pub fn added_bytes(&self) -> u64 {
        self.text_bytes_after - self.text_bytes_before
    }
}

/// Applies the miss plans to `program`: injects `brprefetch`/`brcoalesce`
/// ops at the selected sites, builds the coalesce table, and re-lays-out
/// the binary.
///
/// The input program must be op-free (a freshly generated binary); apply
/// exactly one rewrite per program instance.
///
/// # Panics
///
/// Panics if `config` is invalid or `program` already contains ops.
pub fn apply_rewrite(
    program: &mut Program,
    plans: &[MissPlan],
    config: &TwigConfig,
    layout: &LayoutOptions,
) -> RewriteOutcome {
    config.validate().expect("invalid twig config");
    assert!(
        program.blocks().all(|(_, b)| b.prefetch_ops.is_empty()),
        "program was already rewritten"
    );
    let before = StaticStats::of(program);

    // Desired (site -> branches) assignments, respecting per-block budget;
    // plans arrive hottest-first so the budget favours hot misses.
    let mut per_site: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
    let mut dropped = 0u64;
    for plan in plans {
        for site in &plan.sites {
            let list = per_site.entry(site.site).or_default();
            if list.len() < config.max_ops_per_block {
                list.push(plan.branch_block);
            } else {
                dropped += 1;
            }
        }
    }

    // Iterate classification until stable (demotion is monotone).
    let mut demoted: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
    // Blocks given ops in the previous pass — the only ones that need
    // clearing before a rebuild (the input program is asserted op-free,
    // so walking every block of a large binary per pass is pure waste).
    let mut op_sites: Vec<BlockId> = Vec::new();
    for _pass in 0..3 {
        // Classify against the current layout.
        let mut direct: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for (&site, branches) in &per_site {
            for &branch in branches {
                let already_demoted = demoted
                    .get(&site)
                    .is_some_and(|v| v.contains(&branch));
                if !already_demoted && is_encodable(program, site, branch, config.offset_bits) {
                    direct.entry(site).or_default().push(branch);
                } else if !already_demoted {
                    demoted.entry(site).or_default().push(branch);
                }
            }
        }
        // Rebuild ops from scratch.
        let assignments: Vec<(BlockId, Vec<BlockId>)> = demoted
            .iter()
            .map(|(&s, v)| (s, v.clone()))
            .collect();
        let coalesce = if config.enable_coalescing {
            build_coalesce_plan(program, &assignments, config.coalesce_bitmask_bits)
        } else {
            crate::coalesce::CoalescePlan::default()
        };
        for id in op_sites.drain(..) {
            program.block_mut(id).prefetch_ops.clear();
        }
        for (&site, branches) in &direct {
            let ops = &mut program.block_mut(site).prefetch_ops;
            for &branch in branches {
                ops.push(PrefetchOp::BrPrefetch {
                    branch_block: branch,
                });
            }
            op_sites.push(site);
        }
        for (site, ops) in &coalesce.ops_per_site {
            program
                .block_mut(*site)
                .prefetch_ops
                .extend(ops.iter().copied());
            op_sites.push(*site);
        }
        program.set_coalesce_table(coalesce.table.clone());
        assign_layout(program, layout);

        // Converged when every direct pair still encodes.
        let stable = direct.iter().all(|(&site, branches)| {
            branches
                .iter()
                .all(|&b| is_encodable(program, site, b, config.offset_bits))
        });
        if stable {
            break;
        }
    }

    // Account the outcome.
    let mut outcome = RewriteOutcome {
        text_bytes_before: before.text_bytes,
        text_bytes_after: StaticStats::of(program).text_bytes,
        coalesce_entries: program.coalesce_table().len() as u64,
        dropped_pairs: dropped,
        ..RewriteOutcome::default()
    };
    for (_, block) in program.blocks() {
        if !block.prefetch_ops.is_empty() {
            outcome.injection_sites += 1;
        }
        for op in &block.prefetch_ops {
            match op {
                PrefetchOp::BrPrefetch { .. } => outcome.brprefetch_ops += 1,
                PrefetchOp::BrCoalesce { .. } => outcome.brcoalesce_ops += 1,
            }
        }
    }
    if !config.enable_coalescing {
        outcome.dropped_pairs += demoted.values().map(|v| v.len() as u64).sum::<u64>();
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::SelectedSite;
    use twig_workload::{ProgramGenerator, WorkloadSpec};

    fn generator() -> ProgramGenerator {
        ProgramGenerator::new(WorkloadSpec::tiny_test())
    }

    fn direct_branches(program: &Program, n: usize) -> Vec<BlockId> {
        program
            .blocks()
            .filter(|(id, b)| {
                b.branch_kind().is_some_and(|k| k.is_direct())
                    && program.direct_branch_target_addr(*id).is_some()
            })
            .map(|(id, _)| id)
            .take(n)
            .collect()
    }

    fn plan(site: BlockId, branch: BlockId) -> MissPlan {
        MissPlan {
            branch_block: branch,
            total_samples: 10,
            sites: vec![SelectedSite {
                site,
                covered_samples: 10,
                conditional_prob: 0.9,
            }],
        }
    }

    #[test]
    fn rewrite_injects_and_relayouts() {
        let g = generator();
        let mut program = g.generate();
        let branches = direct_branches(&program, 4);
        let site = program.function(program.entry_function()).entry;
        let plans: Vec<MissPlan> = branches.iter().map(|&b| plan(site, b)).collect();
        let outcome = apply_rewrite(
            &mut program,
            &plans,
            &TwigConfig::default(),
            &g.layout_options(),
        );
        assert_eq!(
            outcome.brprefetch_ops + outcome.brcoalesce_ops,
            program
                .blocks()
                .map(|(_, b)| b.prefetch_ops.len() as u64)
                .sum::<u64>()
        );
        assert!(outcome.added_bytes() > 0);
        assert!(outcome.static_overhead() > 0.0);
        assert_eq!(outcome.injection_sites, 1);
        // Layout stays contiguous after injection.
        for func in program.functions() {
            let ids: Vec<BlockId> = func.block_ids().collect();
            for pair in ids.windows(2) {
                assert_eq!(program.block(pair[0]).end_addr(), program.block(pair[1]).addr);
            }
        }
    }

    #[test]
    fn far_branches_go_through_the_coalesce_table() {
        let g = generator();
        let mut program = g.generate();
        // Site in app region, branches in the library region: unencodable.
        let site = program.function(program.entry_function()).entry;
        let lib_branches: Vec<BlockId> = program
            .blocks()
            .filter(|(id, b)| {
                b.addr.raw() > 0x7000_0000_0000
                    && b.branch_kind().is_some_and(|k| k.is_direct())
                    && program.direct_branch_target_addr(*id).is_some()
            })
            .map(|(id, _)| id)
            .take(3)
            .collect();
        assert!(!lib_branches.is_empty());
        let plans: Vec<MissPlan> = lib_branches.iter().map(|&b| plan(site, b)).collect();
        let outcome = apply_rewrite(
            &mut program,
            &plans,
            &TwigConfig::default(),
            &g.layout_options(),
        );
        assert_eq!(outcome.brprefetch_ops, 0);
        assert!(outcome.brcoalesce_ops >= 1);
        assert_eq!(outcome.coalesce_entries, lib_branches.len() as u64);
    }

    #[test]
    fn coalescing_disabled_drops_far_branches() {
        let g = generator();
        let mut program = g.generate();
        let site = program.function(program.entry_function()).entry;
        let lib_branch = program
            .blocks()
            .find(|(id, b)| {
                b.addr.raw() > 0x7000_0000_0000
                    && b.branch_kind().is_some_and(|k| k.is_direct())
                    && program.direct_branch_target_addr(*id).is_some()
            })
            .map(|(id, _)| id)
            .unwrap();
        let outcome = apply_rewrite(
            &mut program,
            &[plan(site, lib_branch)],
            &TwigConfig::software_prefetch_only(),
            &g.layout_options(),
        );
        assert_eq!(outcome.brprefetch_ops, 0);
        assert_eq!(outcome.brcoalesce_ops, 0);
        assert_eq!(outcome.coalesce_entries, 0);
        assert_eq!(outcome.dropped_pairs, 1);
    }

    #[test]
    fn per_block_budget_is_respected() {
        let g = generator();
        let mut program = g.generate();
        let branches = direct_branches(&program, 10);
        let site = program.function(program.entry_function()).entry;
        let plans: Vec<MissPlan> = branches.iter().map(|&b| plan(site, b)).collect();
        let config = TwigConfig {
            max_ops_per_block: 3,
            ..TwigConfig::default()
        };
        let outcome = apply_rewrite(&mut program, &plans, &config, &g.layout_options());
        assert!(program.block(site).prefetch_ops.len() <= 3);
        assert_eq!(outcome.dropped_pairs, 7);
    }

    #[test]
    #[should_panic(expected = "already rewritten")]
    fn double_rewrite_is_rejected() {
        let g = generator();
        let mut program = g.generate();
        let branches = direct_branches(&program, 1);
        let site = program.function(program.entry_function()).entry;
        let plans = vec![plan(site, branches[0])];
        apply_rewrite(&mut program, &plans, &TwigConfig::default(), &g.layout_options());
        apply_rewrite(&mut program, &plans, &TwigConfig::default(), &g.layout_options());
    }

    #[test]
    fn empty_plans_are_a_noop() {
        let g = generator();
        let mut program = g.generate();
        let before = program.clone();
        let outcome = apply_rewrite(&mut program, &[], &TwigConfig::default(), &g.layout_options());
        assert_eq!(outcome.added_bytes(), 0);
        assert_eq!(program, before);
    }
}
