//! Prefetch target compression: offset encodability (§3.1, Figs. 14–15).
//!
//! `brprefetch` stores two signed deltas instead of absolute 48-bit
//! pointers: the *prefetch-to-branch offset* (injection-site PC to the
//! prefetched branch PC) and the *branch-to-target offset* (branch PC to
//! its taken target). The paper shows 12 bits cover ~80% of both; the
//! remainder goes through the coalesce table (§3.2).

use twig_serde::{Deserialize, Serialize};
use twig_types::{Addr, BlockId};
use twig_workload::Program;

/// Whether the `(site, branch)` pair can be encoded by a `brprefetch`
/// with `offset_bits`-wide signed offset fields under the program's
/// current layout.
///
/// The prefetch-to-branch offset is measured from the injection site's
/// block start (where injected ops are placed) to the prefetched branch's
/// PC; the branch-to-target offset from the branch PC to its statically
/// known taken target.
///
/// Returns `false` for branches without a static target (indirect
/// branches and returns cannot be software-prefetched at all).
pub fn is_encodable(
    program: &Program,
    site: BlockId,
    branch: BlockId,
    offset_bits: u32,
) -> bool {
    let Some((to_branch, to_target)) = offsets(program, site, branch) else {
        return false;
    };
    signed_fits(to_branch, offset_bits) && signed_fits(to_target, offset_bits)
}

/// The `(prefetch_to_branch, branch_to_target)` signed byte offsets for a
/// candidate pair, or `None` when the branch has no static target.
pub fn offsets(program: &Program, site: BlockId, branch: BlockId) -> Option<(i64, i64)> {
    let target = program.direct_branch_target_addr(branch)?;
    let site_addr = program.block(site).addr;
    let branch_pc = program.block(branch).branch_pc();
    Some((site_addr.offset_to(branch_pc), branch_pc.offset_to(target)))
}

#[inline]
fn signed_fits(v: i64, bits: u32) -> bool {
    debug_assert!((1..=63).contains(&bits));
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    (min..=max).contains(&v)
}

/// Cumulative distribution of required offset bit-widths (Figs. 14–15).
///
/// Index `i` holds the number of observations needing at most `i` bits
/// (two's complement, sign included), for `i` in `0..=49`.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct OffsetCdf {
    counts: Vec<u64>,
    total: u64,
}

impl OffsetCdf {
    /// Creates an empty distribution.
    pub fn new() -> Self {
        OffsetCdf {
            counts: vec![0; 50],
            total: 0,
        }
    }

    /// Records one signed offset with a weight (e.g. the miss-sample count
    /// it represents).
    pub fn record(&mut self, offset: i64, weight: u64) {
        let bits = required_bits(offset).min(49) as usize;
        self.counts[bits] += weight;
        self.total += weight;
    }

    /// Fraction of observations encodable within `bits` bits.
    pub fn coverage_at(&self, bits: u32) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let covered: u64 = self.counts[..=(bits as usize).min(49)].iter().sum();
        covered as f64 / self.total as f64
    }

    /// Total recorded weight.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `(bits, cumulative fraction)` series for plotting.
    pub fn series(&self) -> Vec<(u32, f64)> {
        (0..50).map(|b| (b, self.coverage_at(b))).collect()
    }
}

impl Default for OffsetCdf {
    fn default() -> Self {
        OffsetCdf::new()
    }
}

/// Bits needed to store `v` in two's complement, sign bit included.
fn required_bits(v: i64) -> u32 {
    if v >= 0 {
        64 - v.leading_zeros() + 1
    } else {
        64 - v.leading_ones() + 1
    }
}

/// Convenience: the distance helper used when an op's concrete placement
/// matters (the op sits at the site block's start).
pub fn op_address(program: &Program, site: BlockId) -> Addr {
    program.block(site).addr
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_workload::{ProgramGenerator, Terminator, WorkloadSpec};

    #[test]
    fn fits_boundaries() {
        assert!(signed_fits(2047, 12));
        assert!(!signed_fits(2048, 12));
        assert!(signed_fits(-2048, 12));
        assert!(!signed_fits(-2049, 12));
        assert!(signed_fits(0, 2));
    }

    #[test]
    fn required_bits_boundaries() {
        assert_eq!(required_bits(0), 1);
        assert_eq!(required_bits(2047), 12);
        assert_eq!(required_bits(2048), 13);
        assert_eq!(required_bits(-2048), 12);
        assert_eq!(required_bits(-2049), 13);
    }

    #[test]
    fn cdf_is_monotone_and_normalized() {
        let mut cdf = OffsetCdf::new();
        for v in [-5000i64, -100, 0, 3, 900, 40_000, 1 << 30] {
            cdf.record(v, 2);
        }
        let series = cdf.series();
        for pair in series.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
        assert!((cdf.coverage_at(49) - 1.0).abs() < 1e-12);
        assert_eq!(cdf.total(), 14);
    }

    #[test]
    fn nearby_pairs_encode_distant_pairs_do_not() {
        let program = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
        // A branch and its own block as "site": offset is tiny.
        let (branch, _) = program
            .blocks()
            .find(|(id, b)| {
                b.branch_kind().is_some_and(|k| k.is_direct())
                    && program.direct_branch_target_addr(*id).is_some()
                    && matches!(b.term, Terminator::Conditional { .. })
            })
            .unwrap();
        assert!(is_encodable(&program, branch, branch, 12));
        // A site in the app region prefetching a library-region branch:
        // the delta spans gigabytes and cannot encode.
        let lib_branch = program
            .blocks()
            .find(|(id, b)| {
                b.addr.raw() > 0x7000_0000_0000
                    && b.branch_kind().is_some_and(|k| k.is_direct())
                    && program.direct_branch_target_addr(*id).is_some()
            })
            .map(|(id, _)| id)
            .expect("library branch exists");
        assert!(!is_encodable(&program, branch, lib_branch, 12));
        // ... but a 48-bit field swallows it.
        assert!(is_encodable(&program, branch, lib_branch, 48));
    }

    #[test]
    fn indirect_branches_are_never_encodable() {
        let program = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
        let site = program.function(program.entry_function()).entry;
        let ret = program
            .blocks()
            .find(|(_, b)| matches!(b.term, Terminator::Return))
            .map(|(id, _)| id)
            .unwrap();
        assert!(offsets(&program, site, ret).is_none());
        assert!(!is_encodable(&program, site, ret, 48));
    }

    #[test]
    fn empty_cdf_is_zero() {
        assert_eq!(OffsetCdf::new().coverage_at(12), 0.0);
    }
}
