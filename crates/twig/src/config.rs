//! Twig's design parameters.

use twig_serde::{Deserialize, Serialize};

/// Tunable parameters of the Twig optimization pipeline.
///
/// Defaults follow the paper: 20-cycle prefetch distance (§3.1, Fig. 26),
/// 12-bit signed offsets (Figs. 14–15), and an 8-bit coalesce bitmask
/// (Fig. 27).
///
/// # Examples
///
/// ```
/// use twig::TwigConfig;
///
/// let config = TwigConfig::default();
/// assert_eq!(config.prefetch_distance, 20);
/// assert_eq!(config.offset_bits, 12);
/// assert_eq!(config.coalesce_bitmask_bits, 8);
/// ```
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct TwigConfig {
    /// Minimum cycles between the injection site and the miss (timeliness
    /// constraint; Fig. 26 sweeps 0–50).
    pub prefetch_distance: u64,
    /// Minimum conditional probability `P(miss at A | exec B)` for a
    /// candidate to be considered accurate enough (accuracy constraint).
    pub min_conditional_prob: f64,
    /// Maximum injection sites selected per miss branch.
    pub max_sites_per_miss: usize,
    /// Maximum prefetch operations injected into one basic block
    /// (bounds code bloat per block).
    pub max_ops_per_block: usize,
    /// Signed-offset field width of `brprefetch` (both the
    /// prefetch-to-branch and branch-to-target offsets must fit).
    pub offset_bits: u32,
    /// Bitmask width of `brcoalesce` (Fig. 27 sweeps 1–64).
    pub coalesce_bitmask_bits: u32,
    /// Optimize the hottest miss branches until this fraction of all miss
    /// samples is covered (the long tail is not worth the code bloat).
    pub hot_sample_coverage: f64,
    /// Minimum samples a selected site must cover.
    pub min_covered_samples: u64,
    /// Emit `brcoalesce` for too-large-to-encode branches (§3.2). When
    /// disabled, unencodable prefetches are dropped — the "software BTB
    /// prefetching only" configuration of Fig. 18.
    pub enable_coalescing: bool,
}

impl Default for TwigConfig {
    fn default() -> Self {
        TwigConfig {
            prefetch_distance: 20,
            min_conditional_prob: 0.05,
            max_sites_per_miss: 3,
            max_ops_per_block: 6,
            offset_bits: 12,
            coalesce_bitmask_bits: 8,
            hot_sample_coverage: 0.99,
            min_covered_samples: 1,
            enable_coalescing: true,
        }
    }
}

impl TwigConfig {
    /// The Fig. 18 ablation: software BTB prefetching without coalescing.
    pub fn software_prefetch_only() -> Self {
        TwigConfig {
            enable_coalescing: false,
            ..TwigConfig::default()
        }
    }

    /// Validates cross-field constraints.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.min_conditional_prob) {
            return Err("min_conditional_prob must be a probability".into());
        }
        if !(0.0..=1.0).contains(&self.hot_sample_coverage) {
            return Err("hot_sample_coverage must be a fraction".into());
        }
        if self.max_sites_per_miss == 0 || self.max_ops_per_block == 0 {
            return Err("site/op limits must be positive".into());
        }
        if !(2..=48).contains(&self.offset_bits) {
            return Err("offset_bits must be within 2..=48".into());
        }
        if !(1..=64).contains(&self.coalesce_bitmask_bits) {
            return Err("coalesce_bitmask_bits must be within 1..=64".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper() {
        let c = TwigConfig::default();
        c.validate().unwrap();
        assert!(c.enable_coalescing);
    }

    #[test]
    fn ablation_disables_coalescing_only() {
        let c = TwigConfig::software_prefetch_only();
        c.validate().unwrap();
        assert!(!c.enable_coalescing);
        assert_eq!(c.prefetch_distance, TwigConfig::default().prefetch_distance);
    }

    #[test]
    fn validation_rejects_bad_fields() {
        let bad = [
            TwigConfig {
                min_conditional_prob: 1.5,
                ..TwigConfig::default()
            },
            TwigConfig {
                offset_bits: 64,
                ..TwigConfig::default()
            },
            TwigConfig {
                coalesce_bitmask_bits: 0,
                ..TwigConfig::default()
            },
            TwigConfig {
                max_sites_per_miss: 0,
                ..TwigConfig::default()
            },
        ];
        for c in bad {
            assert!(c.validate().is_err(), "{c:?} should be invalid");
        }
    }
}
