//! Injection-site analysis: from a BTB-miss profile to accurate, timely
//! prefetch injection sites (§3.1, Fig. 13).
//!
//! For every miss-prone branch `A`, Twig considers as candidate injection
//! sites the basic blocks that precede `A`'s misses by at least the
//! *prefetch distance* (timeliness) and computes the conditional
//! probability `P(miss at A | exec B)` for each candidate `B` (accuracy).
//! Each miss sample is then assigned to its highest-probability timely
//! candidate, and the sites covering the most samples are selected.

use std::collections::HashMap;

use twig_serde::{Deserialize, Serialize};
use twig_profile::Profile;
use twig_types::BlockId;
use twig_workload::Program;

use crate::compress::is_encodable;
use crate::config::TwigConfig;

/// One selected injection site for one miss branch.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct SelectedSite {
    /// Block receiving the `brprefetch`/`brcoalesce`.
    pub site: BlockId,
    /// Miss samples this site is expected to cover.
    pub covered_samples: u64,
    /// `P(miss at A | exec site)` from the profile.
    pub conditional_prob: f64,
}

/// The prefetch plan for one miss-prone branch.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct MissPlan {
    /// The branch whose BTB entry will be prefetched.
    pub branch_block: BlockId,
    /// Total miss samples observed for this branch.
    pub total_samples: u64,
    /// Selected injection sites, highest coverage first.
    pub sites: Vec<SelectedSite>,
}

impl MissPlan {
    /// Samples covered by the selected sites.
    pub fn covered_samples(&self) -> u64 {
        self.sites.iter().map(|s| s.covered_samples).sum()
    }
}

/// Analyzes a profile into per-branch prefetch plans, hottest miss branches
/// first, covering [`TwigConfig::hot_sample_coverage`] of the sample mass.
///
/// When `program` is provided, site selection is *encodability-aware*:
/// among candidates passing the accuracy filter, a sample votes for an
/// offset-encodable site (one a plain `brprefetch` can reach) over a more
/// probable but far one — keeping most prefetches on the cheap encoding
/// path, as the paper's 12-bit offset distributions (Figs. 14–15) imply.
///
/// # Examples
///
/// See [`crate::TwigOptimizer`] for the end-to-end flow; unit-level usage:
///
/// ```
/// use twig::{analyze_profile_with_layout, TwigConfig};
/// use twig_profile::Profile;
///
/// let plans = analyze_profile_with_layout(
///     &Profile::new(8, 1),
///     &TwigConfig::default(),
///     None,
/// );
/// assert!(plans.is_empty()); // empty profile, nothing to plan
/// ```
pub fn analyze_profile_with_layout(
    profile: &Profile,
    config: &TwigConfig,
    program: Option<&Program>,
) -> Vec<MissPlan> {
    // Group sample indices by miss branch.
    let mut by_branch: HashMap<BlockId, Vec<usize>> = HashMap::new();
    for (i, s) in profile.samples.iter().enumerate() {
        by_branch.entry(s.branch_block).or_default().push(i);
    }
    // Hottest branches until the sample-coverage goal.
    let histogram = profile.miss_histogram();
    let total_mass: u64 = histogram.iter().map(|(_, n)| n).sum();
    let goal = (total_mass as f64 * config.hot_sample_coverage).ceil() as u64;

    let mut plans = Vec::new();
    let mut covered_mass = 0u64;
    let mut scratch = Scratch::new(profile.block_executions.len());
    for (branch, mass) in histogram {
        if covered_mass >= goal {
            break;
        }
        covered_mass += mass;
        let sample_idxs = &by_branch[&branch];
        if let Some(plan) =
            plan_for_branch(branch, sample_idxs, profile, config, program, &mut scratch)
        {
            plans.push(plan);
        }
    }
    plans
}

/// Dense per-block working state reused across branches: candidate sets
/// are small relative to the program, so every pass walks a `touched`
/// list and resets only what it dirtied, keeping the per-branch cost
/// proportional to the candidate count rather than the program size.
struct Scratch {
    /// Samples in which the block appears timely (for the current branch).
    appears: Vec<u64>,
    /// `P(miss | exec block)` — valid only while `accurate` is set.
    prob: Vec<f64>,
    /// Passed the accuracy filter.
    accurate: Vec<bool>,
    /// Offset-encodable from this site (valid only while `accurate`).
    encodable: Vec<bool>,
    /// Samples voting for this block as their best site.
    votes: Vec<u64>,
    /// Blocks with nonzero `appears` — everything to reset afterwards.
    touched: Vec<BlockId>,
    /// Flat storage for the per-sample candidate lists.
    arena: Vec<BlockId>,
    /// `arena` range of each sample's candidates.
    ranges: Vec<(u32, u32)>,
}

impl Scratch {
    fn new(num_blocks: usize) -> Self {
        Scratch {
            appears: vec![0; num_blocks],
            prob: vec![0.0; num_blocks],
            accurate: vec![false; num_blocks],
            encodable: vec![false; num_blocks],
            votes: vec![0; num_blocks],
            touched: Vec::new(),
            arena: Vec::new(),
            ranges: Vec::new(),
        }
    }

    fn reset(&mut self) {
        for b in self.touched.drain(..) {
            let i = b.index();
            self.appears[i] = 0;
            self.accurate[i] = false;
            self.encodable[i] = false;
            self.votes[i] = 0;
        }
        self.arena.clear();
        self.ranges.clear();
    }
}

/// [`analyze_profile_with_layout`] without encodability awareness.
pub fn analyze_profile(profile: &Profile, config: &TwigConfig) -> Vec<MissPlan> {
    analyze_profile_with_layout(profile, config, None)
}

/// Builds the plan for one miss branch, or `None` if no candidate satisfies
/// both constraints.
///
/// All per-candidate state lives in `scratch`'s dense arrays (indexed by
/// block), and per-sample candidate lists in its flat arena — the inner
/// loops over thousands of samples touch no hash maps and make no
/// per-sample allocations. The selection semantics are unchanged.
fn plan_for_branch(
    branch: BlockId,
    sample_idxs: &[usize],
    profile: &Profile,
    config: &TwigConfig,
    program: Option<&Program>,
    scratch: &mut Scratch,
) -> Option<MissPlan> {
    // Count, per candidate, in how many samples it appears timely
    // (at most once per sample).
    for &i in sample_idxs {
        let sample = &profile.samples[i];
        let start = scratch.arena.len();
        scratch
            .arena
            .extend(sample.timely_predecessors(config.prefetch_distance));
        let cands = &mut scratch.arena[start..];
        cands.sort_unstable();
        let mut len = start;
        for k in start..scratch.arena.len() {
            let c = scratch.arena[k];
            if len > start && scratch.arena[len - 1] == c {
                continue; // dedup within the sorted run
            }
            // Blocks outside the profile's execution table have zero
            // executions and could never pass the accuracy filter; drop
            // them here instead of indexing past the dense arrays.
            if c.index() >= scratch.appears.len() {
                continue;
            }
            scratch.arena[len] = c;
            len += 1;
            if scratch.appears[c.index()] == 0 {
                scratch.touched.push(c);
            }
            scratch.appears[c.index()] += 1;
        }
        scratch.arena.truncate(len);
        scratch.ranges.push((start as u32, len as u32));
    }

    // Conditional probability per candidate; apply the accuracy filter.
    let mut any_accurate = false;
    for t in 0..scratch.touched.len() {
        let c = scratch.touched[t];
        let execs = profile.executions(c);
        if execs == 0 {
            continue;
        }
        let p = (scratch.appears[c.index()] as f64 / execs as f64).min(1.0);
        if p >= config.min_conditional_prob {
            scratch.prob[c.index()] = p;
            scratch.accurate[c.index()] = true;
            // Prefer sites a plain `brprefetch` can encode when a layout
            // is available (same accuracy tier, cheaper instruction).
            scratch.encodable[c.index()] = match program {
                Some(prog) => is_encodable(prog, c, branch, config.offset_bits),
                None => true,
            };
            any_accurate = true;
        }
    }
    if !any_accurate {
        scratch.reset();
        return None;
    }

    // Each sample votes for its highest-probability accurate candidate
    // (ties broken toward encodable sites, then the lower block id).
    for r in 0..scratch.ranges.len() {
        let (start, end) = scratch.ranges[r];
        let mut best: Option<BlockId> = None;
        for k in start as usize..end as usize {
            let c = scratch.arena[k];
            if !scratch.accurate[c.index()] {
                continue;
            }
            let wins = match best {
                None => true,
                Some(b) => {
                    scratch.encodable[c.index()]
                        .cmp(&scratch.encodable[b.index()])
                        .then(scratch.prob[c.index()].total_cmp(&scratch.prob[b.index()]))
                        .then(b.cmp(&c))
                        .is_gt()
                }
            };
            if wins {
                best = Some(c);
            }
        }
        if let Some(site) = best {
            scratch.votes[site.index()] += 1;
        }
    }

    // Keep the strongest sites.
    let mut sites: Vec<SelectedSite> = scratch
        .touched
        .iter()
        .filter_map(|&site| {
            let covered = scratch.votes[site.index()];
            (covered > 0 && covered >= config.min_covered_samples).then(|| SelectedSite {
                site,
                covered_samples: covered,
                conditional_prob: scratch.prob[site.index()],
            })
        })
        .collect();
    sites.sort_unstable_by(|a, b| {
        b.covered_samples
            .cmp(&a.covered_samples)
            .then(a.site.cmp(&b.site))
    });
    sites.truncate(config.max_sites_per_miss);
    scratch.reset();
    if sites.is_empty() {
        return None;
    }
    Some(MissPlan {
        branch_block: branch,
        total_samples: sample_idxs.len() as u64,
        sites,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_profile::MissSample;
    use twig_types::BranchKind;

    fn b(n: u32) -> BlockId {
        BlockId::new(n)
    }

    /// Builds a profile that mirrors the paper's Fig. 13 example: miss
    /// branch `A` (block 100) with predecessors B/C/D/E of differing
    /// execution counts and coverable-miss counts.
    fn fig13_profile() -> Profile {
        let mut p = Profile::new(200, 1);
        // Execution counts (Fig. 13b): B=16, C=8, D=6, E=3.
        p.block_executions[10] = 16; // B
        p.block_executions[11] = 8; // C
        p.block_executions[12] = 6; // D
        p.block_executions[13] = 3; // E
        let mk = |cands: &[u32]| MissSample {
            branch_block: b(100),
            kind: BranchKind::DirectCall,
            cycle: 100,
            history: cands
                .iter()
                .map(|&c| (b(c), 50)) // timely: 50 cycles before the miss
                .chain(std::iter::once((b(100), 100)))
                .collect(),
        };
        // 4 misses coverable by C (prob 0.5) of which some also see B
        // (prob 0.25); 2 misses coverable by E (0.66) and D (0.33).
        for _ in 0..4 {
            p.samples.push(mk(&[10, 11]));
        }
        for _ in 0..2 {
            p.samples.push(mk(&[12, 13]));
        }
        p.instructions = 1000;
        p
    }

    #[test]
    fn fig13_selects_c_and_e() {
        let config = TwigConfig::default();
        let plans = analyze_profile(&fig13_profile(), &config);
        assert_eq!(plans.len(), 1);
        let plan = &plans[0];
        assert_eq!(plan.branch_block, b(100));
        assert_eq!(plan.total_samples, 6);
        let sites: Vec<BlockId> = plan.sites.iter().map(|s| s.site).collect();
        // C (P=0.5) wins over B (P=0.25) for the first group; E (P=0.66)
        // wins over D (P=0.33) for the second — the paper's outcome.
        assert!(sites.contains(&b(11)), "C selected: {sites:?}");
        assert!(sites.contains(&b(13)), "E selected: {sites:?}");
        assert!(!sites.contains(&b(10)), "B not selected");
        assert!(!sites.contains(&b(12)), "D not selected");
        assert_eq!(plan.covered_samples(), 6);
    }

    #[test]
    fn timeliness_excludes_close_predecessors() {
        let mut p = Profile::new(20, 1);
        p.block_executions[1] = 4;
        for _ in 0..4 {
            p.samples.push(MissSample {
                branch_block: b(9),
                kind: BranchKind::Conditional,
                cycle: 100,
                // Candidate at cycle 95: only 5 cycles ahead of the miss.
                history: vec![(b(1), 95), (b(9), 100)],
            });
        }
        let plans = analyze_profile(&p, &TwigConfig::default());
        assert!(plans.is_empty(), "too-late candidate must be rejected");
        // With prefetch distance 0 it becomes usable.
        let lax = TwigConfig {
            prefetch_distance: 0,
            ..TwigConfig::default()
        };
        assert_eq!(analyze_profile(&p, &lax).len(), 1);
    }

    #[test]
    fn accuracy_filter_rejects_low_probability_sites() {
        let mut p = Profile::new(20, 1);
        // Candidate executes 1000 times but only 3 misses follow it.
        p.block_executions[1] = 1000;
        for _ in 0..3 {
            p.samples.push(MissSample {
                branch_block: b(9),
                kind: BranchKind::DirectJump,
                cycle: 100,
                history: vec![(b(1), 10), (b(9), 100)],
            });
        }
        let plans = analyze_profile(&p, &TwigConfig::default());
        assert!(plans.is_empty(), "P=0.003 must fail the accuracy filter");
    }

    #[test]
    fn min_covered_samples_prunes_noise() {
        let mut p = Profile::new(20, 1);
        p.block_executions[1] = 1;
        p.samples.push(MissSample {
            branch_block: b(9),
            kind: BranchKind::DirectJump,
            cycle: 100,
            history: vec![(b(1), 10), (b(9), 100)],
        });
        // One sample, min_covered_samples = 2: rejected.
        let strict = TwigConfig {
            min_covered_samples: 2,
            ..TwigConfig::default()
        };
        assert!(analyze_profile(&p, &strict).is_empty());
        // The default (1) accepts it.
        assert_eq!(analyze_profile(&p, &TwigConfig::default()).len(), 1);
    }

    #[test]
    fn hot_coverage_skips_the_long_tail() {
        let mut p = Profile::new(400, 1);
        p.block_executions[1] = 100;
        // One hot branch with 98 samples, 49 cold branches with 1 each.
        for _ in 0..98 {
            p.samples.push(MissSample {
                branch_block: b(300),
                kind: BranchKind::DirectCall,
                cycle: 100,
                history: vec![(b(1), 10), (b(300), 100)],
            });
        }
        for i in 0..49u32 {
            p.samples.push(MissSample {
                branch_block: b(301 + i),
                kind: BranchKind::DirectCall,
                cycle: 100,
                history: vec![(b(1), 10), (b(301 + i), 100)],
            });
        }
        let config = TwigConfig {
            hot_sample_coverage: 0.6,
            min_covered_samples: 1,
            min_conditional_prob: 0.0,
            ..TwigConfig::default()
        };
        let plans = analyze_profile(&p, &config);
        // 98/147 = 0.67 >= 0.6: the hot branch alone satisfies coverage.
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].branch_block, b(300));
    }

    #[test]
    fn layout_awareness_prefers_encodable_sites() {
        use twig_workload::{ProgramGenerator, WorkloadSpec};
        // Build a profile where a miss branch has two equally accurate
        // candidates: one nearby (offset-encodable) and one in the distant
        // library region. Layout-aware analysis must choose the near one.
        let program = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
        let miss = program
            .blocks()
            .find(|(id, b)| {
                b.addr.raw() < 0x7000_0000_0000
                    && b.branch_kind().is_some_and(|k| k.is_direct())
                    && program.direct_branch_target_addr(*id).is_some()
                    && crate::compress::is_encodable(&program, *id, *id, 12)
            })
            .map(|(id, _)| id)
            .unwrap();
        // Near candidate: the immediately preceding block (tiny offset).
        let near = BlockId::new(miss.raw().saturating_sub(1));
        // Far candidate: a block in the library region.
        let far = program
            .blocks()
            .find(|(_, b)| b.addr.raw() > 0x7000_0000_0000)
            .map(|(id, _)| id)
            .unwrap();
        assert!(crate::compress::is_encodable(&program, near, miss, 12));
        assert!(!crate::compress::is_encodable(&program, far, miss, 12));

        let mut p = Profile::new(program.num_blocks(), 1);
        p.block_executions[near.index()] = 10;
        // Give the far candidate *better* accuracy so only layout awareness
        // can override it.
        p.block_executions[far.index()] = 5;
        for _ in 0..5 {
            p.samples.push(MissSample {
                branch_block: miss,
                kind: BranchKind::DirectJump,
                cycle: 100,
                history: vec![(near, 10), (far, 20), (miss, 100)],
            });
        }
        let config = TwigConfig::default();
        let blind = analyze_profile_with_layout(&p, &config, None);
        assert_eq!(blind[0].sites[0].site, far, "higher P wins blind");
        let aware = analyze_profile_with_layout(&p, &config, Some(&program));
        assert_eq!(
            aware[0].sites[0].site, near,
            "encodable site preferred with layout"
        );
    }

    #[test]
    fn sites_capped_per_miss() {
        let mut p = Profile::new(50, 1);
        for c in 1..=6u32 {
            p.block_executions[c as usize] = 4;
        }
        // Each sample sees exactly one distinct candidate.
        for c in 1..=6u32 {
            for _ in 0..4 {
                p.samples.push(MissSample {
                    branch_block: b(40),
                    kind: BranchKind::DirectJump,
                    cycle: 100,
                    history: vec![(b(c), 10), (b(40), 100)],
                });
            }
        }
        let config = TwigConfig {
            max_sites_per_miss: 2,
            min_conditional_prob: 0.0,
            ..TwigConfig::default()
        };
        let plans = analyze_profile(&p, &config);
        assert_eq!(plans[0].sites.len(), 2);
    }
}
