//! Workspace hygiene: every `TWIG_*` environment variable is parsed in
//! exactly one place — `twig-types/src/config.rs`. A stray
//! `env::var("TWIG…")` read anywhere else bypasses the typed
//! `HarnessConfig` (its validation, its precedence rule, and its
//! manifest dump), so this test walks the workspace sources and fails on
//! any such read.

use std::path::{Path, PathBuf};

/// The one file allowed to read `TWIG_*` from the environment.
const ALLOWED: &str = "crates/twig-types/src/config.rs";

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR = <root>/crates/twig-types.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf()
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("read workspace dir").flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if name != "target" && name != ".git" {
                rust_sources(&path, out);
            }
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn twig_env_vars_are_read_in_exactly_one_place() {
    let root = workspace_root();
    assert!(
        root.join(ALLOWED).is_file(),
        "hygiene test lost track of the config module at {ALLOWED}"
    );
    let mut sources = Vec::new();
    // `vendor/` holds third-party stand-ins that know nothing of TWIG_*;
    // scan it too — a violation there would be just as real.
    for top in ["crates", "vendor"] {
        let dir = root.join(top);
        if dir.is_dir() {
            rust_sources(&dir, &mut sources);
        }
    }
    assert!(
        sources.len() > 20,
        "suspiciously few sources found ({}); is the walk broken?",
        sources.len()
    );

    let mut offenders = Vec::new();
    for path in sources {
        let rel = path.strip_prefix(&root).unwrap().to_string_lossy().into_owned();
        if rel == ALLOWED {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        for (i, line) in text.lines().enumerate() {
            let direct_read = (line.contains("env::var(\"TWIG")
                || line.contains("env::var_os(\"TWIG"))
                && !line.trim_start().starts_with("//");
            if direct_read {
                offenders.push(format!("{rel}:{} : {}", i + 1, line.trim()));
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "TWIG_* environment reads outside {ALLOWED} — route them through \
         twig_types::HarnessConfig instead:\n{}",
        offenders.join("\n")
    );
}
