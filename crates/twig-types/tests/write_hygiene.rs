//! Workspace hygiene: published artifacts are written in exactly one
//! place — `twig_sched::durable` (atomic temp+fsync+rename publication,
//! journaled read-modify-write). A bare `fs::write` or `File::create`
//! in non-test harness code can be torn by a kill at the wrong instant,
//! which the crash drills then cannot heal, so this test walks the
//! workspace sources and fails on any such writer outside the durable
//! module.
//!
//! Scope: `crates/` only — `vendor/` holds third-party stand-ins whose
//! files are not published run artifacts. Test code (`#[cfg(test)]`
//! modules, `tests/`, `benches/`, and the drill binaries that *stage*
//! corrupt inputs on purpose) is exempt: tests must be able to fabricate
//! torn files to prove recovery works.

use std::path::{Path, PathBuf};

/// The one file allowed to create files directly: the durability layer
/// itself.
const ALLOWED: &[&str] = &["crates/twig-sched/src/durable.rs"];

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR = <root>/crates/twig-types.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf()
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("read workspace dir").flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            // Integration tests and benches fabricate residue on purpose.
            if name != "target" && name != ".git" && name != "tests" && name != "benches" {
                rust_sources(&path, out);
            }
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
}

/// The portion of a source file that ships in the binary: everything
/// before its `#[cfg(test)]` module (unit tests stage corrupt files to
/// drive recovery, which is the point of the exercise).
fn non_test_prefix(text: &str) -> &str {
    match text.find("#[cfg(test)]") {
        Some(at) => &text[..at],
        None => text,
    }
}

#[test]
fn published_artifacts_are_written_only_through_the_durable_layer() {
    let root = workspace_root();
    for allowed in ALLOWED {
        assert!(
            root.join(allowed).is_file(),
            "hygiene test lost track of the durable module at {allowed}"
        );
    }
    let mut sources = Vec::new();
    rust_sources(&root.join("crates"), &mut sources);
    assert!(
        sources.len() > 20,
        "suspiciously few sources found ({}); is the walk broken?",
        sources.len()
    );

    let mut offenders = Vec::new();
    for path in sources {
        let rel = path.strip_prefix(&root).unwrap().to_string_lossy().into_owned();
        if ALLOWED.contains(&rel.as_str()) {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        for (i, line) in non_test_prefix(&text).lines().enumerate() {
            let bare_write = (line.contains("fs::write(") || line.contains("File::create("))
                && !line.trim_start().starts_with("//")
                && !line.trim_start().starts_with("//!");
            if bare_write {
                offenders.push(format!("{rel}:{} : {}", i + 1, line.trim()));
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "bare artifact writes outside the durable layer — route them \
         through twig_sched::durable::publish_atomic or Journaled so a \
         kill cannot tear them:\n{}",
        offenders.join("\n")
    );
}
