//! Virtual addresses and cache-line addresses.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use twig_serde::{Deserialize, Serialize};

/// Number of bytes in one instruction-cache line.
///
/// Matches the 64-byte lines assumed throughout the paper (e.g. Shotgun's
/// "8 cache lines" spatial range in Fig. 12 is 8 × 64 B = 512 B).
pub const CACHE_LINE_BYTES: u64 = 64;

/// A virtual address in the simulated program's 48-bit address space.
///
/// Twig's `brprefetch` operands are instruction pointers "as large as 48-bit
/// signed integers" (§3.1); we store them in a `u64` and rely on the program
/// layout to stay within 48 bits.
///
/// # Examples
///
/// ```
/// use twig_types::Addr;
///
/// let a = Addr::new(0x1000);
/// assert_eq!(a + 0x40, Addr::new(0x1040));
/// assert_eq!((a + 0x40) - a, 0x40);
/// assert_eq!(a.offset_to(Addr::new(0xff0)), -16);
/// ```
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Addr(u64);

impl Addr {
    /// The lowest address; useful as a sentinel for "no address yet".
    pub const ZERO: Addr = Addr(0);

    /// Creates an address from its raw 64-bit value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw 64-bit value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the cache line containing this address.
    #[inline]
    pub const fn line(self) -> CacheLineAddr {
        CacheLineAddr(self.0 / CACHE_LINE_BYTES)
    }

    /// Signed byte distance from `self` to `other` (`other - self`).
    ///
    /// This is the quantity Twig compresses: the *prefetch-to-branch offset*
    /// (Fig. 14) and the *branch-to-target offset* (Fig. 15) are both signed
    /// deltas between two instruction pointers.
    #[inline]
    pub const fn offset_to(self, other: Addr) -> i64 {
        other.0 as i64 - self.0 as i64
    }

    /// Number of two's-complement bits needed to encode the signed offset
    /// from `self` to `other`, including the sign bit.
    ///
    /// An offset of 0 needs 1 bit; +1 needs 2 bits (`01`); −1 needs 1 bit.
    /// Twig stores 80% of all offsets in 12 bits (§3.1).
    ///
    /// # Examples
    ///
    /// ```
    /// use twig_types::Addr;
    ///
    /// let a = Addr::new(0x1000);
    /// assert!(a.offset_bits_to(Addr::new(0x1400)) <= 12);
    /// assert!(a.offset_bits_to(Addr::new(0x4000_0000)) > 12);
    /// ```
    #[inline]
    pub fn offset_bits_to(self, other: Addr) -> u32 {
        signed_bits(self.offset_to(other))
    }
}

/// Number of bits required to represent `v` as a two's-complement signed
/// integer, including the sign bit.
#[inline]
pub(crate) fn signed_bits(v: i64) -> u32 {
    if v >= 0 {
        // Need one extra bit for the sign.
        64 - v.leading_zeros() + 1
    } else {
        64 - v.leading_ones() + 1
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> Self {
        a.0
    }
}

impl Add<u64> for Addr {
    type Output = Addr;

    #[inline]
    fn add(self, rhs: u64) -> Addr {
        Addr(self.0 + rhs)
    }
}

impl AddAssign<u64> for Addr {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Addr> for Addr {
    type Output = u64;

    /// Unsigned distance; panics in debug builds if `rhs > self`.
    #[inline]
    fn sub(self, rhs: Addr) -> u64 {
        self.0 - rhs.0
    }
}

/// A 64-byte-aligned instruction-cache line address (line number, not bytes).
///
/// # Examples
///
/// ```
/// use twig_types::{Addr, CacheLineAddr};
///
/// let line = CacheLineAddr::containing(Addr::new(0x1038));
/// assert_eq!(line.base(), Addr::new(0x1000));
/// assert_eq!(line.next().base(), Addr::new(0x1040));
/// ```
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct CacheLineAddr(u64);

impl CacheLineAddr {
    /// The cache line containing `addr`.
    #[inline]
    pub const fn containing(addr: Addr) -> Self {
        addr.line()
    }

    /// Creates a line address from a line *number* (byte address / 64).
    #[inline]
    pub const fn from_line_number(n: u64) -> Self {
        CacheLineAddr(n)
    }

    /// The line number (byte address / 64).
    #[inline]
    pub const fn line_number(self) -> u64 {
        self.0
    }

    /// First byte address of the line.
    #[inline]
    pub const fn base(self) -> Addr {
        Addr::new(self.0 * CACHE_LINE_BYTES)
    }

    /// The immediately following line.
    #[inline]
    pub const fn next(self) -> Self {
        CacheLineAddr(self.0 + 1)
    }

    /// Absolute distance in lines between two line addresses.
    ///
    /// Used for Shotgun's spatial-range check (§2.3): a conditional branch is
    /// prefetchable only if it lies within 8 lines of the last unconditional
    /// branch target.
    #[inline]
    pub const fn distance(self, other: CacheLineAddr) -> u64 {
        self.0.abs_diff(other.0)
    }
}

impl fmt::Debug for CacheLineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Line({:#x})", self.base().raw())
    }
}

impl fmt::Display for CacheLineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.base().raw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_of_address() {
        assert_eq!(Addr::new(0).line(), CacheLineAddr::from_line_number(0));
        assert_eq!(Addr::new(63).line(), CacheLineAddr::from_line_number(0));
        assert_eq!(Addr::new(64).line(), CacheLineAddr::from_line_number(1));
        assert_eq!(Addr::new(130).line().base(), Addr::new(128));
    }

    #[test]
    fn signed_offsets() {
        let a = Addr::new(0x1000);
        assert_eq!(a.offset_to(a), 0);
        assert_eq!(a.offset_to(Addr::new(0x1001)), 1);
        assert_eq!(a.offset_to(Addr::new(0x0fff)), -1);
    }

    #[test]
    fn signed_bit_widths() {
        assert_eq!(signed_bits(0), 1);
        assert_eq!(signed_bits(1), 2);
        assert_eq!(signed_bits(-1), 1);
        assert_eq!(signed_bits(-2), 2);
        assert_eq!(signed_bits(2047), 12);
        assert_eq!(signed_bits(2048), 13);
        assert_eq!(signed_bits(-2048), 12);
        assert_eq!(signed_bits(-2049), 13);
        assert_eq!(signed_bits(i64::MAX), 64);
        assert_eq!(signed_bits(i64::MIN), 64);
    }

    #[test]
    fn line_distance_is_symmetric() {
        let a = CacheLineAddr::from_line_number(10);
        let b = CacheLineAddr::from_line_number(3);
        assert_eq!(a.distance(b), 7);
        assert_eq!(b.distance(a), 7);
        assert_eq!(a.distance(a), 0);
    }

    #[test]
    fn arithmetic() {
        let a = Addr::new(100);
        let mut b = a + 28;
        assert_eq!(b.raw(), 128);
        b += 2;
        assert_eq!(b - a, 30);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Addr::new(0x2a).to_string(), "0x2a");
        assert_eq!(format!("{:x}", Addr::new(0x2a)), "2a");
        assert_eq!(format!("{:X}", Addr::new(0x2a)), "2A");
        assert_eq!(
            CacheLineAddr::from_line_number(2).to_string(),
            "0x80"
        );
    }
}
