//! A fast, deterministic hasher for the simulator's hot-path maps.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3 with per-process
//! random keys — HashDoS resistance the simulator does not need: every key
//! it hashes (cache-line numbers, branch PCs, block ids) is synthesized by
//! the workload generator, not attacker-controlled. The per-line maps in
//! the memory hierarchy and the prefetchers hash millions of keys per
//! simulated second, where SipHash's keyed rounds are pure overhead.
//!
//! [`FxHasher`] is the classic Firefox/rustc multiply-xor hash: fold each
//! 8-byte word into the state with a rotate, xor, and multiply by a
//! Fibonacci-golden-ratio constant. It is not collision-resistant against
//! adversaries, which is exactly the trade the simulator wants.
//!
//! Swapping hashers cannot change simulation results: map *iteration
//! order* was already unobservable (the std default randomizes it per
//! process, and every output is proven run-to-run deterministic by the
//! determinism suites), and lookups are order-free.
//!
//! # Examples
//!
//! ```
//! use twig_types::fxhash::FxHashMap;
//!
//! let mut inflight: FxHashMap<u64, u64> = FxHashMap::default();
//! inflight.insert(0x40_1000, 207);
//! assert_eq!(inflight.get(&0x40_1000), Some(&207));
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed by [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
/// A `HashSet` keyed by [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;
/// The zero-state `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// 2^64 / φ, the classic Fibonacci-hashing multiplier (odd, high entropy
/// in the top bits after multiplication).
const SEED: u64 = 0x517c_c1b7_2722_0a95;

/// The multiply-xor hasher. One rotate + xor + multiply per 8-byte word.
#[derive(Clone, Copy, Default, Debug)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.fold(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = [0u8; 8];
            word[..tail.len()].copy_from_slice(tail);
            // Fold the tail length in too so "ab" | "" and "a" | "b"-style
            // splits of adjacent writes cannot collide trivially.
            word[7] = tail.len() as u8;
            self.fold(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.fold(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.fold(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.fold(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.fold(v as u64);
        self.fold((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(0x1234_5678_u64), hash_of(0x1234_5678_u64));
        assert_eq!(hash_of("kafka"), hash_of("kafka"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Cache-line numbers are dense sequential integers: the hash must
        // spread them across the table, not collide or cluster in one
        // bucket's low bits.
        let hashes: std::collections::HashSet<u64> =
            (0..10_000u64).map(hash_of).collect();
        assert_eq!(hashes.len(), 10_000);
        let low_bits: std::collections::HashSet<u64> =
            (0..64u64).map(|k| hash_of(k) & 0x3f).collect();
        assert!(low_bits.len() > 32, "low bits collapse: {}", low_bits.len());
    }

    #[test]
    fn byte_stream_tail_is_length_salted() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut map: FxHashMap<u32, &str> = FxHashMap::default();
        map.insert(7, "seven");
        assert_eq!(map.get(&7), Some(&"seven"));
        let mut set: FxHashSet<u64> = FxHashSet::default();
        set.insert(42);
        assert!(set.contains(&42));
    }
}
