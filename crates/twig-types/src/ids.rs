//! Stable identifiers for program structure.
//!
//! Addresses change whenever Twig's rewriter injects prefetch instructions
//! and re-lays-out the binary; [`BlockId`] and [`FuncId`] are the *layout
//! independent* names used to carry profile information from the profiled
//! binary to the rewritten one (the role BOLT-style tooling plays for real
//! binaries).

use std::fmt;

use twig_serde::{Deserialize, Serialize};

/// Stable identifier of a basic block within a [`Program`].
///
/// Block ids are dense (`0..program.num_blocks()`) and survive binary
/// re-layout, so a profile collected on the original layout can be applied
/// to the rewritten binary.
///
/// [`Program`]: https://docs.rs/twig-workload
///
/// # Examples
///
/// ```
/// use twig_types::BlockId;
///
/// let b = BlockId::new(42);
/// assert_eq!(b.index(), 42);
/// assert_eq!(b.to_string(), "bb42");
/// ```
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct BlockId(u32);

impl BlockId {
    /// Creates a block id from its dense index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        BlockId(index)
    }

    /// The dense index (usable for `Vec` indexing).
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` value.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BlockId({})", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

impl From<u32> for BlockId {
    fn from(raw: u32) -> Self {
        BlockId(raw)
    }
}

/// Stable identifier of a function within a [`Program`].
///
/// [`Program`]: https://docs.rs/twig-workload
///
/// # Examples
///
/// ```
/// use twig_types::FuncId;
///
/// let f = FuncId::new(7);
/// assert_eq!(f.index(), 7);
/// assert_eq!(f.to_string(), "fn7");
/// ```
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct FuncId(u32);

impl FuncId {
    /// Creates a function id from its dense index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        FuncId(index)
    }

    /// The dense index (usable for `Vec` indexing).
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` value.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FuncId({})", self.0)
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn{}", self.0)
    }
}

impl From<u32> for FuncId {
    fn from(raw: u32) -> Self {
        FuncId(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        assert_eq!(BlockId::from(3u32).raw(), 3);
        assert_eq!(FuncId::from(9u32).raw(), 9);
        assert_eq!(BlockId::new(3).index(), 3);
        assert_eq!(FuncId::new(9).index(), 9);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(BlockId::new(1) < BlockId::new(2));
        assert!(FuncId::new(1) < FuncId::new(2));
    }

    #[test]
    fn debug_is_nonempty() {
        assert_eq!(format!("{:?}", BlockId::new(5)), "BlockId(5)");
        assert_eq!(format!("{:?}", FuncId::new(5)), "FuncId(5)");
    }
}
