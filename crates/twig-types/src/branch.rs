//! Branch taxonomy and dynamic branch records.

use std::fmt;

use twig_serde::{Deserialize, Serialize};

use crate::Addr;

/// The kind of a control-flow instruction, as classified by the BTB.
///
/// This is the taxonomy used by the paper's characterization (Figs. 7–8
/// break down BTB accesses and misses by branch type) and by the baseline
/// prefetchers (Shotgun partitions its BTB by conditional vs. unconditional
/// kinds).
///
/// # Examples
///
/// ```
/// use twig_types::BranchKind;
///
/// assert!(BranchKind::Conditional.is_direct());
/// assert!(!BranchKind::Conditional.is_unconditional());
/// assert!(BranchKind::IndirectJump.is_indirect());
/// assert!(BranchKind::Return.is_indirect());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum BranchKind {
    /// A conditional direct branch (x86 `jcc`).
    Conditional,
    /// An unconditional direct jump (x86 `jmp rel`).
    DirectJump,
    /// A direct call (x86 `call rel`).
    DirectCall,
    /// An indirect jump through a register or memory (x86 `jmp r/m`).
    IndirectJump,
    /// An indirect call (x86 `call r/m`).
    IndirectCall,
    /// A function return (x86 `ret`).
    Return,
}

impl BranchKind {
    /// All branch kinds, in a stable order (useful for per-kind counters).
    pub const ALL: [BranchKind; 6] = [
        BranchKind::Conditional,
        BranchKind::DirectJump,
        BranchKind::DirectCall,
        BranchKind::IndirectJump,
        BranchKind::IndirectCall,
        BranchKind::Return,
    ];

    /// Whether the branch target is encoded in the instruction itself.
    ///
    /// The paper's BTB MPKI (Fig. 3) counts only *direct* branches:
    /// "unconditional jumps, calls, and conditional jumps".
    #[inline]
    pub const fn is_direct(self) -> bool {
        matches!(
            self,
            BranchKind::Conditional | BranchKind::DirectJump | BranchKind::DirectCall
        )
    }

    /// Whether the branch target comes from a register, memory, or the stack.
    #[inline]
    pub const fn is_indirect(self) -> bool {
        !self.is_direct()
    }

    /// Whether the branch always transfers control when executed.
    ///
    /// Shotgun keys its prefetching off these: unconditional direct branches
    /// and calls are 20.75% of dynamic branches but 37.5% of BTB misses
    /// (Fig. 8).
    #[inline]
    pub const fn is_unconditional(self) -> bool {
        !matches!(self, BranchKind::Conditional)
    }

    /// Whether the branch is a call (pushes a return address).
    #[inline]
    pub const fn is_call(self) -> bool {
        matches!(self, BranchKind::DirectCall | BranchKind::IndirectCall)
    }

    /// Whether the branch is a return (pops a return address).
    #[inline]
    pub const fn is_return(self) -> bool {
        matches!(self, BranchKind::Return)
    }

    /// Index into [`BranchKind::ALL`]; stable for array-indexed counters.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Short lowercase mnemonic, e.g. `"cond"`, `"call"`.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            BranchKind::Conditional => "cond",
            BranchKind::DirectJump => "jmp",
            BranchKind::DirectCall => "call",
            BranchKind::IndirectJump => "ijmp",
            BranchKind::IndirectCall => "icall",
            BranchKind::Return => "ret",
        }
    }
}

impl fmt::Display for BranchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// The resolved outcome of one dynamic branch execution.
///
/// # Examples
///
/// ```
/// use twig_types::{Addr, BranchOutcome};
///
/// let taken = BranchOutcome::Taken(Addr::new(0x2000));
/// assert!(taken.is_taken());
/// assert_eq!(taken.target(), Some(Addr::new(0x2000)));
/// assert_eq!(BranchOutcome::NotTaken.target(), None);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum BranchOutcome {
    /// The branch redirected control flow to the given target.
    Taken(Addr),
    /// The (conditional) branch fell through.
    NotTaken,
}

impl BranchOutcome {
    /// Whether control flow was redirected.
    #[inline]
    pub const fn is_taken(self) -> bool {
        matches!(self, BranchOutcome::Taken(_))
    }

    /// The taken target, if any.
    #[inline]
    pub const fn target(self) -> Option<Addr> {
        match self {
            BranchOutcome::Taken(t) => Some(t),
            BranchOutcome::NotTaken => None,
        }
    }
}

/// One dynamic branch execution, as seen by the branch prediction unit.
///
/// This is the record the BTB is indexed with ([`pc`](Self::pc)) and filled
/// from ([`outcome`](Self::outcome)); the profiler aggregates these into BTB
/// miss samples.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct BranchRecord {
    /// Address of the branch instruction.
    pub pc: Addr,
    /// Branch classification.
    pub kind: BranchKind,
    /// Resolved direction and target.
    pub outcome: BranchOutcome,
    /// Fall-through address (the instruction after the branch).
    pub fallthrough: Addr,
}

impl BranchRecord {
    /// The address the frontend should fetch next after this branch.
    #[inline]
    pub fn next_fetch(&self) -> Addr {
        match self.outcome {
            BranchOutcome::Taken(t) => t,
            BranchOutcome::NotTaken => self.fallthrough,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_partitions() {
        for k in BranchKind::ALL {
            assert_ne!(k.is_direct(), k.is_indirect(), "{k}");
        }
        assert_eq!(BranchKind::ALL.iter().filter(|k| k.is_direct()).count(), 3);
        assert!(BranchKind::Return.is_indirect());
        assert!(BranchKind::Return.is_return());
        assert!(BranchKind::IndirectCall.is_call());
        assert!(BranchKind::DirectCall.is_call());
        assert!(!BranchKind::DirectJump.is_call());
    }

    #[test]
    fn only_conditional_is_conditional() {
        for k in BranchKind::ALL {
            assert_eq!(k.is_unconditional(), k != BranchKind::Conditional);
        }
    }

    #[test]
    fn indices_are_dense_and_stable() {
        for (i, k) in BranchKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn next_fetch_follows_outcome() {
        let rec = BranchRecord {
            pc: Addr::new(0x100),
            kind: BranchKind::Conditional,
            outcome: BranchOutcome::Taken(Addr::new(0x800)),
            fallthrough: Addr::new(0x104),
        };
        assert_eq!(rec.next_fetch(), Addr::new(0x800));
        let nt = BranchRecord {
            outcome: BranchOutcome::NotTaken,
            ..rec
        };
        assert_eq!(nt.next_fetch(), Addr::new(0x104));
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut names: Vec<_> = BranchKind::ALL.iter().map(|k| k.mnemonic()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), BranchKind::ALL.len());
    }
}
