//! The unified typed harness configuration: one parse point for every
//! `TWIG_*` environment variable.
//!
//! Before this module existed, ~10 `TWIG_*` knobs were parsed ad-hoc in
//! `twig-sched` (threads, task supervision, fault injection), `twig-sim`
//! (integrity tiers, forensic dumps), and `twig-bench`. Each call site had
//! its own tolerance for garbage, so a typo like `TWIG_TASK_ATTEMPTS=tree`
//! silently fell back to the default in one crate and aborted in another.
//!
//! [`HarnessConfig`] is now the only place environment variables are read:
//!
//! * every knob is a [`Setting`] carrying its value *and* its
//!   [`Source`] (default / environment / explicit argument), so the run
//!   manifest can dump the effective configuration;
//! * precedence is uniform: **explicit argument > environment > default**
//!   (apply explicit overrides with [`Setting::with_explicit`]);
//! * malformed values fail with a typed [`ConfigError`] naming the
//!   offending variable — never a silent fallback;
//! * grammar-valued knobs (fault specs, integrity tiers, observability
//!   tiers) are carried as raw strings here and parsed by their owning
//!   crate, which still reports errors under the variable's name.
//!
//! A workspace hygiene test greps for stray `env::var("TWIG` reads outside
//! this file, so the single-parse-point property is enforced, not aspired
//! to.
//!
//! # Examples
//!
//! ```
//! use twig_types::config::{HarnessConfig, Source};
//!
//! let config = HarnessConfig::from_lookup(|var| match var {
//!     "TWIG_TASK_ATTEMPTS" => Some("5".to_string()),
//!     _ => None,
//! })
//! .unwrap();
//! assert_eq!(config.task_attempts.value, 5);
//! assert_eq!(config.task_attempts.source, Source::Env);
//! // Explicit arguments win over the environment:
//! let attempts = config.task_attempts.with_explicit(Some(2));
//! assert_eq!(attempts.value, 2);
//! assert_eq!(attempts.source, Source::Explicit);
//! ```

use std::fmt;
use std::sync::OnceLock;

/// `TWIG_NUM_THREADS` — worker-thread cap for the experiment scheduler
/// (`RAYON_NUM_THREADS` is honored as a fallback spelling).
pub const VAR_NUM_THREADS: &str = "TWIG_NUM_THREADS";
/// `TWIG_NUM_PROCS` — worker-*process* count for the headline matrix:
/// `N > 1` shards the matrix cells over `N` subprocesses that share one
/// checkpoint directory (the parent merges their cells). `1` (the
/// default) keeps everything in-process.
pub const VAR_NUM_PROCS: &str = "TWIG_NUM_PROCS";
/// `TWIG_TASK_ATTEMPTS` — total supervised-task attempts (first try +
/// retries), minimum 1.
pub const VAR_TASK_ATTEMPTS: &str = "TWIG_TASK_ATTEMPTS";
/// `TWIG_TASK_BACKOFF_MS` — base backoff between task retries.
pub const VAR_TASK_BACKOFF_MS: &str = "TWIG_TASK_BACKOFF_MS";
/// `TWIG_TASK_TIMEOUT_MS` — per-attempt task deadline (0 disables it).
pub const VAR_TASK_TIMEOUT_MS: &str = "TWIG_TASK_TIMEOUT_MS";
/// `TWIG_FAULT_SPEC` — deterministic fault-injection grammar
/// (parsed by `twig-sched::fault`).
pub const VAR_FAULT_SPEC: &str = "TWIG_FAULT_SPEC";
/// `TWIG_CRASH_SPEC` — deterministic crashpoint injection
/// `<point>[@<n>]` (parsed by `twig-sched::durable`): kill the process at
/// the named durability boundary on its nth hit.
pub const VAR_CRASH_SPEC: &str = "TWIG_CRASH_SPEC";
/// `TWIG_INTEGRITY` — simulation integrity tier
/// (`off | sampled[=N] | paranoid`; parsed by `twig-sim::integrity`).
pub const VAR_INTEGRITY: &str = "TWIG_INTEGRITY";
/// `TWIG_INTEGRITY_MUTATE` — seeded corruption `<kind>@<cycle>` for the
/// integrity mutation drill.
pub const VAR_INTEGRITY_MUTATE: &str = "TWIG_INTEGRITY_MUTATE";
/// `TWIG_INTEGRITY_MUTATE_LABEL` — substring selector restricting the
/// mutation drill to matching run labels.
pub const VAR_INTEGRITY_MUTATE_LABEL: &str = "TWIG_INTEGRITY_MUTATE_LABEL";
/// `TWIG_INTEGRITY_DUMP_DIR` — directory for forensic integrity dumps.
pub const VAR_INTEGRITY_DUMP_DIR: &str = "TWIG_INTEGRITY_DUMP_DIR";
/// `TWIG_OBS` — observability tier (`off | counters | trace[=N]`; parsed
/// by `twig-obs`).
pub const VAR_OBS: &str = "TWIG_OBS";
/// `TWIG_OBS_ATTR` — per-branch cycle attribution
/// (`off | on | k=N[,sample=M]`; parsed by `twig-obs`).
pub const VAR_OBS_ATTR: &str = "TWIG_OBS_ATTR";
/// `TWIG_OBS_WINDOW` — windowed time-series telemetry
/// (`off | window=N`, a window boundary every `N` retired instructions;
/// parsed by `twig-obs`). Orthogonal to `TWIG_OBS`: windowing samples the
/// live statistics without creating counters-tier recording state.
pub const VAR_OBS_WINDOW: &str = "TWIG_OBS_WINDOW";
/// `TWIG_TRACE_SPILL_EVENTS` — event-count threshold above which the
/// benchmark harness spills cached traces to columnar `.twgc` files and
/// streams them back instead of holding a `Vec<BlockEvent>` resident
/// (out-of-core trace engine). `0` disables spilling entirely. The
/// default (8M events) is far above every standard cell, so ordinary
/// runs never touch disk; big-trace cells cross it and stay in bounded
/// RSS.
pub const VAR_TRACE_SPILL_EVENTS: &str = "TWIG_TRACE_SPILL_EVENTS";
/// `TWIG_FLEET_WORKERS` — long-running fleet-service worker threads,
/// at least 1. Results are worker-count invariant (the fleet manifest is
/// proven byte-identical across settings), so this is purely a throughput
/// knob.
pub const VAR_FLEET_WORKERS: &str = "TWIG_FLEET_WORKERS";
/// `TWIG_FLEET_MAX_GENERATIONS` — layout-generation cap for the fleet
/// convergence watchdog, at least 1.
pub const VAR_FLEET_MAX_GENERATIONS: &str = "TWIG_FLEET_MAX_GENERATIONS";
/// `TWIG_FLEET_QUEUE_DEPTH` — bounded profile-queue capacity per fleet
/// service, at least 1; submissions beyond it block (backpressure).
pub const VAR_FLEET_QUEUE_DEPTH: &str = "TWIG_FLEET_QUEUE_DEPTH";

/// Every `TWIG_*` variable the harness understands, in documentation
/// order. The README's reference table and the manifest dump iterate this.
pub const ALL_VARS: &[&str] = &[
    VAR_NUM_THREADS,
    VAR_NUM_PROCS,
    VAR_TASK_ATTEMPTS,
    VAR_TASK_BACKOFF_MS,
    VAR_TASK_TIMEOUT_MS,
    VAR_FAULT_SPEC,
    VAR_CRASH_SPEC,
    VAR_INTEGRITY,
    VAR_INTEGRITY_MUTATE,
    VAR_INTEGRITY_MUTATE_LABEL,
    VAR_INTEGRITY_DUMP_DIR,
    VAR_OBS,
    VAR_OBS_ATTR,
    VAR_OBS_WINDOW,
    VAR_TRACE_SPILL_EVENTS,
    VAR_FLEET_WORKERS,
    VAR_FLEET_MAX_GENERATIONS,
    VAR_FLEET_QUEUE_DEPTH,
];

/// Where a setting's effective value came from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Source {
    /// The built-in default; neither environment nor caller touched it.
    Default,
    /// The environment variable.
    Env,
    /// An explicit argument (CLI flag, builder call), which outranks both.
    Explicit,
}

impl Source {
    /// Stable lower-case name, used in the manifest dump.
    pub fn as_str(self) -> &'static str {
        match self {
            Source::Default => "default",
            Source::Env => "env",
            Source::Explicit => "explicit",
        }
    }
}

/// One configuration knob: its effective value plus provenance.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Setting<T> {
    /// The effective value.
    pub value: T,
    /// Where it came from.
    pub source: Source,
}

impl<T> Setting<T> {
    /// A built-in default.
    pub fn default_value(value: T) -> Self {
        Setting {
            value,
            source: Source::Default,
        }
    }

    /// An environment-supplied value.
    pub fn env_value(value: T) -> Self {
        Setting {
            value,
            source: Source::Env,
        }
    }

    /// Applies the precedence rule *explicit argument > environment >
    /// default*: `Some(v)` replaces this setting, `None` keeps it.
    pub fn with_explicit(self, explicit: Option<T>) -> Self {
        match explicit {
            Some(value) => Setting {
                value,
                source: Source::Explicit,
            },
            None => self,
        }
    }

    /// Maps the value, keeping the provenance.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Setting<U> {
        Setting {
            value: f(self.value),
            source: self.source,
        }
    }
}

/// A malformed configuration value, naming the offending variable.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConfigError {
    /// The environment variable that failed to parse.
    pub var: &'static str,
    /// The raw value found there.
    pub value: String,
    /// Why it was rejected.
    pub reason: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}={:?}: {}",
            self.var, self.value, self.reason
        )
    }
}

impl std::error::Error for ConfigError {}

/// One row of the effective-configuration dump (run manifest, `Display`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConfigEntry {
    /// The variable name (`TWIG_*`).
    pub name: &'static str,
    /// The effective value, rendered (`auto` / `none` for unset options).
    pub value: String,
    /// Provenance (`default` / `env` / `explicit`).
    pub source: &'static str,
}

/// The harness configuration: every `TWIG_*` knob, parsed once.
///
/// Numeric knobs are fully typed here. Grammar knobs (`TWIG_FAULT_SPEC`,
/// `TWIG_INTEGRITY*`, `TWIG_OBS`) are carried as raw strings and parsed by
/// the crate that owns the grammar — still exactly one *environment read*,
/// and the owning parser's error message names the variable.
#[derive(Clone, PartialEq, Debug)]
pub struct HarnessConfig {
    /// Worker-thread cap; `None` = machine parallelism.
    pub num_threads: Setting<Option<usize>>,
    /// Worker-process count for the headline matrix, at least 1.
    pub num_procs: Setting<usize>,
    /// Supervised-task attempts (first run + retries), at least 1.
    pub task_attempts: Setting<u32>,
    /// Base backoff between retries, milliseconds.
    pub task_backoff_ms: Setting<u64>,
    /// Per-attempt deadline, milliseconds; `None` = no deadline.
    pub task_timeout_ms: Setting<Option<u64>>,
    /// Raw fault-injection spec, if any.
    pub fault_spec: Setting<Option<String>>,
    /// Raw crashpoint-injection spec, if any.
    pub crash_spec: Setting<Option<String>>,
    /// Raw integrity tier (`off` when unset).
    pub integrity: Setting<String>,
    /// Raw seeded-mutation spec, if any.
    pub integrity_mutate: Setting<Option<String>>,
    /// Mutation label selector, if any.
    pub integrity_mutate_label: Setting<Option<String>>,
    /// Forensic dump directory override, if any.
    pub integrity_dump_dir: Setting<Option<String>>,
    /// Raw observability tier (`off` when unset).
    pub obs: Setting<String>,
    /// Raw attribution spec (`off` when unset).
    pub obs_attr: Setting<String>,
    /// Raw timeline-window spec (`off` when unset).
    pub obs_window: Setting<String>,
    /// Trace-spill threshold in events; `None` = spilling disabled.
    pub trace_spill_events: Setting<Option<u64>>,
    /// Fleet-service worker threads, at least 1.
    pub fleet_workers: Setting<usize>,
    /// Fleet convergence-watchdog generation cap, at least 1.
    pub fleet_max_generations: Setting<u64>,
    /// Fleet bounded-queue capacity, at least 1.
    pub fleet_queue_depth: Setting<usize>,
}

impl HarnessConfig {
    /// The built-in defaults, untouched by the environment.
    pub fn defaults() -> Self {
        HarnessConfig {
            num_threads: Setting::default_value(None),
            num_procs: Setting::default_value(1),
            task_attempts: Setting::default_value(2),
            task_backoff_ms: Setting::default_value(100),
            task_timeout_ms: Setting::default_value(Some(600_000)),
            fault_spec: Setting::default_value(None),
            crash_spec: Setting::default_value(None),
            integrity: Setting::default_value("off".to_string()),
            integrity_mutate: Setting::default_value(None),
            integrity_mutate_label: Setting::default_value(None),
            integrity_dump_dir: Setting::default_value(None),
            obs: Setting::default_value("off".to_string()),
            obs_attr: Setting::default_value("off".to_string()),
            obs_window: Setting::default_value("off".to_string()),
            trace_spill_events: Setting::default_value(Some(8_000_000)),
            fleet_workers: Setting::default_value(1),
            fleet_max_generations: Setting::default_value(8),
            fleet_queue_depth: Setting::default_value(2),
        }
    }

    /// Builds the configuration from an arbitrary variable lookup —
    /// the seam precedence and bad-value tests use instead of mutating
    /// the process environment.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first malformed variable.
    pub fn from_lookup(
        lookup: impl Fn(&str) -> Option<String>,
    ) -> Result<Self, ConfigError> {
        let mut config = HarnessConfig::defaults();

        // `TWIG_NUM_THREADS` wins; `RAYON_NUM_THREADS` is honored as a
        // fallback spelling for operators used to rayon-based harnesses.
        for var in [VAR_NUM_THREADS, "RAYON_NUM_THREADS"] {
            if let Some(raw) = lookup(var) {
                let n = parse_u64(VAR_NUM_THREADS, &raw)?;
                if n == 0 {
                    return Err(ConfigError {
                        var: VAR_NUM_THREADS,
                        value: raw,
                        reason: "thread count must be >= 1".to_string(),
                    });
                }
                config.num_threads = Setting::env_value(Some(n as usize));
                break;
            }
        }
        if let Some(raw) = lookup(VAR_NUM_PROCS) {
            let n = parse_u64(VAR_NUM_PROCS, &raw)?;
            if n == 0 {
                return Err(ConfigError {
                    var: VAR_NUM_PROCS,
                    value: raw,
                    reason: "process count must be >= 1".to_string(),
                });
            }
            config.num_procs = Setting::env_value(n as usize);
        }
        if let Some(raw) = lookup(VAR_TASK_ATTEMPTS) {
            let n = parse_u64(VAR_TASK_ATTEMPTS, &raw)?;
            config.task_attempts = Setting::env_value((n as u32).max(1));
        }
        if let Some(raw) = lookup(VAR_TASK_BACKOFF_MS) {
            config.task_backoff_ms = Setting::env_value(parse_u64(VAR_TASK_BACKOFF_MS, &raw)?);
        }
        if let Some(raw) = lookup(VAR_TASK_TIMEOUT_MS) {
            let n = parse_u64(VAR_TASK_TIMEOUT_MS, &raw)?;
            config.task_timeout_ms = Setting::env_value(if n == 0 { None } else { Some(n) });
        }
        if let Some(raw) = lookup(VAR_FAULT_SPEC) {
            config.fault_spec = Setting::env_value(non_empty(raw));
        }
        if let Some(raw) = lookup(VAR_CRASH_SPEC) {
            config.crash_spec = Setting::env_value(non_empty(raw));
        }
        if let Some(raw) = lookup(VAR_INTEGRITY) {
            config.integrity = Setting::env_value(raw.trim().to_string());
        }
        if let Some(raw) = lookup(VAR_INTEGRITY_MUTATE) {
            config.integrity_mutate = Setting::env_value(non_empty(raw));
        }
        if let Some(raw) = lookup(VAR_INTEGRITY_MUTATE_LABEL) {
            config.integrity_mutate_label = Setting::env_value(non_empty(raw));
        }
        if let Some(raw) = lookup(VAR_INTEGRITY_DUMP_DIR) {
            config.integrity_dump_dir = Setting::env_value(non_empty(raw));
        }
        if let Some(raw) = lookup(VAR_OBS) {
            config.obs = Setting::env_value(raw.trim().to_string());
        }
        if let Some(raw) = lookup(VAR_OBS_ATTR) {
            config.obs_attr = Setting::env_value(raw.trim().to_string());
        }
        if let Some(raw) = lookup(VAR_OBS_WINDOW) {
            config.obs_window = Setting::env_value(raw.trim().to_string());
        }
        if let Some(raw) = lookup(VAR_TRACE_SPILL_EVENTS) {
            let n = parse_u64(VAR_TRACE_SPILL_EVENTS, &raw)?;
            config.trace_spill_events = Setting::env_value(if n == 0 { None } else { Some(n) });
        }
        if let Some(raw) = lookup(VAR_FLEET_WORKERS) {
            let n = parse_u64(VAR_FLEET_WORKERS, &raw)?;
            if n == 0 {
                return Err(ConfigError {
                    var: VAR_FLEET_WORKERS,
                    value: raw,
                    reason: "worker count must be >= 1".to_string(),
                });
            }
            config.fleet_workers = Setting::env_value(n as usize);
        }
        if let Some(raw) = lookup(VAR_FLEET_MAX_GENERATIONS) {
            let n = parse_u64(VAR_FLEET_MAX_GENERATIONS, &raw)?;
            if n == 0 {
                return Err(ConfigError {
                    var: VAR_FLEET_MAX_GENERATIONS,
                    value: raw,
                    reason: "generation cap must be >= 1".to_string(),
                });
            }
            config.fleet_max_generations = Setting::env_value(n);
        }
        if let Some(raw) = lookup(VAR_FLEET_QUEUE_DEPTH) {
            let n = parse_u64(VAR_FLEET_QUEUE_DEPTH, &raw)?;
            if n == 0 {
                return Err(ConfigError {
                    var: VAR_FLEET_QUEUE_DEPTH,
                    value: raw,
                    reason: "queue depth must be >= 1".to_string(),
                });
            }
            config.fleet_queue_depth = Setting::env_value(n as usize);
        }
        Ok(config)
    }

    /// Builds the configuration from the process environment.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first malformed variable.
    pub fn from_env() -> Result<Self, ConfigError> {
        Self::from_lookup(|var| std::env::var(var).ok())
    }

    /// The process-wide configuration, parsed from the environment once
    /// and cached.
    ///
    /// # Panics
    ///
    /// Panics (naming the variable) when the environment is malformed — a
    /// misconfigured run must not silently proceed with defaults.
    pub fn global() -> &'static HarnessConfig {
        static CONFIG: OnceLock<HarnessConfig> = OnceLock::new();
        CONFIG.get_or_init(|| {
            HarnessConfig::from_env()
                .unwrap_or_else(|e| panic!("invalid harness configuration: {e}"))
        })
    }

    /// The effective configuration as `(name, value, source)` rows, in
    /// [`ALL_VARS`] order — what the run manifest embeds.
    pub fn entries(&self) -> Vec<ConfigEntry> {
        fn opt<T: fmt::Display>(v: &Option<T>, unset: &str) -> String {
            match v {
                Some(v) => v.to_string(),
                None => unset.to_string(),
            }
        }
        vec![
            ConfigEntry {
                name: VAR_NUM_THREADS,
                value: opt(&self.num_threads.value, "auto"),
                source: self.num_threads.source.as_str(),
            },
            ConfigEntry {
                name: VAR_NUM_PROCS,
                value: self.num_procs.value.to_string(),
                source: self.num_procs.source.as_str(),
            },
            ConfigEntry {
                name: VAR_TASK_ATTEMPTS,
                value: self.task_attempts.value.to_string(),
                source: self.task_attempts.source.as_str(),
            },
            ConfigEntry {
                name: VAR_TASK_BACKOFF_MS,
                value: self.task_backoff_ms.value.to_string(),
                source: self.task_backoff_ms.source.as_str(),
            },
            ConfigEntry {
                name: VAR_TASK_TIMEOUT_MS,
                value: opt(&self.task_timeout_ms.value, "none"),
                source: self.task_timeout_ms.source.as_str(),
            },
            ConfigEntry {
                name: VAR_FAULT_SPEC,
                value: opt(&self.fault_spec.value, "none"),
                source: self.fault_spec.source.as_str(),
            },
            ConfigEntry {
                name: VAR_CRASH_SPEC,
                value: opt(&self.crash_spec.value, "none"),
                source: self.crash_spec.source.as_str(),
            },
            ConfigEntry {
                name: VAR_INTEGRITY,
                value: self.integrity.value.clone(),
                source: self.integrity.source.as_str(),
            },
            ConfigEntry {
                name: VAR_INTEGRITY_MUTATE,
                value: opt(&self.integrity_mutate.value, "none"),
                source: self.integrity_mutate.source.as_str(),
            },
            ConfigEntry {
                name: VAR_INTEGRITY_MUTATE_LABEL,
                value: opt(&self.integrity_mutate_label.value, "none"),
                source: self.integrity_mutate_label.source.as_str(),
            },
            ConfigEntry {
                name: VAR_INTEGRITY_DUMP_DIR,
                value: opt(&self.integrity_dump_dir.value, "none"),
                source: self.integrity_dump_dir.source.as_str(),
            },
            ConfigEntry {
                name: VAR_OBS,
                value: self.obs.value.clone(),
                source: self.obs.source.as_str(),
            },
            ConfigEntry {
                name: VAR_OBS_ATTR,
                value: self.obs_attr.value.clone(),
                source: self.obs_attr.source.as_str(),
            },
            ConfigEntry {
                name: VAR_OBS_WINDOW,
                value: self.obs_window.value.clone(),
                source: self.obs_window.source.as_str(),
            },
            ConfigEntry {
                name: VAR_TRACE_SPILL_EVENTS,
                value: opt(&self.trace_spill_events.value, "off"),
                source: self.trace_spill_events.source.as_str(),
            },
            ConfigEntry {
                name: VAR_FLEET_WORKERS,
                value: self.fleet_workers.value.to_string(),
                source: self.fleet_workers.source.as_str(),
            },
            ConfigEntry {
                name: VAR_FLEET_MAX_GENERATIONS,
                value: self.fleet_max_generations.value.to_string(),
                source: self.fleet_max_generations.source.as_str(),
            },
            ConfigEntry {
                name: VAR_FLEET_QUEUE_DEPTH,
                value: self.fleet_queue_depth.value.to_string(),
                source: self.fleet_queue_depth.source.as_str(),
            },
        ]
    }
}

impl fmt::Display for HarnessConfig {
    /// One `NAME=value (source)` line per knob — the human-readable dump.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for entry in self.entries() {
            writeln!(f, "{}={} ({})", entry.name, entry.value, entry.source)?;
        }
        Ok(())
    }
}

fn parse_u64(var: &'static str, raw: &str) -> Result<u64, ConfigError> {
    raw.trim().parse().map_err(|_| ConfigError {
        var,
        value: raw.to_string(),
        reason: "expected a non-negative integer".to_string(),
    })
}

fn non_empty(raw: String) -> Option<String> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        None
    } else {
        Some(trimmed.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_of<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |var| {
            pairs
                .iter()
                .find(|(k, _)| *k == var)
                .map(|(_, v)| v.to_string())
        }
    }

    #[test]
    fn defaults_have_default_source() {
        let config = HarnessConfig::from_lookup(|_| None).unwrap();
        assert_eq!(config, HarnessConfig::defaults());
        for entry in config.entries() {
            assert_eq!(entry.source, "default", "{}", entry.name);
        }
        assert_eq!(config.task_attempts.value, 2);
        assert_eq!(config.task_timeout_ms.value, Some(600_000));
        assert_eq!(config.integrity.value, "off");
        assert_eq!(config.obs.value, "off");
    }

    #[test]
    fn env_overrides_defaults() {
        let config = HarnessConfig::from_lookup(env_of(&[
            ("TWIG_NUM_THREADS", "3"),
            ("TWIG_TASK_TIMEOUT_MS", "0"),
            ("TWIG_OBS", "counters"),
            ("TWIG_OBS_WINDOW", "  window=4096  "),
            ("TWIG_FAULT_SPEC", "  panic:task=1  "),
        ]))
        .unwrap();
        assert_eq!(config.num_threads.value, Some(3));
        assert_eq!(config.num_threads.source, Source::Env);
        // 0 means "no deadline".
        assert_eq!(config.task_timeout_ms.value, None);
        assert_eq!(config.obs.value, "counters");
        assert_eq!(config.obs_window.value, "window=4096");
        assert_eq!(config.obs_window.source, Source::Env);
        assert_eq!(config.fault_spec.value.as_deref(), Some("panic:task=1"));
    }

    #[test]
    fn explicit_beats_env_beats_default() {
        let config = HarnessConfig::from_lookup(env_of(&[("TWIG_TASK_ATTEMPTS", "5")])).unwrap();
        assert_eq!(config.task_attempts.value, 5);
        assert_eq!(config.task_attempts.source, Source::Env);
        let explicit = config.task_attempts.with_explicit(Some(9));
        assert_eq!(explicit.value, 9);
        assert_eq!(explicit.source, Source::Explicit);
        // `None` keeps the env layer.
        let kept = config.task_attempts.with_explicit(None);
        assert_eq!(kept.value, 5);
        assert_eq!(kept.source, Source::Env);
    }

    #[test]
    fn rayon_fallback_is_honored_but_twig_wins() {
        let config =
            HarnessConfig::from_lookup(env_of(&[("RAYON_NUM_THREADS", "7")])).unwrap();
        assert_eq!(config.num_threads.value, Some(7));
        let config = HarnessConfig::from_lookup(env_of(&[
            ("TWIG_NUM_THREADS", "2"),
            ("RAYON_NUM_THREADS", "7"),
        ]))
        .unwrap();
        assert_eq!(config.num_threads.value, Some(2));
    }

    #[test]
    fn bad_values_name_the_variable() {
        let err = HarnessConfig::from_lookup(env_of(&[("TWIG_TASK_ATTEMPTS", "tree")]))
            .unwrap_err();
        assert_eq!(err.var, "TWIG_TASK_ATTEMPTS");
        assert!(err.to_string().contains("TWIG_TASK_ATTEMPTS"), "{err}");
        assert!(err.to_string().contains("tree"), "{err}");

        let err =
            HarnessConfig::from_lookup(env_of(&[("TWIG_NUM_THREADS", "0")])).unwrap_err();
        assert_eq!(err.var, "TWIG_NUM_THREADS");
        assert!(err.to_string().contains(">= 1"), "{err}");
    }

    #[test]
    fn empty_grammar_values_read_as_unset() {
        let config = HarnessConfig::from_lookup(env_of(&[
            ("TWIG_FAULT_SPEC", "   "),
            ("TWIG_INTEGRITY_MUTATE", ""),
        ]))
        .unwrap();
        assert_eq!(config.fault_spec.value, None);
        assert_eq!(config.integrity_mutate.value, None);
    }

    #[test]
    fn display_and_entries_cover_every_variable() {
        let config = HarnessConfig::defaults();
        let dump = config.to_string();
        let entries = config.entries();
        assert_eq!(entries.len(), ALL_VARS.len());
        for (entry, var) in entries.iter().zip(ALL_VARS) {
            assert_eq!(entry.name, *var);
            assert!(dump.contains(var), "dump missing {var}");
        }
        assert!(dump.contains("TWIG_NUM_THREADS=auto (default)"), "{dump}");
    }

    #[test]
    fn fleet_knobs_parse_and_reject_zero() {
        let config = HarnessConfig::from_lookup(env_of(&[
            ("TWIG_FLEET_WORKERS", "4"),
            ("TWIG_FLEET_MAX_GENERATIONS", "12"),
            ("TWIG_FLEET_QUEUE_DEPTH", "3"),
        ]))
        .unwrap();
        assert_eq!(config.fleet_workers.value, 4);
        assert_eq!(config.fleet_max_generations.value, 12);
        assert_eq!(config.fleet_queue_depth.value, 3);
        assert_eq!(config.fleet_workers.source, Source::Env);

        let defaults = HarnessConfig::defaults();
        assert_eq!(defaults.fleet_workers.value, 1);
        assert_eq!(defaults.fleet_max_generations.value, 8);
        assert_eq!(defaults.fleet_queue_depth.value, 2);

        for var in ["TWIG_FLEET_WORKERS", "TWIG_FLEET_MAX_GENERATIONS", "TWIG_FLEET_QUEUE_DEPTH"] {
            let err = HarnessConfig::from_lookup(env_of(&[(var, "0")])).unwrap_err();
            assert_eq!(err.var, var);
            assert!(err.to_string().contains(">= 1"), "{err}");
        }
    }

    #[test]
    fn attempts_floor_at_one() {
        let config =
            HarnessConfig::from_lookup(env_of(&[("TWIG_TASK_ATTEMPTS", "0")])).unwrap();
        assert_eq!(config.task_attempts.value, 1);
    }
}
