//! BTB prefetch operations injected into program binaries.
//!
//! Twig's contribution is a pair of new instructions (§3):
//!
//! - `brprefetch` — prefetch one BTB entry; operands are the branch PC and
//!   target, encoded as compressed signed offsets,
//! - `brcoalesce` — prefetch up to *n* BTB entries from a sorted key-value
//!   table in the text segment, selected by an *n*-bit bitmask.
//!
//! Operands are stored here *by stable identifier* ([`BlockId`]) rather than
//! by address: the rewriter inserts operations before the final binary layout
//! is known, and addresses are resolved against the layout at execution time.
//! The encodability analysis (whether the address deltas fit the instruction's
//! offset fields) is performed against the concrete layout by the core crate.

use twig_serde::{Deserialize, Serialize};

use crate::BlockId;

/// Encoded size in bytes of one `brprefetch` instruction.
///
/// Two 12-bit signed offsets plus opcode and ModRM-style plumbing fit in
/// 8 bytes on a variable-length ISA (cf. §3.1's 12-bit offset finding).
pub const BRPREFETCH_BYTES: u32 = 8;

/// Encoded size in bytes of one `brcoalesce` instruction
/// (table-slot operand plus an up-to-64-bit bitmask immediate).
pub const BRCOALESCE_BYTES: u32 = 8;

/// Size in bytes of one key-value pair in the coalesce table
/// (branch PC and target, stored as two packed 48-bit pointers).
pub const COALESCE_ENTRY_BYTES: u32 = 12;

/// One software BTB prefetch operation attached to a basic block.
///
/// Operations execute when their host block is decoded by the frontend; the
/// prefetched entries land in the BTB prefetch buffer after the configured
/// prefetch-execution latency.
///
/// # Examples
///
/// ```
/// use twig_types::{BlockId, PrefetchOp};
///
/// let op = PrefetchOp::BrPrefetch { branch_block: BlockId::new(7) };
/// assert_eq!(op.encoded_bytes(), twig_types::BRPREFETCH_BYTES);
/// assert_eq!(op.prefetch_count(), 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum PrefetchOp {
    /// Prefetch the BTB entry for the terminator branch of `branch_block`.
    ///
    /// The branch PC and taken target are resolved against the current
    /// binary layout; both offsets were verified encodable by the rewriter.
    BrPrefetch {
        /// Block whose terminator branch is prefetched.
        branch_block: BlockId,
    },
    /// Prefetch a group of BTB entries from the program's coalesce table.
    BrCoalesce {
        /// Index of the first (base) entry in the coalesce table.
        base_index: u32,
        /// Bitmask of entries to prefetch relative to `base_index`
        /// (bit 0 = the base entry itself). The rewriter never sets bits
        /// beyond the configured bitmask width.
        bitmask: u64,
    },
}

impl PrefetchOp {
    /// Static code-size cost of this operation in bytes
    /// (excluding any coalesce-table storage, which is accounted per table).
    #[inline]
    pub const fn encoded_bytes(self) -> u32 {
        match self {
            PrefetchOp::BrPrefetch { .. } => BRPREFETCH_BYTES,
            PrefetchOp::BrCoalesce { .. } => BRCOALESCE_BYTES,
        }
    }

    /// Number of BTB entries this single operation prefetches.
    #[inline]
    pub const fn prefetch_count(self) -> u32 {
        match self {
            PrefetchOp::BrPrefetch { .. } => 1,
            PrefetchOp::BrCoalesce { bitmask, .. } => bitmask.count_ones(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesce_counts_bitmask_population() {
        let op = PrefetchOp::BrCoalesce {
            base_index: 4,
            bitmask: 0b1011_0001,
        };
        assert_eq!(op.prefetch_count(), 4);
        assert_eq!(op.encoded_bytes(), BRCOALESCE_BYTES);
    }

    #[test]
    fn single_prefetch_counts_one() {
        let op = PrefetchOp::BrPrefetch {
            branch_block: BlockId::new(0),
        };
        assert_eq!(op.prefetch_count(), 1);
    }

    #[test]
    fn empty_bitmask_prefetches_nothing() {
        let op = PrefetchOp::BrCoalesce {
            base_index: 0,
            bitmask: 0,
        };
        assert_eq!(op.prefetch_count(), 0);
    }
}
