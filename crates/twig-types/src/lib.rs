//! Shared vocabulary types for the Twig BTB-prefetching reproduction.
//!
//! Every crate in the workspace builds on these primitives:
//!
//! - [`Addr`] — a virtual address in the simulated 48-bit address space,
//! - [`CacheLineAddr`] — a 64-byte-aligned cache-line address,
//! - [`BranchKind`] — the branch taxonomy used by the BTB and the paper's
//!   characterization figures (Figs. 7–8),
//! - [`BlockId`] / [`FuncId`] — stable identifiers for basic blocks and
//!   functions of a synthetic program, stable across binary re-layout,
//! - [`BranchRecord`] — one dynamic branch execution as seen by the frontend.
//!
//! # Examples
//!
//! ```
//! use twig_types::{Addr, BranchKind, CacheLineAddr};
//!
//! let pc = Addr::new(0x40_1000);
//! assert_eq!(pc.line(), CacheLineAddr::containing(pc));
//! assert!(BranchKind::DirectCall.is_unconditional());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod branch;
pub mod config;
pub mod fxhash;
mod ids;
mod prefetch;

pub use addr::{Addr, CacheLineAddr, CACHE_LINE_BYTES};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use config::{ConfigEntry, ConfigError, HarnessConfig, Setting, Source};
pub use branch::{BranchKind, BranchOutcome, BranchRecord};
pub use ids::{BlockId, FuncId};
pub use prefetch::{PrefetchOp, BRCOALESCE_BYTES, BRPREFETCH_BYTES, COALESCE_ENTRY_BYTES};
