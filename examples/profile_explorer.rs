//! Profile explorer: inspect what an LBR-style BTB-miss profile contains
//! and how Twig turns it into injection sites.
//!
//! ```text
//! cargo run --release -p twig-examples --bin profile_explorer [app]
//! ```

use twig::{TwigConfig, TwigOptimizer};
use twig_profile::classify_streams;
use twig_sim::SimConfig;
use twig_workload::{AppId, InputConfig, ProgramGenerator, WorkloadSpec};

fn main() {
    let app_name = std::env::args().nth(1).unwrap_or_else(|| "tomcat".into());
    let Some(app) = AppId::ALL.iter().copied().find(|a| a.name() == app_name) else {
        eprintln!("unknown app {app_name}");
        std::process::exit(2);
    };
    let instructions = 1_000_000;

    let spec = WorkloadSpec::preset(app);
    let config = SimConfig::paper_baseline(spec.backend_extra_cpki);
    let generator = ProgramGenerator::new(spec.clone());
    let program = generator.generate();
    let optimizer = TwigOptimizer::new(TwigConfig::default());

    let profile =
        optimizer.collect_profile(&program, config, InputConfig::numbered(0), instructions);
    println!(
        "profile of {}: {} miss samples over {} instructions",
        spec.name,
        profile.num_samples(),
        profile.instructions
    );

    let histogram = profile.miss_histogram();
    println!("distinct miss branches: {}", histogram.len());
    println!("\nhottest 10 miss branches:");
    for (block, count) in histogram.iter().take(10) {
        let b = program.block(*block);
        println!(
            "  {} at {}  kind {:<5} missed {} times",
            block,
            b.branch_pc(),
            b.branch_kind().map(|k| k.mnemonic()).unwrap_or("?"),
            count
        );
    }

    // Temporal-stream structure of the miss sequence (Fig. 10's analysis).
    let seq: Vec<_> = profile.samples.iter().map(|s| s.branch_block).collect();
    let (rec, new, nonrep) = classify_streams(&seq).fractions();
    println!(
        "\nmiss streams: {:.0}% recurring, {:.0}% new, {:.0}% non-repetitive",
        rec * 100.0,
        new * 100.0,
        nonrep * 100.0
    );

    // Injection-site analysis.
    let plans = optimizer.analyze_for(&profile, &program);
    let covered: u64 = plans.iter().map(|p| p.covered_samples()).sum();
    println!(
        "\nanalysis: {} plans covering {} of {} samples",
        plans.len(),
        covered,
        profile.num_samples()
    );
    println!("example plans (miss <- sites with conditional probabilities):");
    for plan in plans.iter().take(5) {
        print!("  {} <-", plan.branch_block);
        for site in &plan.sites {
            print!("  {} (P={:.2})", site.site, site.conditional_prob);
        }
        println!();
    }
}
