//! Placeholder library target for the examples package.
