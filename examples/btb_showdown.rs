//! BTB system showdown: baseline vs Shotgun vs Confluence vs Twig vs
//! ideal, side by side on one application.
//!
//! ```text
//! cargo run --release -p twig-examples --bin btb_showdown [app] [instructions]
//! ```
//!
//! `app` is one of the nine paper applications (default `cassandra`).

use twig::{TwigConfig, TwigOptimizer};
use twig_prefetchers::{Confluence, Shotgun};
use twig_sim::{BtbSystem, PlainBtb, SimConfig, SimStats, Simulator};
use twig_workload::{AppId, InputConfig, ProgramGenerator, Walker, WorkloadSpec};

fn main() {
    let app_name = std::env::args().nth(1).unwrap_or_else(|| "cassandra".into());
    let instructions: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let Some(app) = AppId::ALL.iter().copied().find(|a| a.name() == app_name) else {
        eprintln!(
            "unknown app {app_name}; choose one of: {}",
            AppId::ALL.map(|a| a.name()).join(" ")
        );
        std::process::exit(2);
    };

    let spec = WorkloadSpec::preset(app);
    let config = SimConfig::paper_baseline(spec.backend_extra_cpki);
    let generator = ProgramGenerator::new(spec.clone());
    let program = generator.generate();
    let events =
        Walker::new(&program, InputConfig::numbered(1)).run_instructions(instructions);

    let run = |system: Box<dyn BtbSystem>, cfg: SimConfig| -> SimStats {
        let mut sim = Simulator::new(&program, cfg, system);
        sim.run(events.iter().copied(), instructions)
    };

    println!("app: {} | {} instructions | input #1", spec.name, instructions);
    println!(
        "{:<12} {:>8} {:>8} {:>10} {:>12} {:>10}",
        "system", "IPC", "MPKI", "resteers", "speedup%", "accuracy%"
    );
    let baseline = run(Box::new(PlainBtb::new(&config)), config);
    let show = |name: &str, stats: &SimStats| {
        println!(
            "{:<12} {:>8.3} {:>8.1} {:>10} {:>12.1} {:>10.1}",
            name,
            stats.ipc(),
            stats.btb_mpki(),
            stats.decode_resteers + stats.exec_resteers,
            (stats.ipc() / baseline.ipc() - 1.0) * 100.0,
            stats.prefetch_accuracy() * 100.0,
        );
    };
    show("baseline", &baseline);
    show("shotgun", &run(Box::new(Shotgun::new(&config)), config));
    show("confluence", &run(Box::new(Confluence::new(&config)), config));

    // Twig: profile on input #0, rewrite, rerun the same input-#1 events.
    let optimizer = TwigOptimizer::new(TwigConfig::default());
    let profile =
        optimizer.collect_profile(&program, config, InputConfig::numbered(0), instructions);
    let optimized = optimizer.rewrite(&generator, &optimizer.analyze_for(&profile, &program));
    let twig_stats = {
        let mut sim = Simulator::new(&optimized.program, config, PlainBtb::new(&config));
        sim.run(events.iter().copied(), instructions)
    };
    show("twig", &twig_stats);

    let ideal_cfg = SimConfig {
        ideal_btb: true,
        ..config
    };
    show("ideal-btb", &run(Box::new(PlainBtb::new(&ideal_cfg)), ideal_cfg));
    println!(
        "\ntwig injected {} brprefetch + {} brcoalesce ops ({} table entries, {:+.2}% text)",
        optimized.rewrite.brprefetch_ops,
        optimized.rewrite.brcoalesce_ops,
        optimized.rewrite.coalesce_entries,
        optimized.rewrite.static_overhead() * 100.0
    );
}
