//! Quickstart: the whole Twig flow on one application in ~30 seconds.
//!
//! ```text
//! cargo run --release -p twig-examples --bin quickstart [instructions]
//! ```
//!
//! Generates a synthetic data-center application (kafka preset), profiles
//! its BTB misses under a training input, injects `brprefetch`/`brcoalesce`
//! instructions at link time, and compares the rewritten binary against the
//! FDIP baseline and an ideal BTB under a *different* input.

use twig::{TwigConfig, TwigOptimizer};
use twig_sim::SimConfig;
use twig_workload::{AppId, WorkloadSpec};

fn main() {
    let instructions: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);

    let spec = WorkloadSpec::preset(AppId::Kafka);
    println!(
        "app: {} ({} functions, ~{:.1} MB text)",
        spec.name,
        spec.app_funcs + spec.lib_funcs,
        spec.estimated_footprint_bytes() as f64 / (1 << 20) as f64
    );

    let sim = SimConfig::paper_baseline(spec.backend_extra_cpki);
    let optimizer = TwigOptimizer::new(TwigConfig::default());

    // Profile on input #0, evaluate on input #1 (the paper's methodology).
    println!("profiling on input #0, evaluating on input #1 ({instructions} instructions)...");
    let report = optimizer
        .run_app(&spec, sim, 0, &[1], instructions)
        .remove(0);

    println!();
    println!(
        "baseline FDIP:   IPC {:.3}, BTB MPKI {:.1}",
        report.baseline.ipc(),
        report.baseline.btb_mpki()
    );
    println!(
        "Twig:            IPC {:.3}, BTB MPKI {:.1}",
        report.twig.ipc(),
        report.twig.btb_mpki()
    );
    println!("ideal BTB:       IPC {:.3}", report.ideal.ipc());
    println!();
    println!(
        "Twig speedup:    {:+.1}% ({:.0}% of the ideal BTB's {:+.1}%)",
        report.speedup_percent,
        report.pct_of_ideal * 100.0,
        report.ideal_speedup_percent
    );
    println!("miss coverage:   {:.1}%", report.coverage * 100.0);
    println!("accuracy:        {:.1}%", report.accuracy * 100.0);
    println!(
        "dynamic overhead: {:.2}% extra instructions",
        report.dynamic_overhead * 100.0
    );
}
