//! Building a custom synthetic workload from scratch: define a spec,
//! inspect its static shape, and measure its frontend behaviour.
//!
//! ```text
//! cargo run --release -p twig-examples --bin custom_workload
//! ```

use twig_sim::{PlainBtb, SimConfig, Simulator};
use twig_types::BranchKind;
use twig_workload::{
    InputConfig, ProgramGenerator, Span, Span1, StaticStats, TerminatorMix, Walker, WorkingSet,
    WorkloadSpec,
};

fn main() {
    // A mid-size service: 2000 functions, 3 call levels, mild handler skew.
    let spec = WorkloadSpec {
        name: "my-service".to_owned(),
        seed: 42,
        app_funcs: 2000,
        lib_funcs: 300,
        handlers: 32,
        handler_zipf: 0.5,
        blocks_per_func: Span::new(10, 36),
        instrs_per_block: Span::new(3, 9),
        instr_bytes: Span::new(3, 5),
        mix: TerminatorMix {
            conditional: 0.50,
            jump: 0.08,
            call: 0.10,
            indirect_call: 0.04,
            indirect_jump: 0.02,
            fallthrough: 0.26,
        },
        call_levels: 3,
        indirect_call_fanout: Span::new(2, 5),
        indirect_jump_fanout: Span::new(2, 8),
        loop_fraction: 0.03,
        loop_taken_prob: Span1::new(0.70, 0.92),
        biased_taken_prob: Span1::new(0.002, 0.02),
        unbiased_fraction: 0.01,
        library_call_fraction: 0.3,
        backend_extra_cpki: 200.0,
        inter_function_pad: 0,
    };
    spec.validate().expect("valid spec");

    let program = ProgramGenerator::new(spec).generate();
    let stats = StaticStats::of(&program);
    println!(
        "static shape: {} functions, {} blocks, {} instructions, {:.2} MB",
        stats.functions,
        stats.blocks,
        stats.instructions,
        stats.text_bytes as f64 / (1 << 20) as f64
    );
    for kind in BranchKind::ALL {
        println!("  {:<6} {:>8} sites", kind.mnemonic(), stats.branches(kind));
    }

    // Walk 500k instructions and measure dynamic behaviour.
    let budget = 500_000;
    let events = Walker::new(&program, InputConfig::numbered(0)).run_instructions(budget);
    let mut ws = WorkingSet::new();
    for ev in &events {
        ws.observe(&program, *ev);
    }
    println!(
        "\ndynamic: {} block events, {} distinct taken branch sites,",
        events.len(),
        ws.taken_branch_sites()
    );
    println!(
        "working set {:.2} MB of {} blocks",
        ws.instruction_bytes(&program) as f64 / (1 << 20) as f64,
        ws.executed_blocks()
    );

    let config = SimConfig::paper_baseline(200.0);
    let mut sim = Simulator::new(&program, config, PlainBtb::new(&config));
    let stats = sim.run(events, budget);
    println!(
        "\nfrontend: IPC {:.3}, BTB MPKI {:.1}, {:.0}% frontend-bound",
        stats.ipc(),
        stats.btb_mpki(),
        stats.topdown.frontend_fraction() * 100.0
    );
}
